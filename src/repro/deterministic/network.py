"""Deterministic RPPS network bounds (Parekh & Gallager, multi-node).

Parekh & Gallager's celebrated multiple-node result: in an RPPS GPS
network where every session is leaky-bucket constrained and every node
satisfies ``sum rho < r``, the end-to-end worst-case delay of session
``i`` depends only on its burst parameter and its bottleneck guaranteed
rate,

    D_i^net <= sigma_i / g_i^net,
    Q_i^net <= sigma_i,

independent of route length and topology — the deterministic
counterpart of Theorem 15 (and the template for it: Lemma 14 is a
restatement of their Lemma 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import Network
from repro.traffic.envelope import LBAPEnvelope

from repro.errors import ValidationError

__all__ = ["PGNetworkBounds", "pg_rpps_network_bounds"]


@dataclass(frozen=True)
class PGNetworkBounds:
    """Worst-case end-to-end bounds for one session."""

    session: str
    bottleneck_node: str
    guaranteed_rate: float
    max_network_backlog: float
    max_end_to_end_delay: float


def pg_rpps_network_bounds(
    network: Network,
    session_name: str,
    envelope: LBAPEnvelope,
) -> PGNetworkBounds:
    """Deterministic Theorem-15 analogue for one session.

    ``envelope`` is the session's leaky-bucket constraint; its rate
    must match the session's declared upper rate (the RPPS weights are
    ``phi_i^m = rho_i``).
    """
    if not network.is_rpps():
        raise ValidationError("network is not RPPS")
    session = network.session(session_name)
    if abs(envelope.rho - session.rho) > 1e-9 * session.rho:
        raise ValidationError(
            f"envelope rate {envelope.rho} does not match the session "
            f"upper rate {session.rho}"
        )
    g_net = network.network_guaranteed_rate(session_name)
    if g_net <= envelope.rho:
        raise ValidationError(
            f"bottleneck guaranteed rate {g_net} must exceed the "
            f"session rate {envelope.rho}"
        )
    return PGNetworkBounds(
        session=session_name,
        bottleneck_node=network.bottleneck_node(session_name),
        guaranteed_rate=g_net,
        max_network_backlog=envelope.sigma,
        max_end_to_end_delay=envelope.sigma / g_net,
    )
