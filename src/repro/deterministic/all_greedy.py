"""The Parekh-Gallager all-greedy system: exact worst-case dynamics.

Parekh & Gallager showed that for leaky-bucket sources the worst-case
per-session backlogs and delays in a GPS system are attained (for
locally stable sessions) by the *all-greedy* regime: at time zero every
session dumps its full burst ``sigma_i`` and thereafter sends at its
token rate ``rho_i``.  Because that input is a burst plus constant
rates, the exact fluid GPS engine (:mod:`repro.sim.fluid_exact`)
resolves the resulting trajectories in closed form — giving *exact*
worst-case figures to compare against the decomposition-based bounds
of :mod:`repro.deterministic.parekh_gallager` (which are upper bounds
on these) and against the statistical bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deterministic.parekh_gallager import DeterministicGPSConfig
from repro.sim.fluid_exact import (
    FluidTrajectory,
    RateSegment,
    simulate_exact_gps,
)

__all__ = ["AllGreedyResult", "all_greedy_analysis"]

_EPS = 1e-9


@dataclass(frozen=True)
class AllGreedyResult:
    """Exact all-greedy worst-case figures per session.

    Attributes
    ----------
    trajectory:
        The exact piecewise-linear backlog curves.
    max_backlogs:
        Peak backlog per session over the all-greedy busy period.
    clear_times:
        Time at which each session's backlog first returns to zero.
    max_delays:
        Worst clearing delay per session: the maximum over ``t`` of the
        time until the backlog present at ``t`` is served.  For the
        all-greedy trajectory this is evaluated on the exact curves.
    """

    trajectory: FluidTrajectory
    max_backlogs: tuple[float, ...]
    clear_times: tuple[float, ...]
    max_delays: tuple[float, ...]


def _session_max_delay(
    trajectory: FluidTrajectory,
    session: int,
    sigma: float,
    rho: float,
) -> float:
    """Exact worst clearing delay for one all-greedy session.

    The cumulative arrivals are ``A(t) = sigma + rho t`` and the
    cumulative service ``S(t) = A(t) - Q(t)`` is piecewise linear with
    breakpoints at the trajectory's event times; the delay of the
    traffic present at time ``t`` is ``inf{d : S(t+d) >= A(t)}``.  The
    maximum over ``t`` is attained at an event time (both curves are
    piecewise linear), so scanning event times is exact.
    """
    times = trajectory.times
    backlog = trajectory.backlog[:, session]
    arrivals = sigma + rho * (times - times[0])
    service = arrivals - backlog
    worst = 0.0
    for k in range(times.size):
        target = arrivals[k]
        if backlog[k] <= _EPS:
            continue
        # find the first time service reaches the target
        j = int(np.searchsorted(service, target - _EPS))
        if j >= times.size:
            # not cleared within the computed horizon; signal with inf
            return float("inf")
        if j == 0:
            clear_time = times[0]
        else:
            s0, s1 = service[j - 1], service[j]
            t0, t1 = times[j - 1], times[j]
            if s1 <= s0 + _EPS:
                clear_time = t1
            else:
                clear_time = t0 + (target - s0) / (s1 - s0) * (t1 - t0)
        worst = max(worst, clear_time - times[k])
    return worst


def all_greedy_analysis(
    config: DeterministicGPSConfig,
    *,
    horizon: float | None = None,
) -> AllGreedyResult:
    """Run the all-greedy system for a deterministic GPS configuration.

    The horizon defaults to a safe multiple of the system busy period
    ``sum sigma / (rate - sum rho)`` (all backlogs are provably zero
    afterwards).
    """
    sigmas = [s.sigma for s in config.sessions]
    rhos = [s.rho for s in config.sessions]
    slack = config.rate - sum(rhos)
    if horizon is None:
        busy_period = sum(sigmas) / slack if sum(sigmas) > 0 else 1.0
        horizon = 2.0 * busy_period + 1.0
    trajectory = simulate_exact_gps(
        config.rate,
        [s.phi for s in config.sessions],
        [
            RateSegment(
                start_time=0.0,
                rates=tuple(rhos),
                bursts=tuple(sigmas),
            )
        ],
        horizon=horizon,
    )
    num = len(config.sessions)
    max_backlogs = tuple(
        trajectory.max_backlog(i) for i in range(num)
    )
    clear_times = []
    for i in range(num):
        cleared = trajectory.times[
            trajectory.backlog[:, i] <= _EPS
        ]
        clear_times.append(
            float(cleared[0]) if cleared.size else float("inf")
        )
    max_delays = tuple(
        _session_max_delay(trajectory, i, sigmas[i], rhos[i])
        for i in range(num)
    )
    return AllGreedyResult(
        trajectory=trajectory,
        max_backlogs=max_backlogs,
        clear_times=tuple(clear_times),
        max_delays=max_delays,
    )
