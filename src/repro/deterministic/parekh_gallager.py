"""Deterministic GPS bounds for leaky-bucket sources (the baseline).

Parekh & Gallager's analysis [PG93a] — the study this paper extends —
assumes each session conforms to a Cruz ``(sigma, rho)`` envelope and
derives *worst-case* backlog and delay bounds.  We implement the
deterministic counterparts of the statistical machinery using the same
decomposition:

* For an LBAP source drained at a constant rate ``r >= rho``, the
  virtual backlog never exceeds the burst parameter:
  ``delta_i(t) <= sigma_i``.
* Lemma 3 then gives the deterministic analogue of Theorem 7,

      Q_i <= sigma_i + psi_i sum_{j < i} sigma_j,
      D_i <= Q_i / g_i,

  for a feasible ordering, and the feasible-partition version where
  the sum runs over the strictly lower classes.
* A session in H_1 (in particular *every* session under RPPS) gets the
  Parekh-Gallager closed forms ``Q_i* <= sigma_i`` and
  ``D_i* <= sigma_i / g_i``.

These bounds are what the paper calls "very conservative" for bursty
stochastic sources — quantifying that conservatism is one of the
ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.feasible import FeasiblePartition, feasible_partition
from repro.traffic.envelope import LBAPEnvelope
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = [
    "DeterministicSession",
    "DeterministicGPSConfig",
    "DeterministicBounds",
    "pg_session_bounds",
    "pg_all_bounds",
]


@dataclass(frozen=True)
class DeterministicSession:
    """A leaky-bucket-constrained session at a GPS server."""

    name: str
    envelope: LBAPEnvelope
    phi: float

    def __post_init__(self) -> None:
        check_positive("phi", self.phi)
        if not self.name:
            raise ValidationError("session name must be non-empty")

    @property
    def sigma(self) -> float:
        """Burst parameter."""
        return self.envelope.sigma

    @property
    def rho(self) -> float:
        """Token (long-term) rate."""
        return self.envelope.rho


@dataclass(frozen=True)
class DeterministicGPSConfig:
    """A GPS server shared by leaky-bucket sessions."""

    rate: float
    sessions: tuple[DeterministicSession, ...]

    def __init__(
        self, rate: float, sessions: Sequence[DeterministicSession]
    ) -> None:
        check_positive("rate", rate)
        session_tuple = tuple(sessions)
        if not session_tuple:
            raise ValidationError("need at least one session")
        total_rho = sum(s.rho for s in session_tuple)
        if total_rho >= rate:
            raise ValidationError(
                f"sum of token rates {total_rho} must be below the "
                f"server rate {rate}"
            )
        object.__setattr__(self, "rate", float(rate))
        object.__setattr__(self, "sessions", session_tuple)

    def __len__(self) -> int:
        return len(self.sessions)

    @property
    def total_phi(self) -> float:
        """Sum of GPS weights."""
        return sum(s.phi for s in self.sessions)

    def guaranteed_rate(self, session_index: int) -> float:
        """``g_i = phi_i / sum phi * rate``."""
        return (
            self.sessions[session_index].phi / self.total_phi * self.rate
        )

    def partition(self) -> FeasiblePartition:
        """Feasible partition from token rates and weights."""
        return feasible_partition(
            [s.rho for s in self.sessions],
            [s.phi for s in self.sessions],
            server_rate=self.rate,
        )

    def is_rpps(self, *, rel_tol: float = 1e-9) -> bool:
        """True when weights are proportional to token rates."""
        ratios = [s.phi / s.rho for s in self.sessions]
        lo, hi = min(ratios), max(ratios)
        return hi - lo <= rel_tol * hi


@dataclass(frozen=True)
class DeterministicBounds:
    """Worst-case bounds for one session (hard guarantees)."""

    session_name: str
    max_backlog: float
    max_delay: float
    output_envelope: LBAPEnvelope


def pg_session_bounds(
    config: DeterministicGPSConfig,
    session_index: int,
    *,
    partition: FeasiblePartition | None = None,
) -> DeterministicBounds:
    """Deterministic partition-based bounds for one session.

    For a session in partition class ``H_{k+1}`` (0-based ``k``),

        Q_i <= sigma_i + psi_i * sum_{j in lower classes} sigma_j,

    with ``psi_i`` the partition weight share, and ``D_i <= Q_i / g_i``.
    For ``k = 0`` this is the Parekh-Gallager closed form
    ``Q_i <= sigma_i``.  The output conforms to
    ``(Q_i_max + sigma_i... )`` — more precisely the departure envelope
    ``(sigma_i + psi_i sum sigma_j, rho_i)`` from the deterministic
    analogue of Lemma 4.
    """
    if partition is None:
        partition = config.partition()
    session = config.sessions[session_index]
    level = partition.level(session_index)
    psi = partition.psi(session_index)
    lower_sigma = sum(
        config.sessions[j].sigma
        for j in partition.prefix_sessions(level)
    )
    max_backlog = session.sigma + psi * lower_sigma
    g = config.guaranteed_rate(session_index)
    return DeterministicBounds(
        session_name=session.name,
        max_backlog=max_backlog,
        max_delay=max_backlog / g,
        output_envelope=LBAPEnvelope(max_backlog, session.rho),
    )


def pg_all_bounds(
    config: DeterministicGPSConfig,
) -> list[DeterministicBounds]:
    """Deterministic bounds for every session."""
    partition = config.partition()
    return [
        pg_session_bounds(config, i, partition=partition)
        for i in range(len(config))
    ]
