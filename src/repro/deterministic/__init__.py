"""Deterministic (worst-case) GPS bounds for leaky-bucket sources —
the Parekh-Gallager baseline that the paper's statistical analysis
extends."""

from repro.deterministic.all_greedy import AllGreedyResult, all_greedy_analysis
from repro.deterministic.network import PGNetworkBounds, pg_rpps_network_bounds
from repro.deterministic.parekh_gallager import (
    DeterministicBounds,
    DeterministicGPSConfig,
    DeterministicSession,
    pg_all_bounds,
    pg_session_bounds,
)

__all__ = [
    "AllGreedyResult",
    "all_greedy_analysis",
    "PGNetworkBounds",
    "pg_rpps_network_bounds",
    "DeterministicBounds",
    "DeterministicGPSConfig",
    "DeterministicSession",
    "pg_all_bounds",
    "pg_session_bounds",
]
