"""The packet engine's result object (the ``SimResult`` protocol).

:class:`PacketSimResult` carries the streaming aggregates of one
:class:`repro.packet.engine.PacketEngine` run — packet counts, delay
extremes, the frozen :class:`repro.packet.gap.GapReport` — plus the
full :class:`repro.sim.packet.ScheduledPacket` tuple when the engine
ran with ``collect=True`` (the oracle-comparison mode).  ``summary()``
matches the shape of :meth:`repro.sim.packet.WFQResult.summary` so
downstream tooling treats batch and streaming runs alike.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.packet.gap import GapReport
from repro.sim.packet import ScheduledPacket

__all__ = ["PacketSimResult"]


@dataclass(frozen=True)
class PacketSimResult:
    """Aggregates of one streaming PGPS/WFQ run."""

    rate: float
    phis: tuple[float, ...]
    num_packets: int
    gap_report: GapReport
    drained: bool = True
    packets: tuple[ScheduledPacket, ...] | None = None

    @property
    def total_size(self) -> float:
        """Total traffic served."""
        return self.gap_report.total_size

    @property
    def max_pgps_delay(self) -> float:
        """Largest packet-system delay."""
        return self.gap_report.max_delay

    @property
    def mean_pgps_delay(self) -> float:
        """Mean packet-system delay."""
        return self.gap_report.mean_delay

    def max_pgps_gps_gap(self) -> float:
        """``max_k (pgps_finish_k - gps_finish_k)`` (cf.
        :meth:`repro.sim.packet.WFQResult.max_pgps_gps_gap`)."""
        return self.gap_report.max_gap

    def with_drained(self, drained: bool) -> "PacketSimResult":
        """A copy with the ``drained`` flag replaced."""
        return replace(self, drained=bool(drained))

    def summary(self) -> dict[str, Any]:
        """Scalar facts about the run (the ``SimResult`` protocol)."""
        return {
            "kind": "packet_engine",
            "num_packets": self.num_packets,
            "num_sessions": len(self.phis),
            "rate": self.rate,
            "phis": list(self.phis),
            "total_size": self.total_size,
            "mean_pgps_delay": self.mean_pgps_delay,
            "max_pgps_delay": self.max_pgps_delay,
            "max_pgps_gps_gap": self.gap_report.max_gap,
            "gap_bound": self.gap_report.bound,
            "gap_violations": self.gap_report.violations,
            "drained": self.drained,
        }

    def to_dict(self) -> dict[str, Any]:
        """Summary plus the full gap report (and stamps if collected)."""
        payload = self.summary()
        payload["gap_report"] = self.gap_report.to_record()
        if self.packets is not None:
            payload["packets"] = [
                {
                    "session": p.packet.session,
                    "size": p.packet.size,
                    "arrival_time": p.packet.arrival_time,
                    "virtual_start": p.virtual_start,
                    "virtual_finish": p.virtual_finish,
                    "pgps_start": p.pgps_start,
                    "pgps_finish": p.pgps_finish,
                    "gps_finish": p.gps_finish,
                }
                for p in self.packets
            ]
        return payload
