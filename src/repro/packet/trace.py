"""The JSONL ``PacketTrace`` wire format (pcap-style packet logs).

A packet trace is one header line followed by one line per packet, in
nondecreasing arrival order::

    {"kind": "packet-trace-header", "version": 1,
     "phis": [0.5, 0.25, 0.25], "rate": 1.0,
     "names": ["voice", "video", "data"]}
    {"kind": "packet", "time": 0.125, "session": 0, "size": 0.2}
    {"kind": "packet", "time": 0.125, "session": 2, "size": 1.0}
    ...

``rate`` and ``names`` are optional (``serve --packet`` cross-checks
``rate`` against the serving configuration when both are present).
The same lines feed three consumers: :func:`read_packet_trace` streams
them into :class:`repro.packet.engine.PacketEngine`, ``repro serve
--packet`` ingests them as online events (each line WAL-logged before
it is applied), and :class:`PacketTrace` materializes small traces for
tests and the oracle comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Union

from repro.errors import ValidationError
from repro.sim.packet import Packet
from repro.utils.validation import check_positive, check_weights

__all__ = [
    "PacketTrace",
    "PacketTraceHeader",
    "packet_from_record",
    "packet_to_record",
    "read_packet_trace",
    "write_packet_trace",
]

TRACE_FORMAT_VERSION = 1

_Source = Union[str, Path, IO[str], Iterable[str]]


@dataclass(frozen=True)
class PacketTraceHeader:
    """The trace preamble: weight vector plus optional rate/names."""

    phis: tuple[float, ...]
    rate: float | None = None
    names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        phis = tuple(check_weights("phis", list(self.phis)))
        object.__setattr__(self, "phis", phis)
        if self.rate is not None:
            check_positive("rate", self.rate)
            object.__setattr__(self, "rate", float(self.rate))
        if self.names is not None:
            names = tuple(str(n) for n in self.names)
            if len(names) != len(phis):
                raise ValidationError(
                    f"got {len(phis)} sessions but {len(names)} names"
                )
            object.__setattr__(self, "names", names)

    @property
    def num_sessions(self) -> int:
        """Number of sessions the trace addresses."""
        return len(self.phis)

    def to_record(self) -> dict[str, Any]:
        """The header's JSONL record."""
        record: dict[str, Any] = {
            "kind": "packet-trace-header",
            "version": TRACE_FORMAT_VERSION,
            "phis": list(self.phis),
        }
        if self.rate is not None:
            record["rate"] = self.rate
        if self.names is not None:
            record["names"] = list(self.names)
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "PacketTraceHeader":
        """Parse a header record (strict on kind and version)."""
        if record.get("kind") != "packet-trace-header":
            raise ValidationError(
                "expected a packet-trace-header record, got kind="
                f"{record.get('kind')!r}"
            )
        version = record.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported packet-trace version {version!r} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        phis = record.get("phis")
        if not isinstance(phis, list) or not phis:
            raise ValidationError(
                "packet-trace header must carry a non-empty phis list"
            )
        names = record.get("names")
        return cls(
            phis=tuple(float(p) for p in phis),
            rate=record.get("rate"),
            names=None if names is None else tuple(names),
        )


def packet_to_record(packet: Packet) -> dict[str, Any]:
    """One packet as its JSONL record."""
    return {
        "kind": "packet",
        "time": packet.arrival_time,
        "session": packet.session,
        "size": packet.size,
    }


def packet_from_record(record: dict[str, Any]) -> Packet:
    """Parse a packet record (``Packet`` validation applies)."""
    if record.get("kind") != "packet":
        raise ValidationError(
            f"expected a packet record, got kind={record.get('kind')!r}"
        )
    try:
        return Packet(
            session=int(record["session"]),
            size=float(record["size"]),
            arrival_time=float(record["time"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(
            f"malformed packet record {record!r}: {exc}"
        ) from exc


def _open_lines(source: _Source) -> tuple[Iterable[str], IO[str] | None]:
    if isinstance(source, (str, Path)):
        handle = open(source, "r", encoding="utf-8")
        return handle, handle
    return source, None


def read_packet_trace(
    source: _Source,
) -> tuple[PacketTraceHeader, Iterator[Packet]]:
    """Open a JSONL packet trace for streaming.

    ``source`` is a path, an open text file, or any iterable of lines.
    The header is parsed eagerly (the first non-blank line *must* be
    one); packets come back as a lazy iterator that validates kinds,
    session ranges and arrival monotonicity as it goes — a million-
    packet trace is never materialized.
    """
    lines, handle = _open_lines(source)
    iterator = iter(lines)
    header: PacketTraceHeader | None = None
    for line in iterator:
        stripped = line.strip()
        if not stripped:
            continue
        header = PacketTraceHeader.from_record(json.loads(stripped))
        break
    if header is None:
        if handle is not None:
            handle.close()
        raise ValidationError("packet trace is empty (no header line)")

    def packets() -> Iterator[Packet]:
        last_time = 0.0
        try:
            for line in iterator:
                stripped = line.strip()
                if not stripped:
                    continue
                packet = packet_from_record(json.loads(stripped))
                if packet.session >= header.num_sessions:
                    raise ValidationError(
                        f"packet session {packet.session} out of "
                        f"range (trace declares "
                        f"{header.num_sessions} sessions)"
                    )
                if packet.arrival_time < last_time:
                    raise ValidationError(
                        f"packet trace is out of order: arrival "
                        f"{packet.arrival_time} after {last_time}"
                    )
                last_time = packet.arrival_time
                yield packet
        finally:
            if handle is not None:
                handle.close()

    return header, packets()


def write_packet_trace(
    destination: str | Path | IO[str],
    header: PacketTraceHeader,
    packets: Iterable[Packet],
) -> int:
    """Write a header plus packets as JSONL; returns packets written.

    Streams — ``packets`` may be any iterable, including a generator
    over millions of packets.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_packet_trace(handle, header, packets)
    destination.write(json.dumps(header.to_record()))
    destination.write("\n")
    count = 0
    for packet in packets:
        destination.write(json.dumps(packet_to_record(packet)))
        destination.write("\n")
        count += 1
    return count


@dataclass(frozen=True)
class PacketTrace:
    """A fully materialized packet trace (header + ordered packets).

    For workloads that fit in memory — tests, oracle comparisons,
    :meth:`repro.scenario.Scenario.to_packet_trace` output.  Large
    traces should stay on the streaming reader/writer.
    """

    header: PacketTraceHeader
    packets: tuple[Packet, ...]

    def __post_init__(self) -> None:
        packets = tuple(self.packets)
        last_time = 0.0
        for packet in packets:
            if packet.session >= self.header.num_sessions:
                raise ValidationError(
                    f"packet session {packet.session} out of range "
                    f"(trace declares {self.header.num_sessions} "
                    "sessions)"
                )
            if packet.arrival_time < last_time:
                raise ValidationError(
                    f"packet trace is out of order: arrival "
                    f"{packet.arrival_time} after {last_time}"
                )
            last_time = packet.arrival_time
        object.__setattr__(self, "packets", packets)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    @property
    def total_size(self) -> float:
        """Total traffic carried by the trace."""
        return float(sum(p.size for p in self.packets))

    def write(self, destination: str | Path | IO[str]) -> int:
        """Serialize to JSONL; returns the number of packet lines."""
        return write_packet_trace(
            destination, self.header, self.packets
        )

    @classmethod
    def read(cls, source: _Source) -> "PacketTrace":
        """Materialize a JSONL trace (header validation included)."""
        header, packets = read_packet_trace(source)
        return cls(header=header, packets=tuple(packets))
