"""Streaming GPS virtual clock with online finish-time inversion.

The virtual clock of PGPS/WFQ advances at rate
``r / sum_{i in B(t)} phi_i`` over the GPS-busy set ``B(t)`` and is
piecewise linear between *breakpoints* (busy-set changes and arrival
instants).  The reference implementation
(:class:`repro.sim.packet._VirtualClock`) keeps the busy set as a
materialized index list, pays an O(busy) exactly-rounded φ sum per
slope change, records every breakpoint, and inverts virtual finish
values by post-hoc binary search.

:class:`StreamingVirtualClock` computes the *same* trajectory in
O(log busy) amortized per event and O(busy + pending) memory:

* the busy-φ mass lives in a :class:`repro.analysis.incremental.ExactSum`
  (Shewchuk partials) whose value is the correctly-rounded sum of the
  live multiset — bit-identical to the ``math.fsum`` the reference
  clock computes over a gathered slice, regardless of add/remove
  history;
* the next busy departure comes from a lazy-deletion min-heap of
  ``(virtual_finish, session)`` entries — an entry is live while it
  matches the session's current last finish and the session is still
  busy;
* inversion is *streaming*: a query ``w`` registered via
  :meth:`register` resolves at the first appended breakpoint whose
  virtual value reaches ``w``, interpolating inside the segment with
  the reference formula.  Queries equal to the current virtual value
  resolve against the start of the current equal-value plateau —
  exactly the first-occurrence semantics of the reference binary
  search — so no breakpoint history is retained at all.

Every floating-point expression matches the reference clock operation
for operation; the equivalence fuzz suite asserts ``np.array_equal``
on all stamps across both implementations.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any

from repro.analysis.incremental import ExactSum
from repro.errors import NumericalError

__all__ = ["StreamingVirtualClock"]

_EPS = 1e-12


def _segment_time(
    t0: float, v0: float, t1: float, v1: float, w: float
) -> float:
    """First real time ``V`` reaches ``w`` inside one linear segment.

    The expression mirrors ``_VirtualClock.real_time_of`` exactly
    (flat-segment guard included) so resolved times are bit-identical
    to the reference inversion.
    """
    if v1 <= v0 + _EPS:
        return t1
    fraction = (w - v0) / (v1 - v0)
    return t0 + fraction * (t1 - t0)


class StreamingVirtualClock:
    """O(log busy) virtual clock over a fixed weight vector.

    Parameters
    ----------
    rate:
        Server transmission rate ``r``.
    phis:
        GPS weights (already validated by the caller).

    Resolved inversion queries accumulate in :attr:`resolved` as
    ``(token, gps_finish)`` pairs; the engine drains that deque after
    every advance.
    """

    __slots__ = (
        "_rate",
        "_phis",
        "_time",
        "_virtual",
        "_last_finish",
        "_in_busy",
        "_busy_heap",
        "_busy_count",
        "_phi_sum",
        "_phi_sum_value",
        "_prev_t",
        "_prev_v",
        "_plateau_t",
        "_plateau_v",
        "_plateau_prev",
        "_pending",
        "_pending_seq",
        "resolved",
    )

    def __init__(self, rate: float, phis: list[float]) -> None:
        self._rate = float(rate)
        self._phis = [float(p) for p in phis]
        n = len(self._phis)
        self._time = 0.0
        self._virtual = 0.0
        self._last_finish = [0.0] * n
        self._in_busy = [False] * n
        # Lazy-deletion heap of (virtual_finish, session); an entry is
        # live iff the session is busy and the finish is its current
        # last finish.
        self._busy_heap: list[tuple[float, int]] = []
        self._busy_count = 0
        self._phi_sum = ExactSum()
        self._phi_sum_value = 0.0
        # Latest appended breakpoint (the initial one is (0, 0)).
        self._prev_t = 0.0
        self._prev_v = 0.0
        # The current plateau: the maximal trailing run of breakpoints
        # sharing the current virtual value, plus the breakpoint just
        # before it (None while the plateau starts at the origin).
        self._plateau_t = 0.0
        self._plateau_v = 0.0
        self._plateau_prev: tuple[float, float] | None = None
        # Pending inversion queries: (virtual_finish, seq, token).
        self._pending: list[tuple[float, int, Any]] = []
        self._pending_seq = 0
        self.resolved: deque[tuple[Any, float]] = deque()

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        """Current real time."""
        return self._time

    @property
    def virtual_now(self) -> float:
        """Current virtual time ``V``."""
        return self._virtual

    @property
    def busy_count(self) -> int:
        """Number of GPS-busy sessions."""
        return self._busy_count

    @property
    def pending_count(self) -> int:
        """Number of unresolved inversion queries."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # busy-set maintenance
    # ------------------------------------------------------------------
    def _settle(self, session: int) -> None:
        self._in_busy[session] = False
        self._busy_count -= 1
        self._phi_sum.remove(self._phis[session])
        self._phi_sum_value = self._phi_sum.value

    def _peek_next_finish(self) -> float:
        """Smallest live busy finish (the heap top after pruning)."""
        heap = self._busy_heap
        in_busy = self._in_busy
        last = self._last_finish
        while heap:
            finish, session = heap[0]
            if in_busy[session] and finish == last[session]:
                return finish
            heapq.heappop(heap)
        raise NumericalError(
            "busy heap is empty while busy_count > 0 — the busy-set "
            "bookkeeping desynchronized"
        )

    def _drop_settled(self) -> None:
        """Evict busy sessions whose last finish ``V`` has crossed."""
        threshold = self._virtual + _EPS
        heap = self._busy_heap
        in_busy = self._in_busy
        last = self._last_finish
        while heap:
            finish, session = heap[0]
            if not in_busy[session] or finish != last[session]:
                heapq.heappop(heap)
                continue
            if finish <= threshold:
                heapq.heappop(heap)
                self._settle(session)
                continue
            break

    # ------------------------------------------------------------------
    # breakpoints and inversion
    # ------------------------------------------------------------------
    def _append_breakpoint(self, t: float, v: float) -> None:
        prev_t = self._prev_t
        prev_v = self._prev_v
        pending = self._pending
        resolved = self.resolved
        while pending and pending[0][0] <= v:
            w, _, token = heapq.heappop(pending)
            resolved.append(
                (token, _segment_time(prev_t, prev_v, t, v, w))
            )
        if v != self._plateau_v:
            self._plateau_prev = (prev_t, prev_v)
            self._plateau_t = t
            self._plateau_v = v
        self._prev_t = t
        self._prev_v = v

    def register(self, w: float, token: Any) -> None:
        """Queue an inversion query for virtual value ``w``.

        ``(token, real_time)`` lands in :attr:`resolved` once the
        clock establishes the first real time ``V`` reaches ``w`` —
        immediately when ``w`` is already covered, otherwise at the
        breakpoint that crosses it.
        """
        if w <= self._virtual:
            # Already reached: resolve at the start of the current
            # plateau — the first breakpoint with this virtual value,
            # matching bisect_left first-occurrence semantics.
            if self._plateau_prev is None:
                self.resolved.append((token, self._plateau_t))
            else:
                t0, v0 = self._plateau_prev
                self.resolved.append(
                    (
                        token,
                        _segment_time(
                            t0, v0, self._plateau_t, self._plateau_v, w
                        ),
                    )
                )
            return
        self._pending_seq += 1
        heapq.heappush(self._pending, (w, self._pending_seq, token))

    # ------------------------------------------------------------------
    # the reference trajectory, streamed
    # ------------------------------------------------------------------
    def advance_to(self, target_time: float) -> None:
        """Advance real time to ``target_time``, updating ``V``.

        Arithmetic is expression-for-expression the reference clock's
        ``advance_to``; only the busy-set bookkeeping differs.
        """
        while self._time < target_time - _EPS:
            if self._busy_count == 0:
                self._time = target_time
                self._append_breakpoint(target_time, self._virtual)
                return
            slope = self._rate / self._phi_sum_value
            next_finish = self._peek_next_finish()
            crossing_dt = (next_finish - self._virtual) / slope
            remaining = target_time - self._time
            if crossing_dt <= remaining + _EPS:
                self._time += crossing_dt
                self._virtual = next_finish
            else:
                self._time = target_time
                self._virtual += slope * remaining
            self._drop_settled()
            self._append_breakpoint(self._time, self._virtual)

    def stamp(self, session: int, size: float) -> tuple[float, float]:
        """Assign virtual start/finish stamps to an arriving packet.

        The clock must already be advanced to the arrival time.
        """
        last = self._last_finish
        virtual = self._virtual
        prev_finish = last[session]
        start = virtual if virtual >= prev_finish else prev_finish
        finish = start + size / self._phis[session]
        last[session] = finish
        if finish > virtual + _EPS:
            if not self._in_busy[session]:
                self._in_busy[session] = True
                self._busy_count += 1
                self._phi_sum.add(self._phis[session])
                self._phi_sum_value = self._phi_sum.value
            heapq.heappush(self._busy_heap, (finish, session))
        return start, finish

    def drain(self) -> None:
        """Run ``V`` to the last busy finish and resolve every query.

        Mirrors the reference ``drain``; afterwards any still-pending
        query must sit within ``eps`` of the final virtual value (a
        stamp that never re-entered the busy set) and resolves to the
        final breakpoint, as the reference inversion does.
        """
        while self._busy_count:
            slope = self._rate / self._phi_sum_value
            next_finish = self._peek_next_finish()
            self._time += (next_finish - self._virtual) / slope
            self._virtual = next_finish
            self._drop_settled()
            self._append_breakpoint(self._time, self._virtual)
        pending = self._pending
        while pending:
            w, _, token = heapq.heappop(pending)
            if w <= self._virtual + _EPS:
                self.resolved.append((token, self._prev_t))
            else:
                raise NumericalError(
                    f"virtual value {w} unreachable after drain "
                    f"(final V={self._virtual}) — a stamp exceeded "
                    "every busy finish"
                )

    # ------------------------------------------------------------------
    # snapshot round-trip
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable state; restoring reproduces the clock bit
        for bit (including the exact-φ partials)."""
        return {
            "rate": self._rate,
            "phis": list(self._phis),
            "time": self._time,
            "virtual": self._virtual,
            "last_finish": list(self._last_finish),
            "in_busy": list(self._in_busy),
            "busy_heap": [list(entry) for entry in self._busy_heap],
            "busy_count": self._busy_count,
            "phi_partials": list(self._phi_sum.partials),
            "prev": [self._prev_t, self._prev_v],
            "plateau": [self._plateau_t, self._plateau_v],
            "plateau_prev": (
                None
                if self._plateau_prev is None
                else list(self._plateau_prev)
            ),
            "pending": [list(entry) for entry in self._pending],
            "pending_seq": self._pending_seq,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StreamingVirtualClock":
        """Rebuild a clock from :meth:`export_state` output."""
        clock = cls(float(state["rate"]), list(state["phis"]))
        clock._time = float(state["time"])
        clock._virtual = float(state["virtual"])
        clock._last_finish = [float(x) for x in state["last_finish"]]
        clock._in_busy = [bool(x) for x in state["in_busy"]]
        clock._busy_heap = [
            (float(f), int(s)) for f, s in state["busy_heap"]
        ]
        clock._busy_count = int(state["busy_count"])
        clock._phi_sum = ExactSum.from_partials(
            float(p) for p in state["phi_partials"]
        )
        clock._phi_sum_value = math.fsum(clock._phi_sum.partials)
        clock._prev_t, clock._prev_v = (
            float(state["prev"][0]),
            float(state["prev"][1]),
        )
        clock._plateau_t, clock._plateau_v = (
            float(state["plateau"][0]),
            float(state["plateau"][1]),
        )
        plateau_prev = state["plateau_prev"]
        clock._plateau_prev = (
            None
            if plateau_prev is None
            else (float(plateau_prev[0]), float(plateau_prev[1]))
        )
        clock._pending = [
            (float(w), int(seq), int(token))
            for w, seq, token in state["pending"]
        ]
        clock._pending_seq = int(state["pending_seq"])
        return clock
