"""PGPS-vs-GPS departure-gap statistics against the ``L_max/r`` bound.

Parekh & Gallager couple the packet system to its fluid reference:
every packet's PGPS departure trails its GPS departure by at most
``L_max / r`` (:class:`repro.core.pgps.PacketizationPenalty`).  The
:class:`GapAccumulator` measures that coupling *streaming* — one
O(1) update per departed packet, per-session max/mean gaps and
delays, no packet retention — and :meth:`GapAccumulator.report`
freezes the measurement into a :class:`GapReport` that names the
observed ``L_max``, the implied bound, and any violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.pgps import PacketizationPenalty
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # circular-free: sim.packet never imports this
    from repro.sim.packet import WFQResult

__all__ = ["GapAccumulator", "GapReport", "SessionGap"]

#: Tolerance on the coupling inequality: the bound is exact in real
#: arithmetic, so only rounding noise may sit above it.
_GAP_TOL = 1e-9

# Per-session accumulator slots (plain lists keep the hot update cheap
# and the snapshot payload trivially JSON-serializable).
_COUNT, _SIZE, _SUM_GAP, _MAX_GAP, _SUM_DELAY, _MAX_DELAY, _VIOL = range(7)


@dataclass(frozen=True)
class SessionGap:
    """One session's PGPS−GPS departure-gap statistics."""

    session: int
    packets: int
    total_size: float
    max_gap: float
    mean_gap: float
    max_delay: float
    mean_delay: float
    violations: int

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable row."""
        return {
            "session": self.session,
            "packets": self.packets,
            "total_size": self.total_size,
            "max_gap": self.max_gap,
            "mean_gap": self.mean_gap,
            "max_delay": self.max_delay,
            "mean_delay": self.mean_delay,
            "violations": self.violations,
        }


@dataclass(frozen=True)
class GapReport:
    """Measured PGPS−GPS departure gaps vs the ``L_max/r`` correction.

    ``bound`` is ``L_max / r`` computed from the *observed* largest
    packet (zero when no packet departed); ``violations`` counts
    packets whose gap exceeded it beyond rounding tolerance — the
    coupling theorem says the count must be zero.
    """

    rate: float
    num_packets: int
    total_size: float
    max_size: float
    bound: float
    max_gap: float
    mean_gap: float
    max_delay: float
    mean_delay: float
    violations: int
    sessions: tuple[SessionGap, ...]

    @property
    def satisfied(self) -> bool:
        """Whether every packet obeyed the coupling bound."""
        return self.violations == 0

    @property
    def slack(self) -> float:
        """``bound - max_gap``: how loose the correction ran."""
        return self.bound - self.max_gap

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable report (the ``gap-report`` record body)."""
        return {
            "kind": "gap-report",
            "rate": self.rate,
            "num_packets": self.num_packets,
            "total_size": self.total_size,
            "max_size": self.max_size,
            "bound": self.bound,
            "max_gap": self.max_gap,
            "mean_gap": self.mean_gap,
            "max_delay": self.max_delay,
            "mean_delay": self.mean_delay,
            "slack": self.slack,
            "violations": self.violations,
            "satisfied": self.satisfied,
            "sessions": [s.to_record() for s in self.sessions],
        }


class GapAccumulator:
    """Streaming per-session gap/delay statistics.

    ``observe`` is called once per departed packet in departure order;
    the accumulation order is part of the serialized state, so a
    recovered service resumes the exact float sums of an uninterrupted
    run.
    """

    __slots__ = ("_rate", "_sessions", "_max_size")

    def __init__(self, rate: float) -> None:
        check_positive("rate", rate)
        self._rate = float(rate)
        self._sessions: dict[int, list[float]] = {}
        self._max_size = 0.0

    @property
    def num_packets(self) -> int:
        """Packets observed so far."""
        return int(
            sum(row[_COUNT] for row in self._sessions.values())
        )

    @property
    def max_size(self) -> float:
        """Largest packet observed so far (the empirical ``L_max``)."""
        return self._max_size

    def observe(
        self,
        session: int,
        size: float,
        arrival_time: float,
        pgps_finish: float,
        gps_finish: float,
    ) -> None:
        """Fold one departed packet into the statistics."""
        gap = pgps_finish - gps_finish
        delay = pgps_finish - arrival_time
        row = self._sessions.get(session)
        if row is None:
            row = [0.0] * 7
            self._sessions[session] = row
        row[_COUNT] += 1.0
        row[_SIZE] += size
        row[_SUM_GAP] += gap
        if gap > row[_MAX_GAP] or row[_COUNT] == 1.0:
            row[_MAX_GAP] = gap
        row[_SUM_DELAY] += delay
        if delay > row[_MAX_DELAY] or row[_COUNT] == 1.0:
            row[_MAX_DELAY] = delay
        if size > self._max_size:
            self._max_size = size
        if gap > self._max_size / self._rate + _GAP_TOL:
            # The running max is the right streaming L_max: any packet
            # that delayed this one started (hence departed) earlier,
            # so it has already been folded into max_size by the time
            # the departure-ordered observe() sees this packet.
            row[_VIOL] += 1.0

    def report(self) -> GapReport:
        """Freeze the statistics into a :class:`GapReport`."""
        sessions = []
        total = 0
        total_size = 0.0
        total_gap = 0.0
        total_delay = 0.0
        max_gap = 0.0
        max_delay = 0.0
        violations = 0
        first = True
        for session in sorted(self._sessions):
            row = self._sessions[session]
            count = int(row[_COUNT])
            sessions.append(
                SessionGap(
                    session=session,
                    packets=count,
                    total_size=row[_SIZE],
                    max_gap=row[_MAX_GAP],
                    mean_gap=row[_SUM_GAP] / count,
                    max_delay=row[_MAX_DELAY],
                    mean_delay=row[_SUM_DELAY] / count,
                    violations=int(row[_VIOL]),
                )
            )
            total += count
            total_size += row[_SIZE]
            total_gap += row[_SUM_GAP]
            total_delay += row[_SUM_DELAY]
            violations += int(row[_VIOL])
            if first or row[_MAX_GAP] > max_gap:
                max_gap = row[_MAX_GAP]
            if first or row[_MAX_DELAY] > max_delay:
                max_delay = row[_MAX_DELAY]
            first = False
        bound = 0.0
        if total:
            bound = PacketizationPenalty(
                max_packet_size=self._max_size, rate=self._rate
            ).delay_shift
        return GapReport(
            rate=self._rate,
            num_packets=total,
            total_size=total_size,
            max_size=self._max_size,
            bound=bound,
            max_gap=max_gap,
            mean_gap=total_gap / total if total else 0.0,
            max_delay=max_delay,
            mean_delay=total_delay / total if total else 0.0,
            violations=violations,
            sessions=tuple(sessions),
        )

    @classmethod
    def from_result(
        cls, result: "WFQResult"
    ) -> "GapAccumulator":
        """Accumulate a batch :class:`repro.sim.packet.WFQResult` —
        the oracle-side path the equivalence tests compare against."""
        acc = cls(result.rate)
        for p in result.packets:
            acc.observe(
                p.packet.session,
                p.packet.size,
                p.packet.arrival_time,
                p.pgps_finish,
                p.gps_finish,
            )
        return acc

    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable state (exact float sums preserved)."""
        return {
            "rate": self._rate,
            "max_size": self._max_size,
            "sessions": [
                [session, *row]
                for session, row in sorted(self._sessions.items())
            ],
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "GapAccumulator":
        """Rebuild an accumulator from :meth:`export_state` output."""
        acc = cls(float(state["rate"]))
        acc._max_size = float(state["max_size"])
        for entry in state["sessions"]:
            acc._sessions[int(entry[0])] = [
                float(x) for x in entry[1:]
            ]
        return acc
