"""One-pass discrete-event PGPS/WFQ engine.

:class:`PacketEngine` schedules a nondecreasing-arrival-time packet
stream exactly as :class:`repro.sim.packet.WFQServer` does — same
virtual-clock trajectory, same non-preemptive smallest-virtual-finish
transmission order, same fluid-reference inversion — but in a single
streaming pass:

* packets are **pushed** one at a time (or pulled from an iterator by
  :meth:`run`); the engine never sorts or materializes the workload;
* completed packets are **emitted** in PGPS departure order, each as a
  ``packet-served`` record through an optional
  :class:`repro.online.records.RecordSink` and as a streaming update
  of the :class:`repro.packet.gap.GapAccumulator`;
* memory is O(packets in system): the ready queue, the in-flight
  record table and the virtual clock's pending-inversion heap all
  shrink as packets depart.

Equivalence with the oracle is arithmetic, not approximate: the
transmit loop interleaves admissions and transmissions in the exact
order the oracle's batch loop visits them, and the
:class:`repro.packet.vclock.StreamingVirtualClock` reproduces the
reference clock bit for bit.  The hypothesis fuzz suite asserts
``np.array_equal`` on every stamp column.  Ties (equal arrival times)
are broken by push order, so feed the engine packets sorted by
``(arrival_time, session)`` — the order :class:`PacketTrace` files
are written in — to match the oracle's canonical ordering.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Iterable

from repro.errors import ValidationError
from repro.online.records import RecordSink, as_record_sink
from repro.packet.gap import GapAccumulator, GapReport
from repro.packet.results import PacketSimResult
from repro.packet.trace import PacketTrace
from repro.packet.vclock import StreamingVirtualClock
from repro.sim.packet import Packet, ScheduledPacket
from repro.utils.validation import check_positive, check_weights

__all__ = ["PacketEngine"]

_EPS = 1e-12

# In-flight record slots.
(
    _SESSION,
    _SIZE,
    _ARRIVAL,
    _V_START,
    _V_FINISH,
    _PGPS_START,
    _PGPS_FINISH,
    _GPS_FINISH,
) = range(8)


class PacketEngine:
    """Streaming PGPS/WFQ discrete-event scheduler.

    Parameters
    ----------
    rate:
        Server transmission rate.
    phis:
        GPS weights, one per session.
    sink:
        Optional :class:`~repro.online.records.RecordSink` (or raw
        text stream) receiving one ``packet-served`` record per
        departed packet; ``None`` keeps only the streaming aggregates.
    collect:
        Retain every :class:`~repro.sim.packet.ScheduledPacket` in
        departure order on the result — the oracle-comparison mode;
        leave off for large traces.
    """

    def __init__(
        self,
        rate: float,
        phis: Iterable[float],
        *,
        sink: RecordSink | Any | None = None,
        collect: bool = False,
    ) -> None:
        check_positive("rate", rate)
        self._phis = check_weights("phis", list(phis))
        self._rate = float(rate)
        self._clock = StreamingVirtualClock(self._rate, self._phis)
        self._sink: RecordSink | None = (
            None if sink is None else as_record_sink(sink)
        )
        self._collect = bool(collect)
        self._collected: list[ScheduledPacket] = []
        # In-flight packets: admission seq -> mutable record.
        self._recs: dict[int, list[Any]] = {}
        # Transmission queue: (virtual_finish, admission seq).
        self._ready: list[tuple[float, int]] = []
        # Transmitted but not yet emitted (waiting on the GPS finish),
        # in departure order.
        self._departed: deque[int] = deque()
        self._seq = 0
        self._server_free_at = 0.0
        self._last_arrival = 0.0
        self._pushed = 0
        self._emitted = 0
        self._queued_size = 0.0
        self._gap = GapAccumulator(self._rate)
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Transmission rate."""
        return self._rate

    @property
    def phis(self) -> tuple[float, ...]:
        """The GPS weight vector."""
        return tuple(self._phis)

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return len(self._phis)

    @property
    def packets_pushed(self) -> int:
        """Packets accepted so far."""
        return self._pushed

    @property
    def packets_emitted(self) -> int:
        """Packets fully resolved and emitted so far."""
        return self._emitted

    @property
    def in_flight(self) -> int:
        """Packets admitted but not yet emitted."""
        return self._pushed - self._emitted

    @property
    def last_arrival(self) -> float:
        """Arrival time of the most recent packet."""
        return self._last_arrival

    @property
    def queued_size(self) -> float:
        """Total size of packets awaiting transmission."""
        return self._queued_size

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has sealed the stream."""
        return self._finished

    # ------------------------------------------------------------------
    # the streaming hot path
    # ------------------------------------------------------------------
    def push(
        self, session: int, size: float, arrival_time: float
    ) -> tuple[float, float]:
        """Admit one packet; returns its virtual (start, finish).

        Packets must arrive in nondecreasing time order (the engine is
        one-pass); violations raise
        :class:`repro.errors.ValidationError` before any state
        changes.  Transmissions that complete strictly before this
        arrival are finalized first, exactly as the oracle's batch
        loop orders them.
        """
        if self._finished:
            raise ValidationError(
                "push() after finish(): the stream is sealed"
            )
        if not 0 <= session < len(self._phis):
            raise ValidationError(
                f"packet session {session} out of range "
                f"(server has {len(self._phis)} sessions)"
            )
        if not (
            math.isfinite(arrival_time) and arrival_time >= 0.0
        ):
            raise ValidationError(
                f"arrival_time must be finite and >= 0, got "
                f"{arrival_time}"
            )
        if arrival_time < self._last_arrival:
            raise ValidationError(
                f"out-of-order packet: arrival {arrival_time} after "
                f"{self._last_arrival} (the streaming engine needs "
                "nondecreasing arrival times)"
            )
        if not (math.isfinite(size) and size > 0.0):
            raise ValidationError(
                f"size must be finite and > 0, got {size}"
            )
        self._last_arrival = arrival_time
        ready = self._ready
        # The server keeps picking winners while it goes idle before
        # this arrival; when the queue empties the next transmission
        # starts no earlier than the arrival itself.
        while ready and arrival_time > self._server_free_at + _EPS:
            self._transmit()
        if not ready and arrival_time > self._server_free_at:
            self._server_free_at = arrival_time
        clock = self._clock
        clock.advance_to(arrival_time)
        v_start, v_finish = clock.stamp(session, size)
        seq = self._seq
        self._seq = seq + 1
        self._recs[seq] = [
            session,
            size,
            arrival_time,
            v_start,
            v_finish,
            None,
            None,
            None,
        ]
        heapq.heappush(ready, (v_finish, seq))
        clock.register(v_finish, seq)
        self._pushed += 1
        self._queued_size += size
        if clock.resolved:
            self._pump()
        return v_start, v_finish

    def push_packet(self, packet: Packet) -> tuple[float, float]:
        """Admit one :class:`~repro.sim.packet.Packet`."""
        return self.push(
            packet.session, packet.size, packet.arrival_time
        )

    def _transmit(self) -> None:
        """Serve the smallest-virtual-finish queued packet."""
        _, seq = heapq.heappop(self._ready)
        rec = self._recs[seq]
        arrival = rec[_ARRIVAL]
        free_at = self._server_free_at
        start = free_at if free_at >= arrival else arrival
        finish = start + rec[_SIZE] / self._rate
        rec[_PGPS_START] = start
        rec[_PGPS_FINISH] = finish
        self._server_free_at = finish
        self._queued_size -= rec[_SIZE]
        self._departed.append(seq)

    def _pump(self) -> None:
        """Apply resolved GPS finishes; emit ready departures in order."""
        resolved = self._clock.resolved
        recs = self._recs
        while resolved:
            seq, gps_finish = resolved.popleft()
            recs[seq][_GPS_FINISH] = gps_finish
        departed = self._departed
        while departed:
            rec = recs[departed[0]]
            if rec[_GPS_FINISH] is None or rec[_PGPS_FINISH] is None:
                break
            self._emit(recs.pop(departed.popleft()))

    def _emit(self, rec: list[Any]) -> None:
        self._emitted += 1
        self._gap.observe(
            rec[_SESSION],
            rec[_SIZE],
            rec[_ARRIVAL],
            rec[_PGPS_FINISH],
            rec[_GPS_FINISH],
        )
        if self._sink is not None:
            self._sink.emit(
                {
                    "kind": "packet-served",
                    "session": rec[_SESSION],
                    "size": rec[_SIZE],
                    "arrival_time": rec[_ARRIVAL],
                    "virtual_start": rec[_V_START],
                    "virtual_finish": rec[_V_FINISH],
                    "pgps_start": rec[_PGPS_START],
                    "pgps_finish": rec[_PGPS_FINISH],
                    "gps_finish": rec[_GPS_FINISH],
                    "gap": rec[_PGPS_FINISH] - rec[_GPS_FINISH],
                }
            )
        if self._collect:
            self._collected.append(
                ScheduledPacket(
                    packet=Packet(
                        session=rec[_SESSION],
                        size=rec[_SIZE],
                        arrival_time=rec[_ARRIVAL],
                    ),
                    virtual_start=rec[_V_START],
                    virtual_finish=rec[_V_FINISH],
                    pgps_start=rec[_PGPS_START],
                    pgps_finish=rec[_PGPS_FINISH],
                    gps_finish=rec[_GPS_FINISH],
                )
            )

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def finish(self) -> PacketSimResult:
        """Seal the stream: transmit the backlog, drain the clock,
        emit every remaining packet, and return the result.

        Idempotent — repeated calls return the same result object.
        """
        if not self._finished:
            while self._ready:
                self._transmit()
            self._clock.drain()
            self._pump()
            self._finished = True
        return self.result()

    def result(self) -> PacketSimResult:
        """The aggregates so far (complete once :meth:`finish` ran)."""
        return PacketSimResult(
            rate=self._rate,
            phis=tuple(self._phis),
            num_packets=self._emitted,
            gap_report=self._gap.report(),
            drained=self._finished,
            packets=(
                tuple(self._collected) if self._collect else None
            ),
        )

    def gap_report(self) -> GapReport:
        """The streaming gap statistics, frozen at this instant."""
        return self._gap.report()

    def run(
        self, packets: Iterable[Packet] | PacketTrace
    ) -> PacketSimResult:
        """Schedule an entire packet iterable and :meth:`finish`."""
        for packet in packets:
            self.push(
                packet.session, packet.size, packet.arrival_time
            )
        return self.finish()

    # ------------------------------------------------------------------
    # snapshot round-trip (the durable-serving contract)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable state; the restored engine continues the
        stream bit for bit (sink/collect wiring is the caller's)."""
        return {
            "version": 1,
            "rate": self._rate,
            "phis": list(self._phis),
            "clock": self._clock.export_state(),
            "recs": [
                [seq, list(rec)]
                for seq, rec in sorted(self._recs.items())
            ],
            "ready": [list(entry) for entry in self._ready],
            "departed": list(self._departed),
            "seq": self._seq,
            "server_free_at": self._server_free_at,
            "last_arrival": self._last_arrival,
            "pushed": self._pushed,
            "emitted": self._emitted,
            "queued_size": self._queued_size,
            "gap": self._gap.export_state(),
            "finished": self._finished,
        }

    @classmethod
    def from_state(
        cls,
        state: dict[str, Any],
        *,
        sink: RecordSink | Any | None = None,
    ) -> "PacketEngine":
        """Rebuild an engine from :meth:`export_state` output."""
        engine = cls(
            float(state["rate"]), list(state["phis"]), sink=sink
        )
        engine._clock = StreamingVirtualClock.from_state(
            state["clock"]
        )
        engine._recs = {
            int(seq): [
                int(rec[_SESSION]),
                float(rec[_SIZE]),
                float(rec[_ARRIVAL]),
                float(rec[_V_START]),
                float(rec[_V_FINISH]),
                None if rec[_PGPS_START] is None else float(rec[_PGPS_START]),
                None if rec[_PGPS_FINISH] is None else float(rec[_PGPS_FINISH]),
                None if rec[_GPS_FINISH] is None else float(rec[_GPS_FINISH]),
            ]
            for seq, rec in state["recs"]
        }
        engine._ready = [
            (float(v), int(seq)) for v, seq in state["ready"]
        ]
        engine._departed = deque(int(s) for s in state["departed"])
        engine._seq = int(state["seq"])
        engine._server_free_at = float(state["server_free_at"])
        engine._last_arrival = float(state["last_arrival"])
        engine._pushed = int(state["pushed"])
        engine._emitted = int(state["emitted"])
        engine._queued_size = float(state["queued_size"])
        engine._gap = GapAccumulator.from_state(state["gap"])
        engine._finished = bool(state["finished"])
        return engine
