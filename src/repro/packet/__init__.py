"""Scalable trace-driven PGPS/WFQ discrete-event simulation.

The paper's bounds are fluid-level; Sections 2 and 7 invoke the
Parekh–Gallager coupling (an ``L_max/r`` delay shift and an ``L_max``
backlog shift) to carry them over to the packet-by-packet discipline.
:mod:`repro.sim.packet` states that coupling on a batch, list-based
simulator; this package *measures* it at scale:

* :mod:`repro.packet.vclock` — a streaming virtual clock: the busy-set
  φ mass lives in an exact incremental accumulator and the next busy
  departure in a lazy-deletion heap, so every slope change costs
  O(log busy); virtual-finish inversion (the GPS reference departure)
  resolves online against the breakpoint stream instead of a post-hoc
  binary search.
* :mod:`repro.packet.engine` — :class:`~repro.packet.engine.PacketEngine`,
  a one-pass discrete-event PGPS/WFQ engine: packets stream in from an
  iterator, scheduled packets stream out through a
  :class:`repro.online.records.RecordSink`, and memory stays
  O(in-system packets).  Bit-identical to the
  :class:`repro.sim.packet.WFQServer` oracle (same exactly-rounded
  arithmetic), ~an order of magnitude faster.
* :mod:`repro.packet.trace` — the JSONL ``PacketTrace`` wire format
  (pcap-style: arrival time, session, length) with a streaming
  reader/writer; :meth:`repro.scenario.Scenario.to_packet_trace`
  produces it from the paper's stochastic sources.
* :mod:`repro.packet.gap` — per-session PGPS−GPS departure-gap
  statistics (:class:`~repro.packet.gap.GapReport`) measured against
  the :class:`repro.core.pgps.PacketizationPenalty` ``L_max/r``
  correction.
* :mod:`repro.packet.results` — the :class:`SimResult`-style summary
  object.
* :mod:`repro.packet.serving` — packetized ingest for the online
  service: ``repro serve --packet`` drives a durable (WAL +
  snapshot) service whose engine is a :class:`PacketEngine`.
"""

from repro.packet.engine import PacketEngine
from repro.packet.gap import GapAccumulator, GapReport, SessionGap
from repro.packet.results import PacketSimResult
from repro.packet.trace import (
    PacketTrace,
    PacketTraceHeader,
    packet_from_record,
    packet_to_record,
    read_packet_trace,
    write_packet_trace,
)
from repro.packet.vclock import StreamingVirtualClock

__all__ = [
    "GapAccumulator",
    "GapReport",
    "PacketEngine",
    "PacketSimResult",
    "PacketTrace",
    "PacketTraceHeader",
    "SessionGap",
    "StreamingVirtualClock",
    "packet_from_record",
    "packet_to_record",
    "read_packet_trace",
    "write_packet_trace",
]
