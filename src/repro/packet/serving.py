"""Packetized online serving: PGPS scheduling on the JSONL serving stack.

``repro serve --packet`` reuses the whole online machinery — the
resilient :class:`repro.online.service.OnlineService` loop, its error
budget and heartbeats, the WAL/snapshot durability of
:class:`repro.online.durability.service.DurableOnlineService`, and
``repro recover`` — while swapping the event vocabulary and the engine:

* the wire format is the :mod:`repro.packet.trace` JSONL — one
  ``packet-trace-header`` record configuring the session weights
  followed by ``packet`` records in nondecreasing arrival order;
* the engine is :class:`PacketStreamEngine`, a thin serving adapter
  around :class:`repro.packet.engine.PacketEngine` exposing the
  ``process`` / ``drain`` / ``result`` / ``export_state`` surface the
  service loop and the snapshot store expect.

Each ingested packet produces one ``packet-accepted`` ack record (the
per-line record the service stamps with its sequence number) and, once
its GPS departure resolves, one ``packet-served`` record carrying the
full PGPS/GPS stamps.  Shutdown transmits the backlog, drains the
virtual clock, and emits a ``gap-report`` record followed by the usual
``summary`` — so a crashed-and-recovered ``--packet`` session drains
to the exact gap report of the uninterrupted run (the durability suite
asserts identity on the serialized records).
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import ValidationError
from repro.online.durability.service import DurableOnlineService
from repro.online.records import RecordSink
from repro.online.service import OnlineService
from repro.packet.engine import PacketEngine
from repro.packet.gap import GapReport
from repro.packet.results import PacketSimResult
from repro.packet.trace import PacketTraceHeader, packet_from_record
from repro.sim.packet import Packet
from repro.utils.validation import check_positive

__all__ = [
    "DurablePacketService",
    "PacketOnlineService",
    "PacketStreamEngine",
]

STATE_FORMAT_VERSION = 1


def _empty_report(rate: float) -> GapReport:
    return GapReport(
        rate=rate,
        num_packets=0,
        total_size=0.0,
        max_size=0.0,
        bound=0.0,
        max_gap=0.0,
        mean_gap=0.0,
        max_delay=0.0,
        mean_delay=0.0,
        violations=0,
        sessions=(),
    )


class PacketStreamEngine:
    """Serving adapter: a :class:`~repro.packet.engine.PacketEngine`
    behind the :class:`~repro.online.service.OnlineService` engine
    surface.

    The adapter starts *unconfigured* — the session weight vector
    arrives on the wire as the trace header, so ``process`` builds the
    inner engine on the first ``packet-trace-header`` event.  ``rate``
    may be fixed at construction (``repro serve --rate``), declared by
    the header, or both (cross-checked).
    """

    def __init__(self, rate: float | None = None) -> None:
        if rate is not None:
            check_positive("rate", rate)
        self._rate = None if rate is None else float(rate)
        self._engine: PacketEngine | None = None
        self._header: PacketTraceHeader | None = None
        self._sink: RecordSink | None = None
        self._events = 0

    # ------------------------------------------------------------------
    @property
    def configured(self) -> bool:
        """Whether the trace header has arrived."""
        return self._engine is not None

    @property
    def packet_engine(self) -> PacketEngine | None:
        """The inner engine (``None`` until configured)."""
        return self._engine

    @property
    def rate(self) -> float | None:
        """The transmission rate (``None`` until known)."""
        return self._rate

    @property
    def events_processed(self) -> int:
        """Events applied so far (header + packets)."""
        return self._events

    @property
    def clock(self) -> float:
        """Stream time: the latest packet arrival."""
        return 0.0 if self._engine is None else self._engine.last_arrival

    @property
    def num_active(self) -> int:
        """Packets in the system (admitted, not yet emitted)."""
        return 0 if self._engine is None else self._engine.in_flight

    def unfinished_work(self) -> float:
        """Total size queued for transmission."""
        return 0.0 if self._engine is None else self._engine.queued_size

    # ------------------------------------------------------------------
    def bind_sink(self, sink: RecordSink) -> None:
        """Attach the sink receiving ``packet-served`` records.

        The owning service calls this once at construction (and again
        after recovery) so served-packet records share the service's
        output stream.
        """
        self._sink = sink
        if self._engine is not None:
            self._engine._sink = sink

    def _configure(self, header: PacketTraceHeader) -> dict[str, Any]:
        if self._engine is not None:
            raise ValidationError(
                "duplicate packet-trace-header: the stream is already "
                f"configured with {len(self._header.phis)} sessions"
            )
        rate = self._rate
        if header.rate is not None:
            if rate is not None and not math.isclose(
                rate, header.rate, rel_tol=0.0, abs_tol=0.0
            ):
                raise ValidationError(
                    f"trace header declares rate {header.rate:g} but "
                    f"the server was opened with rate {rate:g}"
                )
            rate = header.rate
        if rate is None:
            raise ValidationError(
                "no transmission rate: pass --rate or declare one in "
                "the packet-trace header"
            )
        self._rate = rate
        self._header = header
        self._engine = PacketEngine(
            rate, header.phis, sink=self._sink
        )
        return {
            "kind": "packet-configured",
            "num_sessions": header.num_sessions,
            "rate": rate,
            "phis": list(header.phis),
        }

    def process(self, event: Any) -> dict[str, Any]:
        """Apply one parsed event; returns the per-line ack record."""
        if isinstance(event, PacketTraceHeader):
            record = self._configure(event)
        elif isinstance(event, Packet):
            if self._engine is None:
                raise ValidationError(
                    "packet before packet-trace-header: the stream "
                    "must open with a header declaring the weights"
                )
            v_start, v_finish = self._engine.push(
                event.session, event.size, event.arrival_time
            )
            record = {
                "kind": "packet-accepted",
                "session": event.session,
                "size": event.size,
                "time": event.arrival_time,
                "virtual_start": v_start,
                "virtual_finish": v_finish,
                "in_flight": self._engine.in_flight,
            }
        else:
            raise ValidationError(
                f"packet serving cannot apply event {event!r}"
            )
        self._events += 1
        return record

    # ------------------------------------------------------------------
    def drain(self, max_slots: int = 0) -> tuple[int, bool]:
        """Seal the stream; the packet drain always completes.

        Transmits the whole backlog, drains the virtual clock (every
        in-flight packet resolves and is emitted), and writes the
        ``gap-report`` record to the bound sink.  ``max_slots`` is the
        slotted engine's knob and is ignored — the packet drain is
        O(backlog), not open-ended.
        """
        if self._engine is not None:
            already = self._engine.finished
            self._engine.finish()
            if not already and self._sink is not None:
                self._sink.emit(self._engine.gap_report().to_record())
        return 0, True

    def result(self, drained: bool = True) -> PacketSimResult:
        """The run's :class:`~repro.packet.results.PacketSimResult`."""
        if self._engine is None:
            rate = self._rate if self._rate is not None else 0.0
            return PacketSimResult(
                rate=rate,
                phis=(),
                num_packets=0,
                gap_report=_empty_report(rate),
                drained=bool(drained),
            )
        return self._engine.result().with_drained(drained)

    # ------------------------------------------------------------------
    # snapshot surface (what the durable snapshot store serializes)
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable adapter state (inner engine included)."""
        return {
            "kind": "packet-stream-engine",
            "version": STATE_FORMAT_VERSION,
            "rate": self._rate,
            "events": self._events,
            "header": (
                None if self._header is None else self._header.to_record()
            ),
            "engine": (
                None if self._engine is None else self._engine.export_state()
            ),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "PacketStreamEngine":
        """Rebuild an adapter from :meth:`export_state` output."""
        if state.get("kind") != "packet-stream-engine":
            raise ValidationError(
                "snapshot does not hold a packet-stream engine "
                f"(kind={state.get('kind')!r}); was this WAL created "
                "without --packet?"
            )
        if state.get("version") != STATE_FORMAT_VERSION:
            raise ValidationError(
                f"unsupported packet-stream-engine state version "
                f"{state.get('version')!r}"
            )
        rate = state["rate"]
        adapter = cls(rate=None if rate is None else float(rate))
        adapter._events = int(state["events"])
        if state["header"] is not None:
            adapter._header = PacketTraceHeader.from_record(
                state["header"]
            )
        if state["engine"] is not None:
            adapter._engine = PacketEngine.from_state(state["engine"])
        return adapter


class PacketServiceMixin:
    """Swap the serving loop's vocabulary to packet-trace records.

    Mixed in *before* the service base class: overrides
    ``_parse_event`` to decode ``packet`` / ``packet-trace-header``
    lines and binds the service sink into the engine so
    ``packet-served`` records interleave with the per-line acks.  All
    resilience, durability and replay logic is inherited untouched —
    including :meth:`DurableOnlineService.replay`, which re-dispatches
    through this parser.
    """

    def __init__(
        self, engine: PacketStreamEngine, **kwargs: Any
    ) -> None:
        if kwargs.get("shed_backlog") is not None:
            raise ValidationError(
                "packet serving has no slot backlog to shed; "
                "shed_backlog does not apply to --packet"
            )
        super().__init__(engine, **kwargs)
        engine.bind_sink(self._sink)

    def _parse_event(self, payload: dict[str, Any]) -> Any:
        kind = payload.get("kind")
        if kind == "packet":
            return packet_from_record(payload)
        if kind == "packet-trace-header":
            return PacketTraceHeader.from_record(payload)
        raise ValidationError(
            f"unsupported event kind {kind!r} for packet serving "
            "(expected 'packet' or 'packet-trace-header')"
        )


class PacketOnlineService(PacketServiceMixin, OnlineService):
    """The in-memory packet serving loop (``repro serve --packet``)."""


class DurablePacketService(PacketServiceMixin, DurableOnlineService):
    """Crash-safe packet serving (``repro serve --packet --wal``).

    Construct via ``DurableOnlineService.open(dir, packet=True, ...)``
    (or let ``repro serve --packet --wal DIR`` do it): the ``packet``
    configuration key is persisted in the directory's metadata, so
    ``repro recover`` rebuilds the right service class unprompted.
    """
