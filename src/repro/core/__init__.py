"""Core analytical machinery: E.B.B. processes, the GPS decomposition,
feasible orderings/partitions and the single-node bound theorems."""

from repro.core.admission import (
    QoSTarget,
    admissible,
    max_admissible_copies,
    meets_target,
    required_rate_for_delay,
)
from repro.core.bounds import (
    ExponentialTailBound,
    MinTailBound,
    best_bound,
    sum_of_tail_bounds,
)
from repro.core.pgps import (
    PacketizationPenalty,
    pgps_backlog_bound,
    pgps_delay_bound,
    pgps_session_bounds,
    shift_bound,
)
from repro.core.decomposition import (
    Decomposition,
    decompose,
    phi_proportional_epsilons,
    rho_proportional_epsilons,
    uniform_epsilons,
)
from repro.core.ebb import EB, EBB, aggregate_independent, aggregate_union
from repro.core.feasible import (
    FeasibleOrderingError,
    FeasiblePartition,
    all_feasible_orderings,
    feasible_partition,
    find_feasible_ordering,
    is_feasible_ordering,
)
from repro.core.gps import GPSConfig, Session, rpps_config
from repro.core.holder import HolderSplit, HolderTerm, optimal_holder_split
from repro.core.mgf import (
    VirtualQueue,
    bucket_delta_tail_bound,
    discrete_delta_tail_bound,
    lemma5_tail_bound,
    lemma6_log_mgf_bound,
    lemma6_optimal_xi,
)
from repro.core.rpps import (
    guaranteed_rate_bounds,
    rpps_all_bounds,
    rpps_session_bounds,
)
from repro.core.single_node import (
    SessionBoundFamily,
    SessionBounds,
    best_partition_family,
    theorem7_family,
    theorem8_family,
    theorem10_bounds,
    theorem11_family,
    theorem12_family,
)

__all__ = [
    "QoSTarget",
    "admissible",
    "max_admissible_copies",
    "meets_target",
    "required_rate_for_delay",
    "PacketizationPenalty",
    "pgps_backlog_bound",
    "pgps_delay_bound",
    "pgps_session_bounds",
    "shift_bound",
    "EB",
    "EBB",
    "aggregate_independent",
    "aggregate_union",
    "ExponentialTailBound",
    "MinTailBound",
    "best_bound",
    "sum_of_tail_bounds",
    "Decomposition",
    "decompose",
    "uniform_epsilons",
    "rho_proportional_epsilons",
    "phi_proportional_epsilons",
    "FeasibleOrderingError",
    "FeasiblePartition",
    "all_feasible_orderings",
    "feasible_partition",
    "find_feasible_ordering",
    "is_feasible_ordering",
    "GPSConfig",
    "Session",
    "rpps_config",
    "HolderSplit",
    "HolderTerm",
    "optimal_holder_split",
    "VirtualQueue",
    "bucket_delta_tail_bound",
    "discrete_delta_tail_bound",
    "lemma5_tail_bound",
    "lemma6_log_mgf_bound",
    "lemma6_optimal_xi",
    "guaranteed_rate_bounds",
    "rpps_all_bounds",
    "rpps_session_bounds",
    "SessionBoundFamily",
    "SessionBounds",
    "best_partition_family",
    "theorem7_family",
    "theorem8_family",
    "theorem10_bounds",
    "theorem11_family",
    "theorem12_family",
]
