"""Core analytical machinery: E.B.B. processes, the GPS decomposition,
and the simulation-facing configuration objects.

The paper-theorem computations themselves (feasible orderings and
partitions, the Lemma 5/6 MGF machinery, the Theorem 7/8/10/11/12
bound families and the admission procedures) moved to
:mod:`repro.analysis`; accessing those names through ``repro.core``
still works but emits a :class:`DeprecationWarning`.  The
``repro.core.{feasible,mgf,single_node,admission}`` submodules remain
as silent re-export shims.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.core.bounds import (
    ExponentialTailBound,
    MinTailBound,
    best_bound,
    sum_of_tail_bounds,
)
from repro.core.decomposition import (
    Decomposition,
    decompose,
    phi_proportional_epsilons,
    rho_proportional_epsilons,
    uniform_epsilons,
)
from repro.core.ebb import EB, EBB, aggregate_independent, aggregate_union
from repro.core.gps import GPSConfig, Session, rpps_config
from repro.core.holder import HolderSplit, HolderTerm, optimal_holder_split
from repro.core.pgps import (
    PacketizationPenalty,
    pgps_backlog_bound,
    pgps_delay_bound,
    pgps_session_bounds,
    shift_bound,
)
from repro.core.rpps import (
    guaranteed_rate_bounds,
    rpps_all_bounds,
    rpps_session_bounds,
)

__all__ = [
    "QoSTarget",
    "admissible",
    "max_admissible_copies",
    "meets_target",
    "required_rate_for_delay",
    "PacketizationPenalty",
    "pgps_backlog_bound",
    "pgps_delay_bound",
    "pgps_session_bounds",
    "shift_bound",
    "EB",
    "EBB",
    "aggregate_independent",
    "aggregate_union",
    "ExponentialTailBound",
    "MinTailBound",
    "best_bound",
    "sum_of_tail_bounds",
    "Decomposition",
    "decompose",
    "uniform_epsilons",
    "rho_proportional_epsilons",
    "phi_proportional_epsilons",
    "FeasibleOrderingError",
    "FeasiblePartition",
    "all_feasible_orderings",
    "feasible_partition",
    "find_feasible_ordering",
    "is_feasible_ordering",
    "GPSConfig",
    "Session",
    "rpps_config",
    "HolderSplit",
    "HolderTerm",
    "optimal_holder_split",
    "VirtualQueue",
    "bucket_delta_tail_bound",
    "discrete_delta_tail_bound",
    "lemma5_tail_bound",
    "lemma6_log_mgf_bound",
    "lemma6_optimal_xi",
    "guaranteed_rate_bounds",
    "rpps_all_bounds",
    "rpps_session_bounds",
    "SessionBoundFamily",
    "SessionBounds",
    "best_partition_family",
    "theorem7_family",
    "theorem8_family",
    "theorem10_bounds",
    "theorem11_family",
    "theorem12_family",
]

#: Names that moved to ``repro.analysis``: accessing them through
#: ``repro.core`` is deprecated (module path of the single owner).
_MOVED_TO_ANALYSIS = {
    # admission
    "QoSTarget": "repro.analysis.admission",
    "meets_target": "repro.analysis.admission",
    "required_rate_for_delay": "repro.analysis.admission",
    "admissible": "repro.analysis.admission",
    "max_admissible_copies": "repro.analysis.admission",
    # feasible orderings / partition
    "FeasibleOrderingError": "repro.analysis.feasible",
    "is_feasible_ordering": "repro.analysis.feasible",
    "find_feasible_ordering": "repro.analysis.feasible",
    "all_feasible_orderings": "repro.analysis.feasible",
    "FeasiblePartition": "repro.analysis.feasible",
    "feasible_partition": "repro.analysis.feasible",
    # MGF machinery
    "VirtualQueue": "repro.analysis.mgf",
    "bucket_delta_tail_bound": "repro.analysis.mgf",
    "discrete_delta_tail_bound": "repro.analysis.mgf",
    "lemma5_tail_bound": "repro.analysis.mgf",
    "lemma6_log_mgf_bound": "repro.analysis.mgf",
    "lemma6_optimal_xi": "repro.analysis.mgf",
    # single-node bound families
    "SessionBoundFamily": "repro.analysis.single_node",
    "SessionBounds": "repro.analysis.single_node",
    "best_partition_family": "repro.analysis.single_node",
    "theorem7_family": "repro.analysis.single_node",
    "theorem8_family": "repro.analysis.single_node",
    "theorem10_bounds": "repro.analysis.single_node",
    "theorem11_family": "repro.analysis.single_node",
    "theorem12_family": "repro.analysis.single_node",
}


def __getattr__(name: str) -> Any:
    home = _MOVED_TO_ANALYSIS.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro.core' is deprecated; it moved "
        f"to {home!r} (also exported from 'repro.analysis')",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_MOVED_TO_ANALYSIS))
