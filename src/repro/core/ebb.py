"""Exponentially Bounded Burstiness (E.B.B.) and E.B. process models.

The paper characterizes each session's source traffic as an E.B.B.
process (Yaron & Sidi [YaSi93]): an arrival process ``A`` is
``(rho, Lambda, alpha)``-E.B.B. if for all ``tau <= t`` and ``x >= 0``

    Pr{A(tau, t) >= rho * (t - tau) + x} <= Lambda * exp(-alpha * x).

``rho`` is the long-term *upper rate*, ``Lambda`` the prefactor and
``alpha`` the decay rate.  The companion notion of an *exponentially
bounded* (E.B.) process bounds a time-indexed quantity directly:
``Pr{X(t) >= x} <= Lambda * exp(-alpha * x)``.

This module provides both characterizations, the moment-generating-
function envelope of eq. (19) (the ``sigma_hat`` burstiness constant),
and aggregation of several E.B.B. sessions into one (used for the
aggregate sessions of the feasible partition, Section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.bounds import ExponentialTailBound
from repro.utils.validation import (
    check_in_open_interval,
    check_nonnegative,
    check_positive,
)

from repro.errors import ValidationError

__all__ = [
    "EBB",
    "EB",
    "aggregate_independent",
    "aggregate_union",
]


@dataclass(frozen=True)
class EBB:
    """A ``(rho, Lambda, alpha)``-E.B.B. arrival-process characterization.

    Attributes
    ----------
    rho:
        Long-term upper rate of the arrival process (traffic units per
        unit time).  Must be positive.
    prefactor:
        The multiplicative constant ``Lambda >= 0``.
    decay_rate:
        The exponential decay rate ``alpha > 0`` of the burstiness tail.
    """

    rho: float
    prefactor: float
    decay_rate: float

    def __post_init__(self) -> None:
        check_positive("rho", self.rho)
        check_nonnegative("prefactor", self.prefactor)
        check_positive("decay_rate", self.decay_rate)

    # ------------------------------------------------------------------
    # direct evaluation
    # ------------------------------------------------------------------
    def burstiness_tail(self) -> ExponentialTailBound:
        """The tail bound on ``A(tau, t) - rho (t - tau)``, any interval."""
        return ExponentialTailBound(self.prefactor, self.decay_rate)

    def interval_tail(self, duration: float) -> ExponentialTailBound:
        """Tail bound on the *total* arrivals ``A(t, t + duration)``.

        ``Pr{A >= a}`` is bounded by evaluating the burstiness tail at
        ``a - rho * duration``; expressed as an exponential bound in the
        total amount ``a`` it has prefactor ``Lambda * exp(alpha * rho *
        duration)``.
        """
        check_nonnegative("duration", duration)
        return ExponentialTailBound(
            self.prefactor * math.exp(self.decay_rate * self.rho * duration),
            self.decay_rate,
        )

    # ------------------------------------------------------------------
    # MGF envelope (eq. 19)
    # ------------------------------------------------------------------
    def sigma_hat(self, theta: float) -> float:
        """The burstiness constant ``sigma_hat(theta)`` of eq. (19).

        For ``0 < theta < alpha``,

            E[exp(theta A(tau, t))]
                <= exp(theta * (rho (t - tau) + sigma_hat(theta)))

        with ``sigma_hat(theta) = (1/theta) ln(1 + theta Lambda /
        (alpha - theta))``.
        """
        check_in_open_interval("theta", theta, 0.0, self.decay_rate)
        return (
            math.log1p(theta * self.prefactor / (self.decay_rate - theta))
            / theta
        )

    def log_mgf_envelope(self, theta: float, duration: float) -> float:
        """Upper bound on ``ln E[exp(theta A(t, t + duration))]``."""
        check_nonnegative("duration", duration)
        return theta * (self.rho * duration + self.sigma_hat(theta))

    # ------------------------------------------------------------------
    # sample-path verification
    # ------------------------------------------------------------------
    def empirical_violation_rate(
        self,
        increments: Sequence[float],
        *,
        window: int,
        excess: float,
    ) -> float:
        """Fraction of length-``window`` intervals violating the bound.

        Given a discrete-time sample path of per-slot arrival
        ``increments``, returns the empirical probability that
        ``A(t, t + window) >= rho * window + excess``; the E.B.B.
        property promises this is at most
        ``Lambda * exp(-alpha * excess)`` in expectation over sample
        paths.  Used by tests and by the estimation module.
        """
        arr = np.asarray(increments, dtype=float)
        if window <= 0 or window > arr.size:
            raise ValidationError(
                f"window must be in [1, {arr.size}], got {window}"
            )
        cumulative = np.concatenate(([0.0], np.cumsum(arr)))
        window_sums = cumulative[window:] - cumulative[:-window]
        threshold = self.rho * window + excess
        return float(np.mean(window_sums >= threshold))

    def as_eb(self) -> "EB":
        """View the burstiness tail as an E.B. characterization."""
        return EB(self.prefactor, self.decay_rate)


@dataclass(frozen=True)
class EB:
    """An ``(alpha, Lambda)``-exponentially-bounded (E.B.) process.

    ``Pr{X(t) >= x} <= Lambda * exp(-alpha * x)`` for every ``t``.
    Backlog and delay processes produced by the theorems are E.B.
    """

    prefactor: float
    decay_rate: float

    def __post_init__(self) -> None:
        check_nonnegative("prefactor", self.prefactor)
        check_positive("decay_rate", self.decay_rate)

    def tail(self) -> ExponentialTailBound:
        """The tail bound ``Pr{X(t) >= x} <= Lambda e^{-alpha x}``."""
        return ExponentialTailBound(self.prefactor, self.decay_rate)

    def evaluate(self, x: float) -> float:
        """Evaluate the tail bound at ``x``."""
        return self.tail().evaluate(x)


def aggregate_independent(
    sessions: Iterable[EBB], theta: float
) -> EBB:
    """Aggregate independent E.B.B. sessions into one E.B.B. session.

    Following Section 5: for ``0 < theta < min_i alpha_i`` the sum of the
    arrival processes is a ``(sum_i rho_i, exp(theta * sum_i
    sigma_hat_i(theta)), theta)``-E.B.B. process.  This is how a feasible
    partition class becomes a single *aggregate session*.
    """
    session_list = list(sessions)
    if not session_list:
        raise ValidationError("need at least one session to aggregate")
    alpha_min = min(s.decay_rate for s in session_list)
    check_in_open_interval("theta", theta, 0.0, alpha_min)
    total_rho = sum(s.rho for s in session_list)
    total_sigma = sum(s.sigma_hat(theta) for s in session_list)
    return EBB(total_rho, math.exp(theta * total_sigma), theta)


def aggregate_union(sessions: Iterable[EBB]) -> EBB:
    """Aggregate E.B.B. sessions without any independence assumption.

    Uses the union bound with the burst split ``x_i = (alpha / alpha_i)
    x`` where ``alpha = (sum_i 1/alpha_i)^{-1}``: the aggregate is a
    ``(sum_i rho_i, sum_i Lambda_i, alpha)``-E.B.B. process.  Weaker
    than :func:`aggregate_independent` (smaller decay rate) but valid
    for arbitrarily correlated sessions.
    """
    session_list = list(sessions)
    if not session_list:
        raise ValidationError("need at least one session to aggregate")
    if len(session_list) == 1:
        return session_list[0]
    total_rho = sum(s.rho for s in session_list)
    total_prefactor = sum(s.prefactor for s in session_list)
    decay = 1.0 / sum(1.0 / s.decay_rate for s in session_list)
    return EBB(total_rho, total_prefactor, decay)
