"""Hölder-exponent selection for the dependent-input theorems (8 and 12).

When the arrival processes are *not* independent, the Chernoff argument
splits ``E[exp(theta sum_k c_k delta_k)]`` with Hölder's inequality:

    E[exp(theta sum_k c_k delta_k)]
        <= prod_k E[exp(p_k c_k theta delta_k)]^{1/p_k},

for any conjugate exponents ``p_k > 1`` with ``sum_k 1/p_k = 1``.  Each
factor needs its MGF argument below that term's decay-rate ceiling
``a_k`` (the relevant ``alpha``), so the usable range of ``theta`` is
``theta < min_k a_k / (c_k p_k)``.

The range is maximized by equalizing the constraints, giving

    theta_max = 1 / sum_k (c_k / a_k),
    p_k = a_k / (c_k theta_max),

which reproduces the paper's observation that the best achievable decay
rate in Theorem 8 is the harmonic-style sum ``(sum_j 1/alpha_j)^{-1}``
(there all ``c_k`` relevant to the constraint are absorbed into the
alphas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = ["HolderTerm", "HolderSplit", "optimal_holder_split"]


@dataclass(frozen=True)
class HolderTerm:
    """One term ``c_k * delta_k`` in the Hölder split.

    Attributes
    ----------
    coefficient:
        The multiplier ``c_k`` of this term inside the exponent (1 for
        the session's own backlog, ``psi_i`` for the earlier sessions).
    ceiling:
        The decay-rate ceiling ``a_k``: the MGF argument
        ``p_k c_k theta`` must stay strictly below it.
    """

    coefficient: float
    ceiling: float

    def __post_init__(self) -> None:
        check_positive("coefficient", self.coefficient)
        check_positive("ceiling", self.ceiling)


@dataclass(frozen=True)
class HolderSplit:
    """A concrete choice of conjugate exponents for a set of terms."""

    exponents: tuple[float, ...]
    theta_max: float

    def __post_init__(self) -> None:
        if any(p <= 1.0 for p in self.exponents):
            raise ValidationError(
                f"all Hölder exponents must exceed 1, got {self.exponents}"
            )
        total = sum(1.0 / p for p in self.exponents)
        if abs(total - 1.0) > 1e-9:
            raise ValidationError(
                f"Hölder exponents must satisfy sum 1/p_k = 1, got {total}"
            )


def optimal_holder_split(terms: Sequence[HolderTerm]) -> HolderSplit:
    """Exponents maximizing the usable ``theta`` range.

    Returns the split with ``p_k = a_k / (c_k * theta_max)`` where
    ``theta_max = 1 / sum_k (c_k / a_k)``.  For any ``theta <
    theta_max`` these fixed exponents keep every MGF argument strictly
    inside its ceiling.  Requires at least two terms (with one term
    Hölder is unnecessary — use the independent-input theorem).
    """
    if len(terms) < 2:
        raise ValidationError(
            "Hölder split needs at least two terms; with one term no "
            "split is required"
        )
    theta_max = 1.0 / sum(t.coefficient / t.ceiling for t in terms)
    exponents = tuple(
        t.ceiling / (t.coefficient * theta_max) for t in terms
    )
    return HolderSplit(exponents=exponents, theta_max=theta_max)
