"""Exponential tail bounds and their algebra.

Every statistical result in the paper has the shape

    Pr{X >= x} <= Lambda * exp(-theta * x)

for a *prefactor* ``Lambda`` and a *decay rate* ``theta``.  This module
provides a small algebra over such bounds:

* :class:`ExponentialTailBound` — an immutable ``(Lambda, theta)`` pair
  with evaluation, quantiles and rescaling;
* :func:`sum_of_tail_bounds` — a tail bound on a sum ``X_1 + ... + X_n``
  of individually bounded quantities (no independence needed), used to
  convolve per-node delay bounds into end-to-end bounds in CRST
  networks (Section 6.1);
* :class:`MinTailBound` — the pointwise minimum of several bounds, used
  when more than one theorem applies to the same session.

Bounds are *probability* bounds, so evaluation clamps at 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

from repro.errors import ValidationError

__all__ = [
    "TailBound",
    "ExponentialTailBound",
    "MinTailBound",
    "sum_of_tail_bounds",
    "best_bound",
]


@runtime_checkable
class TailBound(Protocol):
    """Protocol for anything that bounds ``Pr{X >= x}`` from above."""

    def evaluate(self, x: float) -> float:
        """Return an upper bound on ``Pr{X >= x}``."""
        ...

    def evaluate_array(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`evaluate`."""
        ...


@dataclass(frozen=True)
class ExponentialTailBound:
    """The bound ``Pr{X >= x} <= min(1, prefactor * exp(-decay_rate * x))``.

    Attributes
    ----------
    prefactor:
        The constant ``Lambda`` in front of the exponential.  May exceed 1
        (the bound is then vacuous for small ``x``).
    decay_rate:
        The exponential decay rate ``theta > 0``.
    """

    prefactor: float
    decay_rate: float

    def __post_init__(self) -> None:
        check_nonnegative("prefactor", self.prefactor)
        check_positive("decay_rate", self.decay_rate)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def log_evaluate(self, x: float) -> float:
        """Return ``log`` of the (unclamped) bound at ``x``."""
        if self.prefactor == 0.0:
            return -math.inf
        return math.log(self.prefactor) - self.decay_rate * x

    def evaluate(self, x: float) -> float:
        """Return ``min(1, Lambda * exp(-theta * x))``."""
        return _exp_clamped(self.log_evaluate(x))

    def evaluate_array(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``xs``."""
        xs_arr = np.asarray(xs, dtype=float)
        if self.prefactor == 0.0:
            return np.zeros_like(xs_arr)
        log_vals = math.log(self.prefactor) - self.decay_rate * xs_arr
        return np.minimum(1.0, np.exp(np.minimum(log_vals, 0.0)))

    def quantile(self, epsilon: float) -> float:
        """Smallest ``x`` at which the bound drops to ``epsilon``.

        This is the admission-control view of the bound: the backlog (or
        delay) that is exceeded with probability at most ``epsilon``.
        """
        check_positive("epsilon", epsilon)
        if epsilon >= 1.0:
            return 0.0
        if self.prefactor == 0.0:
            return 0.0
        x = (math.log(self.prefactor) - math.log(epsilon)) / self.decay_rate
        return max(0.0, x)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def scaled_argument(self, rate: float) -> "ExponentialTailBound":
        """Bound on ``X / rate`` given this bound on ``X``.

        If ``Pr{Q >= q} <= L e^{-theta q}`` and a session is guaranteed a
        backlog-clearing rate ``g``, then its delay ``D = Q / g`` obeys
        ``Pr{D >= d} <= L e^{-theta g d}``; that conversion is
        ``bound.scaled_argument(g)``.
        """
        check_positive("rate", rate)
        return ExponentialTailBound(self.prefactor, self.decay_rate * rate)

    def weakened(self, factor: float) -> "ExponentialTailBound":
        """Return the same bound with the prefactor inflated by ``factor``."""
        check_positive("factor", factor)
        return ExponentialTailBound(self.prefactor * factor, self.decay_rate)

    def dominates(self, other: "ExponentialTailBound") -> bool:
        """True if this bound is at least as tight as ``other`` for all x >= 0.

        That requires a decay rate at least as large *and* a prefactor no
        larger.  (Bounds that cross are incomparable.)
        """
        return (
            self.decay_rate >= other.decay_rate
            and self.prefactor <= other.prefactor
        )


def _exp_clamped(log_value: float) -> float:
    """``exp`` that returns 1.0 for any ``log_value >= 0``."""
    if log_value >= 0.0:
        return 1.0
    return math.exp(log_value)


@dataclass(frozen=True)
class MinTailBound:
    """Pointwise minimum of several tail bounds on the same quantity.

    When several theorems each yield a valid bound (e.g. Theorem 7 with
    different feasible orderings, or Theorem 7 vs Theorem 11), the
    pointwise minimum is also a valid bound.
    """

    components: tuple[ExponentialTailBound, ...]

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise ValidationError("MinTailBound requires at least one component")

    def evaluate(self, x: float) -> float:
        return min(component.evaluate(x) for component in self.components)

    def evaluate_array(self, xs: Sequence[float]) -> np.ndarray:
        stacked = np.vstack(
            [component.evaluate_array(xs) for component in self.components]
        )
        return stacked.min(axis=0)

    def quantile(self, epsilon: float) -> float:
        return min(component.quantile(epsilon) for component in self.components)


def sum_of_tail_bounds(
    bounds: Iterable[ExponentialTailBound],
) -> ExponentialTailBound:
    """Tail bound on ``X_1 + ... + X_n`` from bounds on each ``X_k``.

    No independence is assumed: we use the union bound over the split
    ``x = sum_k (theta / theta_k) x`` with ``theta`` the harmonic sum
    ``(sum_k 1/theta_k)^{-1}``, which gives

        Pr{sum X_k >= x} <= (sum_k Lambda_k) * exp(-theta x).

    This is how per-node delay bounds are convolved into an end-to-end
    delay bound along a route in a CRST network.
    """
    bound_list = list(bounds)
    if not bound_list:
        raise ValidationError("need at least one bound to sum")
    if len(bound_list) == 1:
        return bound_list[0]
    inverse_decay = sum(1.0 / b.decay_rate for b in bound_list)
    prefactor = sum(b.prefactor for b in bound_list)
    return ExponentialTailBound(prefactor, 1.0 / inverse_decay)


def best_bound(
    bounds: Iterable[ExponentialTailBound], at: float
) -> ExponentialTailBound:
    """Return the component bound that is tightest at the point ``at``.

    Useful to pick a single ``(Lambda, theta)`` representative when a
    downstream computation (e.g. an output E.B.B. characterization)
    needs one exponential rather than a pointwise minimum.
    """
    bound_list = list(bounds)
    if not bound_list:
        raise ValidationError("need at least one bound")
    return min(bound_list, key=lambda b: b.log_evaluate(at))
