"""Backward-compatible re-exports of :mod:`repro.analysis.admission`.

The statistical call-admission procedures (QoS targets, the
Theorem 10/15 admission predicate and the RPPS accept/reject
decisions) moved to :mod:`repro.analysis.admission`, the single owner
of the paper's theorem computations.  This module re-exports the
historical names so existing ``repro.core.admission`` imports keep
working; new code should import from :mod:`repro.analysis` (or use the
stateful :class:`repro.analysis.context.AnalysisContext`).
"""

from __future__ import annotations

from repro.analysis.admission import (
    QoSTarget,
    admissible,
    max_admissible_copies,
    meets_target,
    required_rate_for_delay,
)

__all__ = [
    "QoSTarget",
    "meets_target",
    "required_rate_for_delay",
    "admissible",
    "max_admissible_copies",
]
