"""Backward-compatible re-exports of :mod:`repro.analysis.feasible`.

The feasible-ordering (eqs. 4-5) and feasible-partition (eqs. 37-39)
constructions moved to :mod:`repro.analysis.feasible`, the single
owner of the paper's theorem computations.  This module re-exports the
historical names so existing ``repro.core.feasible`` imports keep
working; new code should import from :mod:`repro.analysis`.
"""

from __future__ import annotations

from repro.analysis.feasible import (
    FeasibleOrderingError,
    FeasiblePartition,
    all_feasible_orderings,
    feasible_partition,
    find_feasible_ordering,
    is_feasible_ordering,
)

__all__ = [
    "FeasibleOrderingError",
    "is_feasible_ordering",
    "find_feasible_ordering",
    "all_feasible_orderings",
    "FeasiblePartition",
    "feasible_partition",
]
