"""Backward-compatible re-exports of :mod:`repro.analysis.mgf`.

The Lemma 5/6 virtual-queue tail and log-MGF machinery (including the
discrete-time eq. 66-67 variants) moved to :mod:`repro.analysis.mgf`,
the single owner of the paper's theorem computations.  This module
re-exports the historical names so existing ``repro.core.mgf`` imports
keep working; new code should import from :mod:`repro.analysis`.
"""

from __future__ import annotations

from repro.analysis.mgf import (
    VirtualQueue,
    bucket_delta_tail_bound,
    discrete_delta_tail_bound,
    discrete_log_mgf_bound,
    lemma5_max_xi,
    lemma5_tail_bound,
    lemma6_log_mgf_bound,
    lemma6_optimal_xi,
    paper_remark_mgf_minimum,
)

__all__ = [
    "VirtualQueue",
    "lemma5_tail_bound",
    "lemma6_log_mgf_bound",
    "lemma6_optimal_xi",
    "lemma5_max_xi",
    "bucket_delta_tail_bound",
    "discrete_delta_tail_bound",
    "discrete_log_mgf_bound",
    "paper_remark_mgf_minimum",
]
