"""Rate Proportional Processor Sharing (RPPS) at a single node.

Under the RPPS assignment ``phi_i = rho_i`` (or any assignment
proportional to the upper rates) the feasible partition collapses to a
single class ``H_1 = {1, ..., N}``, so Theorem 10 applies to *every*
session: each session's backlog and delay bounds involve only its own
E.B.B. characterization and its guaranteed rate ``g_i`` — from a
bounding standpoint sessions behave independently even when their
traffic is correlated.

The network version (Theorem 15) lives in
:mod:`repro.network.rpps_network`; this module covers the single node
and the generic "guaranteed-rate" specialization noted after
Theorem 15: the same bound holds for *any* session guaranteed a
clearing rate ``g > rho`` regardless of the GPS assignment.
"""

from __future__ import annotations

from repro.core.bounds import ExponentialTailBound
from repro.core.ebb import EBB
from repro.core.gps import GPSConfig
from repro.analysis.mgf import discrete_delta_tail_bound, lemma5_tail_bound
from repro.analysis.single_node import SessionBounds, theorem10_bounds
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = [
    "guaranteed_rate_bounds",
    "rpps_session_bounds",
    "rpps_all_bounds",
]


def guaranteed_rate_bounds(
    name: str,
    arrival: EBB,
    guaranteed_rate: float,
    *,
    xi: float | None = None,
    discrete: bool = False,
) -> SessionBounds:
    """Bounds for any session with a guaranteed clearing rate ``g > rho``.

    This is the remark after Theorem 15: whenever a session is
    guaranteed a backlog-clearing rate ``g`` exceeding its upper rate,
    ``Q(t) <= delta(t)`` for the virtual queue at rate ``g`` and Lemma 5
    (or its discrete-time form, eq. 66) bounds the tail directly.
    """
    check_positive("guaranteed_rate", guaranteed_rate)
    if guaranteed_rate <= arrival.rho:
        raise ValidationError(
            f"guaranteed rate {guaranteed_rate} must exceed the session "
            f"upper rate {arrival.rho}"
        )
    if discrete:
        backlog: ExponentialTailBound = discrete_delta_tail_bound(
            arrival, guaranteed_rate
        )
    else:
        backlog = lemma5_tail_bound(arrival, guaranteed_rate, xi=xi)
    return SessionBounds(
        session_name=name,
        backlog=backlog,
        delay=backlog.scaled_argument(guaranteed_rate),
        output=EBB(arrival.rho, backlog.prefactor, backlog.decay_rate),
    )


def rpps_session_bounds(
    config: GPSConfig,
    session_index: int,
    *,
    xi: float | None = None,
    discrete: bool = False,
) -> SessionBounds:
    """Theorem 10 bounds for one session of an RPPS server.

    Raises ``ValueError`` if the assignment is not RPPS (use
    :func:`repro.core.single_node.theorem10_bounds` directly for a
    non-RPPS session that happens to sit in ``H_1``).
    """
    if not config.is_rpps():
        raise ValidationError(
            "configuration is not rate-proportional; phi_i must be "
            "proportional to rho_i"
        )
    return theorem10_bounds(
        config, session_index, xi=xi, discrete=discrete
    )


def rpps_all_bounds(
    config: GPSConfig,
    *,
    xi: float | None = None,
    discrete: bool = False,
) -> list[SessionBounds]:
    """Theorem 10 bounds for every session of an RPPS server."""
    return [
        rpps_session_bounds(config, i, xi=xi, discrete=discrete)
        for i in range(len(config))
    ]
