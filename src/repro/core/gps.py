"""Analytical model of a single GPS server and its sessions.

A :class:`Session` couples a named traffic source (its E.B.B.
characterization) with its GPS weight ``phi``; a :class:`GPSConfig`
collects the sessions sharing one server of rate ``r``.  These are the
*analysis-side* objects consumed by the bound theorems
(:mod:`repro.core.single_node`); the *simulation-side* counterparts live
in :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.ebb import EBB
from repro.analysis.feasible import FeasiblePartition, feasible_partition
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = ["Session", "GPSConfig", "rpps_config"]


@dataclass(frozen=True)
class Session:
    """One session at a GPS server.

    Attributes
    ----------
    name:
        Human-readable label used in reports and error messages.
    arrival:
        The ``(rho, Lambda, alpha)``-E.B.B. characterization of the
        session's source traffic.
    phi:
        The session's GPS weight ``phi_i > 0``.
    """

    name: str
    arrival: EBB
    phi: float

    def __post_init__(self) -> None:
        check_positive("phi", self.phi)
        if not self.name:
            raise ValidationError("session name must be non-empty")

    @property
    def rho(self) -> float:
        """The session's long-term upper rate."""
        return self.arrival.rho

    @property
    def alpha(self) -> float:
        """The session's E.B.B. decay rate."""
        return self.arrival.decay_rate


@dataclass(frozen=True)
class GPSConfig:
    """A GPS server of rate ``rate`` shared by ``sessions``.

    Construction validates the stochastic stability condition
    ``sum_i rho_i < rate`` required by every theorem in the paper.
    """

    rate: float
    sessions: tuple[Session, ...]

    def __init__(self, rate: float, sessions: Sequence[Session]) -> None:
        check_positive("rate", rate)
        session_tuple = tuple(sessions)
        if not session_tuple:
            raise ValidationError("a GPS server needs at least one session")
        names = [s.name for s in session_tuple]
        if len(set(names)) != len(names):
            raise ValidationError(f"session names must be unique, got {names}")
        total_rho = sum(s.rho for s in session_tuple)
        if total_rho >= rate:
            raise ValidationError(
                "unstable configuration: sum of session upper rates "
                f"{total_rho} must be strictly below the server rate {rate}"
            )
        object.__setattr__(self, "rate", float(rate))
        object.__setattr__(self, "sessions", session_tuple)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    def index_of(self, name: str) -> int:
        """Index of the session called ``name``."""
        for k, session in enumerate(self.sessions):
            if session.name == name:
                return k
        raise KeyError(f"no session named {name!r}")

    @property
    def rhos(self) -> tuple[float, ...]:
        """Upper rates of all sessions, in session order."""
        return tuple(s.rho for s in self.sessions)

    @property
    def phis(self) -> tuple[float, ...]:
        """GPS weights of all sessions, in session order."""
        return tuple(s.phi for s in self.sessions)

    @property
    def alphas(self) -> tuple[float, ...]:
        """E.B.B. decay rates of all sessions, in session order."""
        return tuple(s.alpha for s in self.sessions)

    @property
    def total_phi(self) -> float:
        """Sum of all GPS weights."""
        return sum(self.phis)

    @property
    def slack(self) -> float:
        """The stability margin ``rate - sum_i rho_i > 0``."""
        return self.rate - sum(self.rhos)

    def guaranteed_rate(self, session_index: int) -> float:
        """``g_i = phi_i / sum_j phi_j * rate`` — the minimum service
        rate session ``i`` receives whenever it is backlogged (from
        eq. 1)."""
        return self.sessions[session_index].phi / self.total_phi * self.rate

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def partition(self) -> FeasiblePartition:
        """The feasible partition induced by ``{rho_i}`` and ``{phi_i}``."""
        return feasible_partition(
            self.rhos, self.phis, server_rate=self.rate
        )

    def is_rpps(self, *, rel_tol: float = 1e-9) -> bool:
        """True if the assignment is Rate Proportional Processor Sharing
        (``phi_i`` proportional to ``rho_i``)."""
        ratios = [s.phi / s.rho for s in self.sessions]
        lo, hi = min(ratios), max(ratios)
        return hi - lo <= rel_tol * hi


def rpps_config(
    rate: float, arrivals: Sequence[tuple[str, EBB]]
) -> GPSConfig:
    """Build the RPPS assignment ``phi_i = rho_i`` for the given sources."""
    sessions = [
        Session(name=name, arrival=ebb, phi=ebb.rho)
        for name, ebb in arrivals
    ]
    return GPSConfig(rate, sessions)
