"""Backward-compatible re-exports of :mod:`repro.analysis.single_node`.

The Theorem 7/8/10/11/12 bound families moved to
:mod:`repro.analysis.single_node`, the single owner of the paper's
theorem computations.  This module re-exports the historical names so
existing ``repro.core.single_node`` imports keep working; new code
should import from :mod:`repro.analysis` (or go through the cached
:class:`repro.analysis.context.AnalysisContext`).
"""

from __future__ import annotations

from repro.analysis.single_node import (
    SessionBoundFamily,
    SessionBounds,
    best_partition_family,
    theorem7_family,
    theorem8_family,
    theorem10_bounds,
    theorem11_family,
    theorem12_family,
)

__all__ = [
    "SessionBoundFamily",
    "SessionBounds",
    "theorem7_family",
    "theorem8_family",
    "theorem10_bounds",
    "theorem11_family",
    "theorem12_family",
    "best_partition_family",
]
