"""Packetized GPS (PGPS / WFQ) corollaries of the fluid bounds.

The paper analyzes fluid GPS and notes (Sections 2 and 7) that the
extension to the packet-by-packet discipline follows Parekh &
Gallager's coupling results:

* every packet leaves the PGPS system no later than it would leave the
  fluid GPS system plus one maximum packet transmission time,
  ``L_max / r``;
* a session's PGPS backlog exceeds its GPS backlog by at most
  ``L_max``.

These translate any fluid exponential tail bound into a packetized one
by an argument shift: ``Pr{D_pgps >= d} <= Pr{D_gps >= d - L_max/r}``.
This module performs those conversions on
:class:`repro.core.bounds.ExponentialTailBound` objects and on whole
:class:`repro.core.single_node.SessionBounds` results.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.core.bounds import ExponentialTailBound
from repro.analysis.single_node import SessionBounds
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = [
    "PacketizationPenalty",
    "shift_bound",
    "pgps_delay_bound",
    "pgps_backlog_bound",
    "pgps_session_bounds",
]


@dataclass(frozen=True)
class PacketizationPenalty:
    """The PGPS-vs-GPS coupling constants for one server.

    Attributes
    ----------
    max_packet_size:
        ``L_max``: the largest packet the server may carry.
    rate:
        The server transmission rate ``r``.
    """

    max_packet_size: float
    rate: float

    def __post_init__(self) -> None:
        check_positive("max_packet_size", self.max_packet_size)
        check_positive("rate", self.rate)

    @property
    def delay_shift(self) -> float:
        """``L_max / r``: the worst-case extra departure delay."""
        return self.max_packet_size / self.rate

    @property
    def backlog_shift(self) -> float:
        """``L_max``: the worst-case extra backlog."""
        return self.max_packet_size


def shift_bound(
    bound: ExponentialTailBound, shift: float
) -> ExponentialTailBound:
    """``Pr{X' >= x} <= Pr{X >= x - shift}`` as an exponential bound.

    Shifting the argument multiplies the prefactor by
    ``exp(decay * shift)`` — the bound stays exponential with the same
    decay rate.
    """
    if shift < 0.0:
        raise ValidationError(f"shift must be >= 0, got {shift}")
    return ExponentialTailBound(
        bound.prefactor * math.exp(bound.decay_rate * shift),
        bound.decay_rate,
    )


def pgps_delay_bound(
    gps_delay: ExponentialTailBound, penalty: PacketizationPenalty
) -> ExponentialTailBound:
    """Packetized delay bound from a fluid delay bound."""
    return shift_bound(gps_delay, penalty.delay_shift)


def pgps_backlog_bound(
    gps_backlog: ExponentialTailBound, penalty: PacketizationPenalty
) -> ExponentialTailBound:
    """Packetized backlog bound from a fluid backlog bound."""
    return shift_bound(gps_backlog, penalty.backlog_shift)


def pgps_session_bounds(
    fluid: SessionBounds, penalty: PacketizationPenalty
) -> SessionBounds:
    """Convert a whole fluid :class:`SessionBounds` to PGPS form.

    The output E.B.B. characterization is shifted like the backlog:
    over any interval the PGPS departures can lead the fluid departures
    by at most one packet, adding ``L_max`` of burstiness.
    """
    output = fluid.output
    return SessionBounds(
        session_name=fluid.session_name,
        backlog=pgps_backlog_bound(fluid.backlog, penalty),
        delay=pgps_delay_bound(fluid.delay, penalty),
        output=type(output)(
            output.rho,
            output.prefactor
            * math.exp(output.decay_rate * penalty.backlog_shift),
            output.decay_rate,
        ),
    )
