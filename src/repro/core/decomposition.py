"""The GPS decomposition: virtual rates ``r_i`` and their allocation.

Section 3 replaces the coupled GPS system with ``N`` fictitious
dedicated-rate servers.  The virtual rates must satisfy
``sum_i r_i <= rate``, ``r_i > rho_i`` and form a feasible ordering
(eq. 5).  How the slack ``rate - sum_i rho_i`` is split into the
``eps_i = r_i - rho_i`` is a free design choice that trades prefactor
against decay across sessions; this module provides the standard
allocation strategies and the :class:`Decomposition` object the
single-node theorems consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.feasible import find_feasible_ordering
from repro.core.gps import GPSConfig
from repro.analysis.mgf import VirtualQueue
from repro.utils.validation import check_in_open_interval, check_positive

from repro.errors import ValidationError

__all__ = [
    "Decomposition",
    "uniform_epsilons",
    "rho_proportional_epsilons",
    "phi_proportional_epsilons",
    "decompose",
]


@dataclass(frozen=True)
class Decomposition:
    """Virtual rates plus a feasible ordering for a GPS configuration.

    Attributes
    ----------
    config:
        The underlying GPS server model.
    rates:
        Virtual rate ``r_i`` per session, in session order.
    ordering:
        A feasible ordering with respect to ``rates`` (eq. 5):
        ``ordering[k]`` is the session index at position ``k``.
    """

    config: GPSConfig
    rates: tuple[float, ...]
    ordering: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.config):
            raise ValidationError("one virtual rate per session required")
        for i, (session, rate) in enumerate(
            zip(self.config.sessions, self.rates)
        ):
            if rate <= session.rho:
                raise ValidationError(
                    f"virtual rate r[{i}]={rate} must exceed "
                    f"rho[{i}]={session.rho}"
                )
        if sum(self.rates) > self.config.rate * (1.0 + 1e-12):
            raise ValidationError(
                f"virtual rates sum to {sum(self.rates)} > server rate "
                f"{self.config.rate}"
            )

    # ------------------------------------------------------------------
    def position(self, session_index: int) -> int:
        """Position of a session in the feasible ordering."""
        return self.ordering.index(session_index)

    def predecessors(self, session_index: int) -> list[int]:
        """Sessions strictly before ``session_index`` in the ordering.

        These are the only sessions that influence its bound
        (Theorem 7)."""
        return list(self.ordering[: self.position(session_index)])

    def psi(self, session_index: int) -> float:
        """``psi_i = phi_i / sum_{j at position >= pos(i)} phi_j``."""
        pos = self.position(session_index)
        tail_phi = sum(
            self.config.sessions[j].phi for j in self.ordering[pos:]
        )
        return self.config.sessions[session_index].phi / tail_phi

    def epsilon(self, session_index: int) -> float:
        """Stability margin ``eps_i = r_i - rho_i`` of the virtual queue."""
        return (
            self.rates[session_index]
            - self.config.sessions[session_index].rho
        )

    def virtual_queue(self, session_index: int) -> VirtualQueue:
        """The fictitious dedicated-rate queue for one session."""
        return VirtualQueue(
            arrival=self.config.sessions[session_index].arrival,
            rate=self.rates[session_index],
        )


def uniform_epsilons(config: GPSConfig, *, share: float = 1.0) -> list[float]:
    """Split ``share`` of the server slack equally across sessions."""
    check_in_open_interval("share", share, 0.0, 1.0 + 1e-12)
    return [share * config.slack / len(config)] * len(config)


def rho_proportional_epsilons(
    config: GPSConfig, *, share: float = 1.0
) -> list[float]:
    """Split the slack proportionally to each session's upper rate.

    Equalizes the *relative* stability margin ``eps_i / rho_i`` across
    sessions, which tends to balance the per-session prefactors.
    """
    check_in_open_interval("share", share, 0.0, 1.0 + 1e-12)
    total_rho = sum(config.rhos)
    return [share * config.slack * rho / total_rho for rho in config.rhos]


def phi_proportional_epsilons(
    config: GPSConfig, *, share: float = 1.0
) -> list[float]:
    """Split the slack proportionally to the GPS weights ``phi_i``."""
    check_in_open_interval("share", share, 0.0, 1.0 + 1e-12)
    return [
        share * config.slack * phi / config.total_phi for phi in config.phis
    ]


def decompose(
    config: GPSConfig,
    epsilons: Sequence[float] | None = None,
) -> Decomposition:
    """Build a :class:`Decomposition` for ``config``.

    Parameters
    ----------
    epsilons:
        Per-session slack ``eps_i > 0`` with ``sum_i eps_i`` at most the
        server slack.  Defaults to :func:`rho_proportional_epsilons`,
        which always yields a valid decomposition.

    Raises
    ------
    FeasibleOrderingError
        If no feasible ordering exists for the implied virtual rates
        (cannot happen when ``sum_i r_i <= rate``, but a caller passing
        inconsistent epsilons will be told so).
    """
    if epsilons is None:
        epsilons = rho_proportional_epsilons(config)
    if len(epsilons) != len(config):
        raise ValidationError("one epsilon per session required")
    for k, eps in enumerate(epsilons):
        check_positive(f"epsilons[{k}]", eps)
    rates = tuple(
        session.rho + eps for session, eps in zip(config.sessions, epsilons)
    )
    ordering = tuple(
        find_feasible_ordering(
            rates, config.phis, server_rate=config.rate, strict=False
        )
    )
    return Decomposition(config=config, rates=rates, ordering=ordering)
