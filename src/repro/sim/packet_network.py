"""Multi-node packetized (WFQ) networks.

Chains the batch WFQ simulator across a feedforward network: each
node's departure packets become arrival packets at the session's next
hop.  This is the packet-level counterpart of
:class:`repro.sim.network_sim.FluidNetworkSimulator` and lets the
PGPS corollaries (:mod:`repro.core.pgps`) be validated end to end: the
fluid network bound plus one ``L_max / r`` per hop must dominate the
simulated end-to-end packet delays.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ValidationError
from repro.faults.schedule import FaultSchedule, LinkFault
from repro.network.topology import Network
from repro.sim.packet import Packet, WFQServer

__all__ = ["PacketNetworkResult", "PacketNetworkSimulator"]


@dataclass(frozen=True)
class PacketHopRecord:
    """One packet's passage through one node."""

    node: str
    arrival_time: float
    departure_time: float


@dataclass(frozen=True)
class PacketJourney:
    """A packet's full path through the network."""

    session: str
    size: float
    ingress_time: float
    hops: tuple[PacketHopRecord, ...]

    @property
    def egress_time(self) -> float:
        """Departure from the last hop."""
        return self.hops[-1].departure_time

    @property
    def end_to_end_delay(self) -> float:
        """Total network delay including all queueing."""
        return self.egress_time - self.ingress_time


@dataclass(frozen=True)
class PacketNetworkResult:
    """All packet journeys of a packet-network simulation."""

    journeys: tuple[PacketJourney, ...]
    max_packet_size: float

    def session_delays(self, session: str) -> np.ndarray:
        """End-to-end delays of one session's packets, in ingress
        order."""
        mine = sorted(
            (j for j in self.journeys if j.session == session),
            key=lambda j: j.ingress_time,
        )
        return np.array([j.end_to_end_delay for j in mine])

    def summary(self) -> dict:
        """Scalar facts about the run (the :class:`SimResult` protocol)."""
        sessions = sorted({j.session for j in self.journeys})
        delays = [j.end_to_end_delay for j in self.journeys]
        return {
            "kind": "packet_network",
            "num_packets": len(self.journeys),
            "num_sessions": len(sessions),
            "max_packet_size": self.max_packet_size,
            "mean_end_to_end_delay": (
                float(np.mean(delays)) if delays else 0.0
            ),
            "max_end_to_end_delay": (
                float(max(delays)) if delays else 0.0
            ),
            "sessions": sessions,
        }

    def to_dict(self) -> dict:
        """Full JSON-serializable dump: summary plus packet journeys."""
        payload = self.summary()
        payload["journeys"] = [
            {
                "session": j.session,
                "size": j.size,
                "ingress_time": j.ingress_time,
                "egress_time": j.egress_time,
                "hops": [
                    {
                        "node": h.node,
                        "arrival_time": h.arrival_time,
                        "departure_time": h.departure_time,
                    }
                    for h in j.hops
                ],
            }
            for j in self.journeys
        ]
        return payload


class PacketNetworkSimulator:
    """Per-node WFQ over a feedforward network of GPS nodes.

    Nodes are processed in topological order; since WFQ is
    work-conserving and causal, simulating an upstream node completely
    before its downstream neighbors is exact for feedforward routes.

    ``faults`` injects a :class:`repro.faults.FaultSchedule` of
    :class:`repro.faults.LinkFault` events: packets leaving a faulted
    node are held until the down window closes and/or shifted by the
    extra latency before entering the next hop.
    """

    def __init__(
        self,
        network: Network,
        *,
        faults: FaultSchedule | None = None,
    ) -> None:
        if not network.is_feedforward():
            raise ValidationError(
                "packet networks require a feedforward route graph"
            )
        self._faults = faults if faults is not None else FaultSchedule()
        unsupported = [
            type(f).__name__
            for f in self._faults
            if not isinstance(f, LinkFault)
        ]
        if unsupported:
            raise ValidationError(
                "the packet-network simulator supports only LinkFault "
                f"models (WFQ runs each node as one batch at a fixed "
                f"rate); got {sorted(set(unsupported))}. Use the fluid "
                "network simulator for rate/burst faults."
            )
        self._network = network
        order = list(nx.topological_sort(network.route_graph()))
        in_graph = set(order)
        # nodes never appearing in any edge still need a slot
        for name in network.nodes:
            if name not in in_graph and network.sessions_at(name):
                order.append(name)
        self._node_order = [
            name for name in order if network.sessions_at(name)
        ]

    def run(
        self, ingress: dict[str, list[Packet]]
    ) -> PacketNetworkResult:
        """Simulate; ``ingress[session]`` are the session's packets
        with ``session`` indices ignored (reassigned per node)."""
        network = self._network
        sessions = {s.name: s for s in network.sessions}
        if set(ingress) != set(sessions):
            raise ValidationError(
                "ingress must cover exactly the network sessions "
                f"{sorted(sessions)}, got {sorted(ingress)}"
            )
        # Pending arrival times per (session, node); starts with the
        # ingress packets at each session's first hop.
        pending: dict[tuple[str, str], list[tuple[float, float]]] = {}
        journeys: dict[
            tuple[str, int], list[PacketHopRecord]
        ] = {}
        order_of: dict[tuple[str, int], tuple[float, float]] = {}
        for name, packets in ingress.items():
            route = sessions[name].route
            for index, packet in enumerate(
                sorted(packets, key=lambda p: p.arrival_time)
            ):
                pending.setdefault((name, route[0]), []).append(
                    (packet.arrival_time, packet.size)
                )
                journeys[(name, index)] = []
                order_of[(name, index)] = (
                    packet.arrival_time,
                    packet.size,
                )
        max_size = max(
            (p.size for packets in ingress.values() for p in packets),
            default=0.0,
        )

        for node_name in self._node_order:
            local = [
                s.name for s in network.sessions_at(node_name)
            ]
            phis = [
                sessions[s].phi_at(node_name) for s in local
            ]
            node_packets = []
            tags = []
            for k, session_name in enumerate(local):
                for arrival_time, size in sorted(
                    pending.pop((session_name, node_name), [])
                ):
                    node_packets.append(
                        Packet(k, size, arrival_time)
                    )
                    tags.append(session_name)
            if not node_packets:
                continue
            server = WFQServer(
                network.nodes[node_name].rate, phis
            )
            result = server.simulate(node_packets)
            # Re-associate departures to sessions in arrival order.
            counters: dict[str, int] = {}
            for scheduled in sorted(
                result.packets,
                key=lambda p: (
                    p.packet.arrival_time,
                    p.packet.session,
                ),
            ):
                session_name = local[scheduled.packet.session]
                counters.setdefault(session_name, 0)
                # identify the packet's global index by per-session
                # FIFO order at this node
                session = sessions[session_name]
                hop = session.hop_index(node_name)
                # the per-session order at every hop equals ingress
                # order (FIFO within session under WFQ), so the
                # counter indexes the journey directly
                index = counters[session_name]
                counters[session_name] += 1
                journeys[(session_name, index)].append(
                    PacketHopRecord(
                        node=node_name,
                        arrival_time=scheduled.packet.arrival_time,
                        departure_time=scheduled.pgps_finish,
                    )
                )
                if hop + 1 < session.num_hops:
                    # A faulty link holds the packet (down window) or
                    # adds latency before it reaches the next hop.
                    handoff = self._faults.link_delivery_time(
                        session_name,
                        node_name,
                        scheduled.pgps_finish,
                    )
                    pending.setdefault(
                        (session_name, session.route[hop + 1]), []
                    ).append(
                        (
                            handoff,
                            scheduled.packet.size,
                        )
                    )
        journey_list = []
        for (session_name, index), hops in sorted(
            journeys.items()
        ):
            ingress_time, size = order_of[(session_name, index)]
            journey_list.append(
                PacketJourney(
                    session=session_name,
                    size=size,
                    ingress_time=ingress_time,
                    hops=tuple(hops),
                )
            )
        return PacketNetworkResult(
            journeys=tuple(journey_list),
            max_packet_size=max_size,
        )
