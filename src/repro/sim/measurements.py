"""Measurement utilities: empirical CCDFs and bound-vs-simulation
comparisons.

The paper closes by noting that "simulation needs to be conducted to
verify how good the theoretical bounds are" — these helpers make that
comparison a one-liner: an analytic :class:`ExponentialTailBound` and a
vector of simulated samples produce a :class:`BoundComparison` whose
``max_violation_ratio`` should not exceed 1 (up to Monte-Carlo noise in
the deep tail).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import TailBound

from repro.errors import ValidationError

__all__ = [
    "empirical_ccdf",
    "tail_quantile",
    "BoundComparison",
    "compare_bound_to_samples",
    "busy_periods",
]


def empirical_ccdf(samples: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """``Pr{X >= x}`` estimated from samples, over the grid ``xs``."""
    data = np.sort(np.asarray(samples, dtype=float))
    grid = np.asarray(xs, dtype=float)
    # count of samples >= x via searchsorted on the sorted data
    counts = data.size - np.searchsorted(data, grid, side="left")
    return counts / data.size


def tail_quantile(samples: np.ndarray, epsilon: float) -> float:
    """Smallest ``x`` with empirical ``Pr{X >= x} <= epsilon``."""
    if not 0.0 < epsilon <= 1.0:
        raise ValidationError(f"epsilon must be in (0, 1], got {epsilon}")
    data = np.sort(np.asarray(samples, dtype=float))
    # Pr{X >= data[k]} = (n - k) / n; find the first k with
    # (n - k) / n <= epsilon.
    n = data.size
    k = int(np.ceil(n * (1.0 - epsilon)))
    if k >= n:
        return float(data[-1])
    return float(data[k])


@dataclass(frozen=True)
class BoundComparison:
    """Empirical CCDF vs analytic bound over a common grid."""

    xs: np.ndarray
    empirical: np.ndarray
    bound: np.ndarray

    def max_violation_ratio(self, *, min_probability: float = 0.0) -> float:
        """Largest ``empirical / bound`` over grid points where the
        empirical tail exceeds ``min_probability``.

        A value ``<= 1`` means the bound dominates the simulation
        everywhere considered; ``min_probability`` excludes the deep
        tail where the empirical estimate itself is noise.
        """
        mask = self.empirical > max(min_probability, 0.0)
        if not mask.any():
            return 0.0
        return float(np.max(self.empirical[mask] / self.bound[mask]))

    def mean_slack_decades(self) -> float:
        """Average ``log10(bound / empirical)`` where both are positive
        — how conservative the bound is, in orders of magnitude."""
        mask = (self.empirical > 0.0) & (self.bound > 0.0)
        if not mask.any():
            return 0.0
        return float(
            np.mean(np.log10(self.bound[mask] / self.empirical[mask]))
        )


def compare_bound_to_samples(
    bound: TailBound, samples: np.ndarray, xs: np.ndarray
) -> BoundComparison:
    """Evaluate a bound and the empirical CCDF on a common grid."""
    grid = np.asarray(xs, dtype=float)
    return BoundComparison(
        xs=grid,
        empirical=empirical_ccdf(samples, grid),
        bound=bound.evaluate_array(grid),
    )


def busy_periods(backlog: np.ndarray, *, tol: float = 1e-12) -> list[tuple[int, int]]:
    """Maximal intervals (start, end inclusive) of positive backlog.

    Matches the paper's definition of a busy period as a maximal
    interval throughout which the session is backlogged.
    """
    positive = np.asarray(backlog, dtype=float) > tol
    periods: list[tuple[int, int]] = []
    start = None
    for t, busy in enumerate(positive):
        if busy and start is None:
            start = t
        elif not busy and start is not None:
            periods.append((start, t - 1))
            start = None
    if start is not None:
        periods.append((start, positive.size - 1))
    return periods
