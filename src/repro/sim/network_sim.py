"""Slot-stepped simulation of a network of fluid GPS servers.

Each node of a :class:`repro.network.topology.Network` runs a
:class:`repro.sim.fluid.FluidGPSServer` over the sessions traversing
it; a session's departures at one hop become its arrivals at the next.

Two propagation modes:

* ``link_delay=0`` (default for feedforward networks): nodes are
  stepped in topological order so traffic can traverse the whole route
  within one slot — matching the paper's zero-propagation fluid model.
* ``link_delay>=1``: departures reach the next hop ``link_delay`` slots
  later; required for (and valid on) cyclic route graphs.

The result object exposes per-session network backlog ``Q_i^net`` and
end-to-end clearing delays ``D_i^net`` — the quantities bounded by
Theorem 15 — plus per-node traces for node-level checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import SimulationFaultError, ValidationError
from repro.faults.schedule import FaultSchedule
from repro.network.topology import Network
from repro.sim.fluid import FluidGPSServer, clearing_delays
from repro.sim.results import to_jsonable

__all__ = ["NetworkSimResult", "FluidNetworkSimulator"]


@dataclass(frozen=True)
class NetworkSimResult:
    """Traces from a network simulation.

    Attributes
    ----------
    external_arrivals:
        ``{session: per-slot ingress arrivals}``.
    egress:
        ``{session: per-slot departures from the last hop}``.
    node_backlog:
        ``{(session, node): per-slot backlog at that node}``.
    node_served:
        ``{(session, node): per-slot service at that node}``.
    node_capacities:
        ``{node: per-slot capacity offered}`` when the run was fault
        injected, else ``None``.
    fault_schedule:
        The :class:`repro.faults.FaultSchedule` the run was subjected
        to, else ``None``.
    """

    external_arrivals: dict[str, np.ndarray]
    egress: dict[str, np.ndarray]
    node_backlog: dict[tuple[str, str], np.ndarray]
    node_served: dict[tuple[str, str], np.ndarray]
    node_capacities: dict[str, np.ndarray] | None = None
    fault_schedule: FaultSchedule | None = None

    @property
    def num_slots(self) -> int:
        """Simulated horizon."""
        return next(iter(self.external_arrivals.values())).size

    def network_backlog(self, session_name: str) -> np.ndarray:
        """``Q_i^net(t)``: session traffic queued anywhere (including
        in flight on links), per slot — ingress minus egress."""
        in_cum = np.cumsum(self.external_arrivals[session_name])
        out_cum = np.cumsum(self.egress[session_name])
        return in_cum - out_cum

    def end_to_end_delays(self, session_name: str) -> np.ndarray:
        """``D_i^net(t)``: slots until the network backlog at ``t``
        clears (nan when the horizon ends first)."""
        in_cum = np.cumsum(self.external_arrivals[session_name])
        out_cum = np.cumsum(self.egress[session_name])
        return clearing_delays(in_cum, out_cum)

    def session_node_backlog(
        self, session_name: str, node_name: str
    ) -> np.ndarray:
        """Per-slot backlog of one session at one node."""
        return self.node_backlog[(session_name, node_name)]

    def summary(self) -> dict:
        """Scalar facts about the run (the :class:`SimResult` protocol)."""
        sessions = sorted(self.external_arrivals)
        return {
            "kind": "fluid_network",
            "num_sessions": len(sessions),
            "num_slots": self.num_slots,
            "num_nodes": len({node for _, node in self.node_backlog}),
            "total_arrivals": {
                name: float(self.external_arrivals[name].sum())
                for name in sessions
            },
            "total_egress": {
                name: float(self.egress[name].sum())
                for name in sessions
            },
            "final_network_backlog": {
                name: float(self.network_backlog(name)[-1])
                for name in sessions
            },
            "max_network_backlog": {
                name: float(self.network_backlog(name).max())
                for name in sessions
            },
            "fault_injected": self.fault_schedule is not None,
        }

    def to_dict(self) -> dict:
        """Full JSON-serializable dump: summary plus traces."""
        payload = self.summary()
        payload["external_arrivals"] = to_jsonable(self.external_arrivals)
        payload["egress"] = to_jsonable(self.egress)
        payload["node_backlog"] = to_jsonable(self.node_backlog)
        payload["node_served"] = to_jsonable(self.node_served)
        if self.node_capacities is not None:
            payload["node_capacities"] = to_jsonable(self.node_capacities)
        return payload


class FluidNetworkSimulator:
    """Simulate a network of fluid GPS servers slot by slot.

    ``faults`` injects a :class:`repro.faults.FaultSchedule`: server
    rate faults scale each node's per-slot capacity, burst faults
    perturb session ingress, and link faults hold or delay traffic
    between hops.  The simulation runs *through* every fault — degraded
    windows accrue backlog instead of raising — and the result records
    the capacities actually offered so degraded-mode reports can split
    violations by fault window.
    """

    def __init__(
        self,
        network: Network,
        *,
        link_delay: int | None = None,
        faults: FaultSchedule | None = None,
    ):
        self._network = network
        self._faults = faults if faults is not None else FaultSchedule()
        if link_delay is None:
            link_delay = 0 if network.is_feedforward() else 1
        if link_delay < 0:
            raise ValidationError(f"link_delay must be >= 0, got {link_delay}")
        if link_delay == 0 and not network.is_feedforward():
            raise ValidationError(
                "link_delay=0 needs a feedforward (acyclic) network; "
                "use link_delay >= 1 for cyclic route graphs"
            )
        self._link_delay = link_delay
        # Per-node session order (fixed) and servers.
        self._node_sessions = {
            name: [s.name for s in network.sessions_at(name)]
            for name in network.nodes
        }
        self._node_order = self._processing_order()

    def _processing_order(self) -> list[str]:
        names = [
            name
            for name in self._network.nodes
            if self._node_sessions[name]
        ]
        if self._link_delay > 0:
            return names
        graph = self._network.route_graph()
        order = list(nx.topological_sort(graph))
        return [name for name in order if name in names]

    # ------------------------------------------------------------------
    def run(
        self, external_arrivals: dict[str, np.ndarray]
    ) -> NetworkSimResult:
        """Simulate; ``external_arrivals`` maps every session name to a
        per-slot ingress array (all the same length)."""
        network = self._network
        sessions = {s.name: s for s in network.sessions}
        if set(external_arrivals) != set(sessions):
            raise ValidationError(
                "external_arrivals must cover exactly the network "
                f"sessions {sorted(sessions)}, got "
                f"{sorted(external_arrivals)}"
            )
        lengths = {arr.shape[0] for arr in external_arrivals.values()}
        if len(lengths) != 1:
            raise ValidationError(
                f"all arrival arrays must share a length, got {lengths}"
            )
        (num_slots,) = lengths

        faults = self._faults
        if faults.has_burst_faults:
            external_arrivals = {
                name: faults.adjusted_arrivals(name, arr)
                for name, arr in external_arrivals.items()
            }
        capacities = {
            name: faults.node_capacities(
                name, network.nodes[name].rate, num_slots
            )
            for name in self._node_order
        }

        servers = {
            name: FluidGPSServer(
                rate=network.nodes[name].rate,
                phis=[
                    sessions[s].phi_at(name)
                    for s in self._node_sessions[name]
                ],
            )
            for name in self._node_order
        }
        # in_transit[(session, node)]: FIFO of (due_slot, amount)
        # for link_delay >= 1 and for link-faulted traffic; for
        # link_delay == 0 a same-slot buffer handles the healthy path.
        pending: dict[tuple[str, str], list[tuple[int, float]]] = {}
        node_backlog = {
            (s, n): np.zeros(num_slots)
            for n in self._node_order
            for s in self._node_sessions[n]
        }
        node_served = {
            key: np.zeros(num_slots) for key in node_backlog
        }
        egress = {name: np.zeros(num_slots) for name in sessions}

        for t in range(num_slots):
            same_slot: dict[tuple[str, str], float] = {}
            for node_name in self._node_order:
                local = self._node_sessions[node_name]
                slot_arrivals = np.zeros(len(local))
                for k, session_name in enumerate(local):
                    session = sessions[session_name]
                    if session.route[0] == node_name:
                        slot_arrivals[k] += external_arrivals[
                            session_name
                        ][t]
                    if self._link_delay == 0:
                        slot_arrivals[k] += same_slot.pop(
                            (session_name, node_name), 0.0
                        )
                    queue = pending.get((session_name, node_name))
                    if queue:
                        # Link faults can put a held blob (due at the
                        # window end) ahead of later healthy traffic,
                        # so scan the whole queue rather than the head.
                        still_in_transit = []
                        for due, amount in queue:
                            if due <= t:
                                slot_arrivals[k] += amount
                            else:
                                still_in_transit.append((due, amount))
                        pending[(session_name, node_name)] = (
                            still_in_transit
                        )
                served = servers[node_name].step(
                    slot_arrivals, capacity=capacities[node_name][t]
                )
                backlog = servers[node_name].backlog
                for k, session_name in enumerate(local):
                    node_served[(session_name, node_name)][t] = served[k]
                    node_backlog[(session_name, node_name)][t] = backlog[k]
                    session = sessions[session_name]
                    hop = session.hop_index(node_name)
                    amount = float(served[k])
                    if amount <= 0.0:
                        continue
                    if hop + 1 == session.num_hops:
                        egress[session_name][t] += amount
                    else:
                        next_node = session.route[hop + 1]
                        delivery = faults.link_delivery_time(
                            session_name, node_name, t
                        )
                        if delivery > t:
                            # Link down or delayed: hold the traffic
                            # until the fault clears, then add the
                            # nominal link latency.
                            due = (
                                int(np.ceil(delivery))
                                + self._link_delay
                            )
                            pending.setdefault(
                                (session_name, next_node), []
                            ).append((max(due, t + 1), amount))
                        elif self._link_delay == 0:
                            same_slot[(session_name, next_node)] = (
                                same_slot.get(
                                    (session_name, next_node), 0.0
                                )
                                + amount
                            )
                        else:
                            pending.setdefault(
                                (session_name, next_node), []
                            ).append((t + self._link_delay, amount))
            if self._link_delay == 0 and same_slot:
                leftovers = {k: v for k, v in same_slot.items() if v > 0}
                if leftovers:
                    raise SimulationFaultError(
                        "same-slot traffic was not consumed; processing "
                        f"order is inconsistent: {leftovers}"
                    )
        return NetworkSimResult(
            external_arrivals={
                name: np.asarray(arr, dtype=float)
                for name, arr in external_arrivals.items()
            },
            egress=egress,
            node_backlog=node_backlog,
            node_served=node_served,
            node_capacities=capacities if len(faults) else None,
            fault_schedule=faults if len(faults) else None,
        )
