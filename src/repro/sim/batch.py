"""Batched fluid GPS engine: ``B`` independent trials per step.

Monte-Carlo campaigns over a single GPS node spend essentially all of
their time in the per-slot water-filling; stepping each trial through
:class:`repro.sim.fluid.FluidGPSServer` pays the Python interpreter
cost ``B * T`` times.  :class:`BatchFluidGPSServer` stacks the trials
into ``(B, N, T)`` arrays and applies the *same* water-filling kernel
across the whole batch at once, so the interpreter cost is paid ``T``
times regardless of ``B``.

Because the scalar server is the ``B = 1`` slice of the shared kernel
(:func:`repro.sim.fluid.batch_gps_slot_allocation`), the batched traces
are bit-for-bit identical to running the scalar server on each trial —
the equivalence suite in ``tests/sim/test_batch.py`` asserts exact
equality, not closeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.sim.fluid import GPSSimResult, _batch_water_fill
from repro.utils.validation import check_positive, check_weights

__all__ = ["BatchFluidGPSServer", "BatchGPSSimResult"]

_EPS = 1e-12


@dataclass(frozen=True)
class BatchGPSSimResult:
    """Stacked traces of ``B`` independent fluid GPS trials.

    All trace arrays have shape ``(num_trials, num_sessions,
    num_slots)``; ``capacities`` — when the run was fault-injected —
    has shape ``(num_trials, num_slots)``.
    """

    arrivals: np.ndarray
    served: np.ndarray
    backlog: np.ndarray
    rate: float
    phis: tuple[float, ...]
    capacities: np.ndarray | None = None

    def __post_init__(self) -> None:
        shape = self.arrivals.shape
        if len(shape) != 3:
            raise ValidationError(
                f"traces must be 3-D (B, N, T), got {shape}"
            )
        if self.served.shape != shape or self.backlog.shape != shape:
            raise ValidationError(
                "arrivals/served/backlog shapes differ: "
                f"{shape}, {self.served.shape}, {self.backlog.shape}"
            )
        if self.capacities is not None and self.capacities.shape != (
            shape[0],
            shape[2],
        ):
            raise ValidationError(
                f"capacities must have shape ({shape[0]}, {shape[2]}), "
                f"got {self.capacities.shape}"
            )

    @property
    def num_trials(self) -> int:
        """Batch size ``B``."""
        return self.arrivals.shape[0]

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self.arrivals.shape[1]

    @property
    def num_slots(self) -> int:
        """Number of simulated slots."""
        return self.arrivals.shape[2]

    def trial(self, index: int) -> GPSSimResult:
        """One trial's traces as a scalar :class:`GPSSimResult`.

        The arrays are views into the batch; they compare bit-for-bit
        equal to running :class:`repro.sim.fluid.FluidGPSServer` on the
        same arrivals.
        """
        if not 0 <= index < self.num_trials:
            raise ValidationError(
                f"trial index must be in [0, {self.num_trials}), got "
                f"{index}"
            )
        return GPSSimResult(
            arrivals=self.arrivals[index],
            served=self.served[index],
            backlog=self.backlog[index],
            rate=self.rate,
            phis=self.phis,
            capacities=(
                None if self.capacities is None else self.capacities[index]
            ),
        )

    def total_backlog(self) -> np.ndarray:
        """System backlog per trial and slot, shape ``(B, T)``.

        Sequential over sessions, matching
        :meth:`repro.sim.fluid.GPSSimResult.total_backlog` bit for bit
        on each trial slice.
        """
        if self.backlog.shape[1] == 0:
            return np.zeros((self.num_trials, self.num_slots))
        return np.cumsum(self.backlog, axis=1)[:, -1, :]

    def utilization(self) -> np.ndarray:
        """Per-trial fraction of offered capacity actually used."""
        if self.capacities is not None:
            offered = self.capacities.sum(axis=1)
        else:
            offered = np.full(
                self.num_trials, self.rate * self.num_slots
            )
        used = self.served.sum(axis=(1, 2))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(offered > 0.0, used / offered, 0.0)
        return out

    def busy_fraction(self, session: int) -> np.ndarray:
        """Per-trial fraction of slots the session is backlogged."""
        return np.mean(self.backlog[:, session, :] > _EPS, axis=1)

    # ------------------------------------------------------------------
    # unified result protocol (repro.sim.results.SimResult)
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-serializable scalar summary across the batch."""
        total = self.total_backlog()
        return {
            "kind": "batch_fluid_gps",
            "num_trials": self.num_trials,
            "num_sessions": self.num_sessions,
            "num_slots": self.num_slots,
            "rate": self.rate,
            "phis": list(self.phis),
            "mean_utilization": float(self.utilization().mean()),
            "total_arrived": float(self.arrivals.sum()),
            "total_served": float(self.served.sum()),
            "max_total_backlog": float(total.max()),
            "mean_final_backlog": [
                float(b) for b in self.backlog[:, :, -1].mean(axis=0)
            ],
        }

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-serializable dump: summary plus all traces."""
        payload = self.summary()
        payload["arrivals"] = self.arrivals.tolist()
        payload["served"] = self.served.tolist()
        payload["backlog"] = self.backlog.tolist()
        if self.capacities is not None:
            payload["capacities"] = self.capacities.tolist()
        return payload


class BatchFluidGPSServer:
    """Vectorized fluid GPS server over ``B`` independent trials.

    Keyword-only construction, mirroring
    :class:`repro.sim.fluid.FluidGPSServer`::

        BatchFluidGPSServer(rate=1.0, phis=[2.0, 1.0])
        BatchFluidGPSServer(scenario=scenario)

    All trials share the server rate and weight vector (they are
    independent repetitions of one scenario, not different scenarios);
    per-trial capacity traces may still differ, e.g. under fault
    injection.  Validation happens at construction and once per
    :meth:`run`; the slot loop runs on the no-copy float64 kernel.
    """

    def __init__(
        self,
        *,
        rate: float | None = None,
        phis=None,
        scenario=None,
    ) -> None:
        if scenario is not None:
            if rate is not None or phis is not None:
                raise ValidationError(
                    "pass either scenario= or explicit rate=/phis=, "
                    "not both"
                )
            rate = scenario.rate
            phis = scenario.phis
        if rate is None or phis is None:
            raise ValidationError(
                "BatchFluidGPSServer requires rate= and phis= "
                "(or scenario=)"
            )
        check_positive("rate", rate)
        self._phis = np.ascontiguousarray(
            check_weights("phis", list(phis)), dtype=float
        )
        self._rate = float(rate)
        self._backlog: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Server capacity per slot."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self._phis.size

    @property
    def backlog(self) -> np.ndarray | None:
        """Current ``(B, N)`` backlog (copy), or ``None`` before any
        step."""
        return None if self._backlog is None else self._backlog.copy()

    def reset(self, num_trials: int | None = None) -> None:
        """Empty all queues (and fix the batch size, when given)."""
        if num_trials is None:
            self._backlog = None
        else:
            if num_trials <= 0:
                raise ValidationError(
                    f"num_trials must be positive, got {num_trials}"
                )
            self._backlog = np.zeros((num_trials, self.num_sessions))

    def step(self, arrivals, *, capacity=None) -> np.ndarray:
        """Advance every trial one slot; returns ``(B, N)`` service.

        ``arrivals`` is ``(B, N)``; the batch size is fixed by the
        first step after a :meth:`reset`.  ``capacity`` overrides the
        rate for this slot — a scalar applies to every trial, a
        ``(B,)`` array sets per-trial capacities.
        """
        arr = np.ascontiguousarray(arrivals, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != self.num_sessions:
            raise ValidationError(
                f"arrivals must have shape (B, {self.num_sessions}), "
                f"got {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ValidationError("arrivals must be non-negative")
        if self._backlog is None:
            self._backlog = np.zeros_like(arr)
        elif self._backlog.shape != arr.shape:
            raise ValidationError(
                f"expected batch shape {self._backlog.shape}, got "
                f"{arr.shape}"
            )
        if capacity is None:
            caps = np.full(arr.shape[0], self._rate)
        else:
            caps = np.broadcast_to(
                np.asarray(capacity, dtype=float), (arr.shape[0],)
            ).copy()
            if np.any(~np.isfinite(caps)) or np.any(caps < 0.0):
                raise ValidationError(
                    "capacity must be finite and non-negative"
                )
        return self._step_fast(arr, caps)

    def _step_fast(
        self, arrivals: np.ndarray, capacities: np.ndarray
    ) -> np.ndarray:
        work = self._backlog + arrivals
        served = _batch_water_fill(work, self._phis, capacities)
        self._backlog = np.clip(work - served, 0.0, None)
        return served

    def run(
        self,
        arrivals: np.ndarray,
        *,
        capacities: np.ndarray | None = None,
    ) -> BatchGPSSimResult:
        """Simulate a stacked arrival tensor ``(B, num_sessions, T)``.

        State is reset first, so ``run`` is reproducible.
        ``capacities`` optionally overrides the per-slot capacity:
        shape ``(T,)`` applies the same trace to every trial (the
        common fault-injection case), shape ``(B, T)`` sets per-trial
        traces.

        Trial ``b`` of the result is bit-for-bit
        ``FluidGPSServer(rate=..., phis=...).run(arrivals[b],
        capacities=...)``.
        """
        arr = np.ascontiguousarray(arrivals, dtype=float)
        if arr.ndim != 3 or arr.shape[1] != self.num_sessions:
            raise ValidationError(
                f"arrivals must have shape (B, {self.num_sessions}, T), "
                f"got {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ValidationError("arrivals must be non-negative")
        num_trials, _, num_slots = arr.shape
        if num_trials == 0 or num_slots == 0:
            raise ValidationError(
                f"need at least one trial and one slot, got {arr.shape}"
            )
        caps = None
        if capacities is not None:
            caps = np.ascontiguousarray(capacities, dtype=float)
            if caps.shape == (num_slots,):
                caps = np.broadcast_to(
                    caps, (num_trials, num_slots)
                ).copy()
            if caps.shape != (num_trials, num_slots):
                raise ValidationError(
                    f"capacities must have shape ({num_slots},) or "
                    f"({num_trials}, {num_slots}), got {caps.shape}"
                )
            if np.any(~np.isfinite(caps)) or np.any(caps < 0.0):
                raise ValidationError(
                    "capacities must be finite and non-negative"
                )
        self.reset(num_trials)
        served = np.zeros_like(arr)
        backlog = np.zeros_like(arr)
        full_rate = np.full(num_trials, self._rate)
        for t in range(num_slots):
            slot_caps = full_rate if caps is None else caps[:, t]
            served[:, :, t] = self._step_fast(
                np.ascontiguousarray(arr[:, :, t]), slot_caps
            )
            backlog[:, :, t] = self._backlog
        return BatchGPSSimResult(
            arrivals=arr,
            served=served,
            backlog=backlog,
            rate=self._rate,
            phis=tuple(self._phis.tolist()),
            capacities=caps,
        )
