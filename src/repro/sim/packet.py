"""Packetized GPS (PGPS / Weighted Fair Queueing) simulator.

The paper analyzes the fluid GPS discipline and notes (Sections 2 and
7) that the extension to the packet-by-packet version — PGPS, i.e.
WFQ as introduced by Demers/Keshav/Shenker — "is not difficult".  This
module implements that packet system exactly:

* a continuous-time **virtual clock** ``V(t)`` advancing at rate
  ``r / sum_{i in B(t)} phi_i`` over the GPS-busy set ``B(t)``;
* per-packet virtual start/finish stamps
  ``S_k = max(V(a_k), F_{prev})``, ``F_k = S_k + L_k / phi_i``;
* a non-preemptive server transmitting, whenever it goes idle, the
  queued packet with the smallest virtual finish stamp.

The simulator also reconstructs each packet's departure time in the
*fluid reference* system by inverting ``V(t)`` at ``F_k``, which lets
tests verify Parekh & Gallager's coupling result

    pgps_finish_k <= gps_finish_k + L_max / r.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = ["Packet", "ScheduledPacket", "WFQResult", "WFQServer"]

_EPS = 1e-12


@dataclass(frozen=True)
class Packet:
    """An input packet: session index, size (service units) and
    arrival time."""

    session: int
    size: float
    arrival_time: float

    def __post_init__(self) -> None:
        if self.session < 0:
            raise ValidationError(f"session must be >= 0, got {self.session}")
        check_positive("size", self.size)
        if self.arrival_time < 0.0 or not math.isfinite(self.arrival_time):
            raise ValidationError(
                f"arrival_time must be finite and >= 0, got "
                f"{self.arrival_time}"
            )


@dataclass(frozen=True)
class ScheduledPacket:
    """A packet with all simulation stamps filled in."""

    packet: Packet
    virtual_start: float
    virtual_finish: float
    pgps_start: float
    pgps_finish: float
    gps_finish: float

    @property
    def pgps_delay(self) -> float:
        """Queueing + transmission delay in the packet system."""
        return self.pgps_finish - self.packet.arrival_time

    @property
    def gps_delay(self) -> float:
        """Departure delay in the fluid reference system."""
        return self.gps_finish - self.packet.arrival_time


@dataclass(frozen=True)
class WFQResult:
    """All scheduled packets, in PGPS departure order."""

    packets: tuple[ScheduledPacket, ...]
    rate: float
    phis: tuple[float, ...]

    def session_packets(self, session: int) -> list[ScheduledPacket]:
        """Packets of one session, in arrival order."""
        selected = [
            p for p in self.packets if p.packet.session == session
        ]
        selected.sort(key=lambda p: p.packet.arrival_time)
        return selected

    def session_delays(self, session: int) -> np.ndarray:
        """PGPS delays of one session's packets."""
        return np.array(
            [p.pgps_delay for p in self.session_packets(session)]
        )

    def max_pgps_gps_gap(self) -> float:
        """``max_k (pgps_finish_k - gps_finish_k)``; Parekh & Gallager
        bound this by ``L_max / r``."""
        return max(
            (p.pgps_finish - p.gps_finish for p in self.packets),
            default=0.0,
        )

    def summary(self) -> dict:
        """Scalar facts about the run (the :class:`SimResult` protocol)."""
        delays = [p.pgps_delay for p in self.packets]
        return {
            "kind": "wfq_packet",
            "num_packets": len(self.packets),
            "num_sessions": len(self.phis),
            "rate": self.rate,
            "phis": list(self.phis),
            "total_size": float(
                sum(p.packet.size for p in self.packets)
            ),
            "mean_pgps_delay": (
                float(np.mean(delays)) if delays else 0.0
            ),
            "max_pgps_delay": float(max(delays)) if delays else 0.0,
            "max_pgps_gps_gap": float(self.max_pgps_gps_gap()),
        }

    def to_dict(self) -> dict:
        """Full JSON-serializable dump: summary plus per-packet stamps."""
        payload = self.summary()
        payload["packets"] = [
            {
                "session": p.packet.session,
                "size": p.packet.size,
                "arrival_time": p.packet.arrival_time,
                "virtual_start": p.virtual_start,
                "virtual_finish": p.virtual_finish,
                "pgps_start": p.pgps_start,
                "pgps_finish": p.pgps_finish,
                "gps_finish": p.gps_finish,
            }
            for p in self.packets
        ]
        return payload


class _VirtualClock:
    """Piecewise-linear virtual time with crossing-aware advancement.

    The GPS-busy set is maintained *incrementally* as a sorted index
    list: a session enters when a stamp pushes its last virtual finish
    past ``V`` and leaves when ``V`` crosses that finish, so each slope
    change costs O(busy) instead of rescanning the full φ vector.  All
    busy-φ sums are exactly rounded (``math.fsum``), which makes the
    slope — and therefore every breakpoint — a pure function of the
    busy *set*, independent of summation order.  The streaming engine
    in :mod:`repro.packet` relies on that to reproduce this clock bit
    for bit from an incremental accumulator.
    """

    def __init__(self, rate: float, phis: np.ndarray) -> None:
        self._rate = rate
        self._phis = phis
        self._time = 0.0
        self._virtual = 0.0
        # Largest assigned virtual finish per session; the session is
        # GPS-busy while this exceeds V.
        self._last_finish = np.zeros(phis.size)
        # Sorted indices of the GPS-busy set, kept equal to
        # {i : last_finish[i] > V + eps} across every mutation.
        self._busy: list[int] = []
        # Recorded (time, virtual) breakpoints for inversion.
        self._segments: list[tuple[float, float]] = [(0.0, 0.0)]
        # Cached virtual-value index for binary-search inversion.
        self._index_values: list[float] | None = None

    @property
    def virtual_now(self) -> float:
        return self._virtual

    def _busy_sessions(self) -> np.ndarray:
        return np.asarray(self._busy, dtype=np.intp)

    def _drop_settled(self) -> None:
        """Evict busy sessions whose last finish ``V`` has crossed."""
        threshold = self._virtual + _EPS
        last = self._last_finish
        if any(last[k] <= threshold for k in self._busy):
            self._busy = [
                k for k in self._busy if last[k] > threshold
            ]

    def advance_to(self, target_time: float) -> None:
        """Advance real time to ``target_time``, updating ``V``.

        Between packet arrivals the GPS-busy set only shrinks, at the
        moments ``V`` crosses a session's last virtual finish; each
        crossing changes the slope of ``V``.
        """
        while self._time < target_time - _EPS:
            busy = self._busy
            if not busy:
                # Idle: V holds its value.
                self._time = target_time
                self._segments.append((self._time, self._virtual))
                return
            slope = self._rate / math.fsum(
                self._phis[k] for k in busy
            )
            next_finish = float(
                min(self._last_finish[k] for k in busy)
            )
            crossing_dt = (next_finish - self._virtual) / slope
            remaining = target_time - self._time
            if crossing_dt <= remaining + _EPS:
                self._time += crossing_dt
                self._virtual = next_finish
            else:
                self._time = target_time
                self._virtual += slope * remaining
            self._drop_settled()
            self._segments.append((self._time, self._virtual))

    def stamp_packet(self, packet: Packet) -> tuple[float, float]:
        """Assign virtual start/finish to an arriving packet (the clock
        must already be advanced to the packet's arrival time)."""
        i = packet.session
        start = max(self._virtual, self._last_finish[i])
        finish = start + packet.size / self._phis[i]
        self._last_finish[i] = finish
        if finish > self._virtual + _EPS:
            pos = bisect.bisect_left(self._busy, i)
            if pos == len(self._busy) or self._busy[pos] != i:
                self._busy.insert(pos, i)
        return start, finish

    def drain(self) -> None:
        """Run the clock forward until every session finishes in the
        fluid reference (so all virtual finishes can be inverted)."""
        while self._busy:
            busy = self._busy
            slope = self._rate / math.fsum(
                self._phis[k] for k in busy
            )
            next_finish = float(
                min(self._last_finish[k] for k in busy)
            )
            self._time += (next_finish - self._virtual) / slope
            self._virtual = next_finish
            self._drop_settled()
            self._segments.append((self._time, self._virtual))

    def real_time_of(self, virtual_value: float) -> float:
        """Invert ``V(t)``: first real time at which ``V`` reaches the
        value (defined because ``V`` is non-decreasing).

        Binary search over the recorded breakpoints — the *first*
        breakpoint whose value reaches the query resolves it, with
        linear interpolation inside the segment.  A query within
        ``eps`` above the final drained value resolves to the final
        breakpoint (such a stamp never re-entered the busy set, so
        ``V`` legitimately stops just short of it).  The breakpoint
        index is built lazily on first use (after :meth:`drain`) and
        reused for every packet — the inversion is called once per
        packet, so anything slower makes the simulation quadratic.
        """
        if self._index_values is None or len(
            self._index_values
        ) != len(self._segments):
            self._index_values = [v for _, v in self._segments]
        segments = self._segments
        k = bisect.bisect_left(self._index_values, virtual_value)
        if k >= len(segments):
            if virtual_value <= self._virtual + _EPS:
                return segments[-1][0]
            raise ValidationError(
                f"virtual value {virtual_value} was never reached; "
                "call drain() first"
            )
        if k == 0:
            return segments[0][0]
        t0, v0 = segments[k - 1]
        t1, v1 = segments[k]
        if v1 <= v0 + _EPS:
            return t1
        fraction = (virtual_value - v0) / (v1 - v0)
        return t0 + fraction * (t1 - t0)


class WFQServer:
    """Non-preemptive packet-by-packet GPS (WFQ) server."""

    def __init__(self, rate: float, phis) -> None:
        check_positive("rate", rate)
        self._phis = np.asarray(check_weights("phis", list(phis)))
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """Transmission rate (service units per time unit)."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self._phis.size

    def simulate(self, packets: list[Packet]) -> WFQResult:
        """Schedule all packets; returns stamps in departure order."""
        for packet in packets:
            if packet.session >= self.num_sessions:
                raise ValidationError(
                    f"packet session {packet.session} out of range "
                    f"(server has {self.num_sessions} sessions)"
                )
        pending = sorted(
            packets, key=lambda p: (p.arrival_time, p.session)
        )
        clock = _VirtualClock(self._rate, self._phis)
        # Heap of (virtual_finish, sequence, packet, virtual_start).
        ready: list[tuple[float, int, Packet, float]] = []
        scheduled: list[ScheduledPacket] = []
        sequence = 0
        server_free_at = 0.0
        index = 0
        stamps: list[tuple[Packet, float, float, float, float]] = []

        while index < len(pending) or ready:
            if not ready:
                # Jump to the next arrival.
                next_arrival = pending[index].arrival_time
                server_free_at = max(server_free_at, next_arrival)
            # Admit everything that has arrived by the time the server
            # is free to choose.
            while (
                index < len(pending)
                and pending[index].arrival_time <= server_free_at + _EPS
            ):
                packet = pending[index]
                clock.advance_to(packet.arrival_time)
                v_start, v_finish = clock.stamp_packet(packet)
                heapq.heappush(
                    ready, (v_finish, sequence, packet, v_start)
                )
                sequence += 1
                index += 1
            v_finish, _, packet, v_start = heapq.heappop(ready)
            start = max(server_free_at, packet.arrival_time)
            finish = start + packet.size / self._rate
            stamps.append((packet, v_start, v_finish, start, finish))
            server_free_at = finish

        clock.drain()
        for packet, v_start, v_finish, start, finish in stamps:
            scheduled.append(
                ScheduledPacket(
                    packet=packet,
                    virtual_start=v_start,
                    virtual_finish=v_finish,
                    pgps_start=start,
                    pgps_finish=finish,
                    gps_finish=clock.real_time_of(v_finish),
                )
            )
        return WFQResult(
            packets=tuple(scheduled),
            rate=self._rate,
            phis=tuple(self._phis.tolist()),
        )
