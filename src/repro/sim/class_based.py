"""Two-level scheduling: GPS between classes, FCFS within a class.

The paper's Section 7 proposes exactly this hybrid: group sessions
with similar characteristics into classes, isolate the *classes* from
each other with GPS, and let sessions inside a class share their
aggregate allocation FCFS to harvest multiplexing gain.  The
feasible-partition theory then bounds each class aggregate, and the
aggregate bound is a worst-case bound for every member.

:class:`ClassBasedGPSServer` implements the discipline at fluid-slot
granularity: the slot capacity is split across classes by GPS
water-filling on the class backlogs, and each class's share is drained
through a FIFO of per-slot batches, so traffic of different sessions
inside a class is served strictly in arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.fluid import GPSSimResult, gps_slot_allocation
from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = ["ClassBasedGPSServer"]

_EPS = 1e-12


@dataclass
class _ClassQueue:
    """FIFO of per-slot batches for one class.

    Each batch stores the per-member amounts so service can be
    attributed back to sessions proportionally within a batch.
    """

    members: list[int]
    batches: list[np.ndarray]

    def backlog(self) -> float:
        return float(sum(b.sum() for b in self.batches))

    def member_backlog(self, num_sessions: int) -> np.ndarray:
        out = np.zeros(num_sessions)
        for batch in self.batches:
            out[self.members] += batch
        return out

    def push(self, amounts: np.ndarray) -> None:
        if float(amounts.sum()) > _EPS:
            self.batches.append(amounts.copy())

    def drain(self, capacity: float, num_sessions: int) -> np.ndarray:
        served = np.zeros(num_sessions)
        remaining = capacity
        while self.batches and remaining > _EPS:
            batch = self.batches[0]
            total = float(batch.sum())
            if total <= remaining + _EPS:
                served[self.members] += batch
                remaining -= total
                self.batches.pop(0)
            else:
                fraction = remaining / total
                grant = batch * fraction
                served[self.members] += grant
                self.batches[0] = batch - grant
                remaining = 0.0
        return served


class ClassBasedGPSServer:
    """GPS across classes, FCFS within each class.

    Parameters
    ----------
    rate:
        Server capacity per slot.
    class_members:
        ``class_members[k]`` lists the session indices of class ``k``;
        together they must partition ``0..N-1``.
    class_phis:
        GPS weight per class.
    """

    def __init__(
        self,
        rate: float,
        class_members: list[list[int]],
        class_phis,
    ) -> None:
        check_positive("rate", rate)
        phis = check_weights("class_phis", list(class_phis))
        if len(phis) != len(class_members):
            raise ValidationError(
                "one weight per class required, got "
                f"{len(phis)} weights for {len(class_members)} classes"
            )
        flat = [i for members in class_members for i in members]
        if not flat:
            raise ValidationError("need at least one session")
        if sorted(flat) != list(range(len(flat))):
            raise ValidationError(
                "class_members must partition the session indices "
                f"0..{len(flat) - 1}, got {class_members}"
            )
        self._rate = float(rate)
        self._phis = np.asarray(phis)
        self._num_sessions = len(flat)
        self._class_members = [list(m) for m in class_members]
        self._queues = [
            _ClassQueue(members=list(m), batches=[])
            for m in class_members
        ]

    @property
    def rate(self) -> float:
        """Server capacity per slot."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Total session count across classes."""
        return self._num_sessions

    @property
    def num_classes(self) -> int:
        """Number of classes."""
        return len(self._queues)

    def reset(self) -> None:
        """Empty all class queues."""
        for queue in self._queues:
            queue.batches = []

    def step(self, arrivals) -> np.ndarray:
        """Advance one slot; returns per-session service amounts."""
        arr = np.asarray(arrivals, dtype=float)
        if arr.shape != (self._num_sessions,):
            raise ValidationError(
                f"expected {self._num_sessions} arrival entries, got "
                f"shape {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ValidationError("arrivals must be non-negative")
        for queue in self._queues:
            queue.push(arr[queue.members])
        class_work = np.array(
            [queue.backlog() for queue in self._queues]
        )
        class_service = gps_slot_allocation(
            class_work, self._phis, self._rate
        )
        served = np.zeros(self._num_sessions)
        for queue, capacity in zip(self._queues, class_service):
            served += queue.drain(float(capacity), self._num_sessions)
        return served

    def run(self, arrivals: np.ndarray) -> GPSSimResult:
        """Simulate a whole arrival matrix; see FluidGPSServer.run."""
        arr = np.asarray(arrivals, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != self._num_sessions:
            raise ValidationError(
                f"arrivals must have shape ({self._num_sessions}, T), "
                f"got {arr.shape}"
            )
        self.reset()
        served = np.zeros_like(arr)
        backlog = np.zeros_like(arr)
        for t in range(arr.shape[1]):
            served[:, t] = self.step(arr[:, t])
            snapshot = np.zeros(self._num_sessions)
            for queue in self._queues:
                snapshot += queue.member_backlog(self._num_sessions)
            backlog[:, t] = snapshot
        # record per-session weights as the class weight share
        weights = np.zeros(self._num_sessions)
        for queue, phi in zip(self._queues, self._phis):
            weights[queue.members] = phi / max(len(queue.members), 1)
        return GPSSimResult(
            arrivals=arr,
            served=served,
            backlog=backlog,
            rate=self._rate,
            phis=tuple(weights.tolist()),
        )

    def class_backlogs(self) -> np.ndarray:
        """Current per-class backlog totals."""
        return np.array([queue.backlog() for queue in self._queues])
