"""Packet-level baseline schedulers: SCFQ and Virtual Clock.

Two classic alternatives to WFQ from the same era as the paper, useful
as comparison points for the PGPS results:

* **Self-Clocked Fair Queueing** (Golestani '94): like WFQ but the
  virtual time is read off the tag of the packet *in service* instead
  of simulating the fluid reference — O(1) virtual time at the cost of
  looser fairness bounds.
* **Virtual Clock** (L. Zhang '90): each session has a reserved rate
  ``r_i``; packets are stamped ``VC_i = max(now, VC_i) + L / r_i`` and
  served in stamp order.  Rate guarantees without GPS-style fairness
  (an idle session can be penalized for past overuse).

Both share a tag-ordered non-preemptive engine; results expose
per-packet start/finish times and per-session delays like
:class:`repro.sim.packet.WFQResult`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.sim.packet import Packet
from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = [
    "TaggedPacket",
    "TaggedResult",
    "SCFQServer",
    "VirtualClockServer",
]

_EPS = 1e-12


@dataclass(frozen=True)
class TaggedPacket:
    """A packet scheduled by a tag-ordered server."""

    packet: Packet
    tag: float
    start: float
    finish: float

    @property
    def delay(self) -> float:
        """Queueing plus transmission delay."""
        return self.finish - self.packet.arrival_time


@dataclass(frozen=True)
class TaggedResult:
    """All packets of a tag-ordered simulation, in departure order."""

    packets: tuple[TaggedPacket, ...]
    rate: float

    def session_packets(self, session: int) -> list[TaggedPacket]:
        """One session's packets in arrival order."""
        mine = [p for p in self.packets if p.packet.session == session]
        mine.sort(key=lambda p: p.packet.arrival_time)
        return mine

    def session_delays(self, session: int) -> np.ndarray:
        """One session's per-packet delays."""
        return np.array(
            [p.delay for p in self.session_packets(session)]
        )

    def summary(self) -> dict:
        """Scalar facts about the run (the :class:`SimResult` protocol)."""
        delays = [p.delay for p in self.packets]
        return {
            "kind": "tagged_packet",
            "num_packets": len(self.packets),
            "rate": self.rate,
            "total_size": float(
                sum(p.packet.size for p in self.packets)
            ),
            "mean_delay": float(np.mean(delays)) if delays else 0.0,
            "max_delay": float(max(delays)) if delays else 0.0,
        }

    def to_dict(self) -> dict:
        """Full JSON-serializable dump: summary plus per-packet stamps."""
        payload = self.summary()
        payload["packets"] = [
            {
                "session": p.packet.session,
                "size": p.packet.size,
                "arrival_time": p.packet.arrival_time,
                "tag": p.tag,
                "start": p.start,
                "finish": p.finish,
            }
            for p in self.packets
        ]
        return payload


class _TagOrderedServer:
    """Shared engine: admit arrived packets, stamp them with a
    scheduler-specific tag, transmit in tag order, non-preemptively."""

    def __init__(self, rate: float, num_sessions: int) -> None:
        check_positive("rate", rate)
        self._rate = float(rate)
        self._num_sessions = num_sessions

    @property
    def rate(self) -> float:
        """Transmission rate."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self._num_sessions

    def _reset(self) -> None:
        raise NotImplementedError

    def _stamp(self, packet: Packet, now: float) -> float:
        raise NotImplementedError

    def _on_service_start(self, tag: float) -> None:
        """Hook called when a packet begins transmission."""

    def _on_idle(self) -> None:
        """Hook called when the server goes idle."""

    def simulate(self, packets: list[Packet]) -> TaggedResult:
        """Schedule all packets; returns stamps in departure order."""
        for packet in packets:
            if packet.session >= self._num_sessions:
                raise ValidationError(
                    f"packet session {packet.session} out of range"
                )
        self._reset()
        pending = sorted(
            packets, key=lambda p: (p.arrival_time, p.session)
        )
        ready: list[tuple[float, int, Packet]] = []
        scheduled: list[TaggedPacket] = []
        sequence = 0
        server_free_at = 0.0
        index = 0
        while index < len(pending) or ready:
            if not ready:
                self._on_idle()
                server_free_at = max(
                    server_free_at, pending[index].arrival_time
                )
            while (
                index < len(pending)
                and pending[index].arrival_time <= server_free_at + _EPS
            ):
                packet = pending[index]
                tag = self._stamp(packet, packet.arrival_time)
                heapq.heappush(ready, (tag, sequence, packet))
                sequence += 1
                index += 1
            tag, _, packet = heapq.heappop(ready)
            start = max(server_free_at, packet.arrival_time)
            self._on_service_start(tag)
            finish = start + packet.size / self._rate
            scheduled.append(
                TaggedPacket(
                    packet=packet, tag=tag, start=start, finish=finish
                )
            )
            server_free_at = finish
        return TaggedResult(
            packets=tuple(scheduled), rate=self._rate
        )


class SCFQServer(_TagOrderedServer):
    """Self-Clocked Fair Queueing.

    The virtual time is the tag of the packet currently in service
    (zero when the system is idle); arriving packets are stamped
    ``max(v, F_prev) + L / phi_i``.
    """

    def __init__(self, rate: float, phis) -> None:
        weights = check_weights("phis", list(phis))
        super().__init__(rate, len(weights))
        self._phis = np.asarray(weights)
        self._reset()

    def _reset(self) -> None:
        self._virtual = 0.0
        self._last_finish = np.zeros(self._num_sessions)

    def _stamp(self, packet: Packet, now: float) -> float:
        del now
        i = packet.session
        start = max(self._virtual, self._last_finish[i])
        finish = start + packet.size / self._phis[i]
        self._last_finish[i] = finish
        return finish

    def _on_service_start(self, tag: float) -> None:
        self._virtual = tag

    def _on_idle(self) -> None:
        self._virtual = 0.0
        self._last_finish[:] = 0.0


class VirtualClockServer(_TagOrderedServer):
    """Virtual Clock scheduling with per-session reserved rates."""

    def __init__(self, rate: float, reserved_rates) -> None:
        reserved = [float(r) for r in reserved_rates]
        for k, r in enumerate(reserved):
            check_positive(f"reserved_rates[{k}]", r)
        if sum(reserved) > rate + 1e-12:
            raise ValidationError(
                f"reserved rates sum to {sum(reserved)} > server rate "
                f"{rate}"
            )
        super().__init__(rate, len(reserved))
        self._reserved = np.asarray(reserved)
        self._reset()

    def _reset(self) -> None:
        self._clocks = np.zeros(self._num_sessions)

    def _stamp(self, packet: Packet, now: float) -> float:
        i = packet.session
        self._clocks[i] = (
            max(now, self._clocks[i])
            + packet.size / self._reserved[i]
        )
        return float(self._clocks[i])
