"""Convert fluid slot traces into packet workloads.

Bridges the fluid world of the analysis (per-slot traffic amounts) and
the packet world of :mod:`repro.sim.packet`: each session's fluid
arrivals are chopped into packets, with packets released at the
(sub-slot) instants at which the fluid crosses packet boundaries.
This is how the PGPS ablation drives the WFQ simulator with the same
stochastic sources the fluid analysis uses.

Packet sizes come from a :class:`PacketSizeModel`:

* :class:`FixedSize` — the classical fixed-length chopper (and the
  model behind the original :func:`packetize_trace` API, which is kept
  bit-for-bit compatible);
* :class:`UniformSize` — lengths uniform on ``[low, high]``;
* :class:`TruncatedGeometricSize` — lengths ``k * quantum`` with ``k``
  truncated-geometric, the classical packet-length model with an
  explicit ``L_max`` (the quantity the Parekh–Gallager ``L_max / r``
  correction is about).

Every model exposes ``max_size`` — the a-priori ``L_max`` feeding
:class:`repro.core.pgps.PacketizationPenalty` — and samples from a
caller-provided :class:`numpy.random.Generator`, so workloads are
reproducible from a seed (see :func:`packetize_traces_model` and
:meth:`repro.scenario.Scenario.to_packet_trace`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ValidationError
from repro.sim.packet import Packet
from repro.utils.validation import check_positive

__all__ = [
    "FixedSize",
    "PacketSizeModel",
    "TruncatedGeometricSize",
    "UniformSize",
    "packetize_trace",
    "packetize_trace_model",
    "packetize_traces",
    "packetize_traces_model",
]


class PacketSizeModel(ABC):
    """A distribution over packet lengths.

    ``sample`` draws the *next* packet's length; the chopper calls it
    once per packet, in packet order, so a given generator state yields
    a deterministic workload.
    """

    @property
    @abstractmethod
    def max_size(self) -> float:
        """The largest length the model can emit (``L_max``)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator | None) -> float:
        """Draw one packet length."""


class FixedSize(PacketSizeModel):
    """Every packet has the same length (the classical chopper)."""

    def __init__(self, size: float) -> None:
        check_positive("size", size)
        self._size = float(size)

    @property
    def size(self) -> float:
        """The fixed packet length."""
        return self._size

    @property
    def max_size(self) -> float:
        """The fixed length is also the maximum."""
        return self._size

    def sample(self, rng: np.random.Generator | None) -> float:
        """The fixed length; no randomness consumed."""
        return self._size

    def __repr__(self) -> str:
        return f"FixedSize({self._size!r})"


class UniformSize(PacketSizeModel):
    """Packet lengths uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        check_positive("low", low)
        check_positive("high", high)
        if high < low:
            raise ValidationError(
                f"high must be >= low, got low={low}, high={high}"
            )
        self._low = float(low)
        self._high = float(high)

    @property
    def low(self) -> float:
        """The smallest length."""
        return self._low

    @property
    def high(self) -> float:
        """The largest length."""
        return self._high

    @property
    def max_size(self) -> float:
        """``high`` — the support's upper end."""
        return self._high

    def sample(self, rng: np.random.Generator | None) -> float:
        """One uniform draw from the generator."""
        if rng is None:
            raise ValidationError(
                "UniformSize needs a random generator to sample from"
            )
        return float(rng.uniform(self._low, self._high))

    def __repr__(self) -> str:
        return f"UniformSize({self._low!r}, {self._high!r})"


class TruncatedGeometricSize(PacketSizeModel):
    """Lengths ``k * quantum`` with ``k`` truncated-geometric.

    ``k`` ranges over ``1..k_max`` where ``k_max = floor(l_max /
    quantum)``; ``P(k) ∝ (1 - p)^(k - 1) p``, renormalized over the
    truncated support.  ``p`` close to 1 concentrates on minimum-size
    packets; small ``p`` pushes mass toward ``L_max`` — the knob the
    gap experiments sweep against the ``L_max / r`` bound.
    """

    def __init__(self, quantum: float, p: float, l_max: float) -> None:
        check_positive("quantum", quantum)
        check_positive("l_max", l_max)
        if not 0.0 < p < 1.0:
            raise ValidationError(
                f"p must lie strictly in (0, 1), got {p}"
            )
        k_max = int(math.floor(float(l_max) / float(quantum)))
        if k_max < 1:
            raise ValidationError(
                f"l_max={l_max} admits no packet: it is smaller than "
                f"quantum={quantum}"
            )
        self._quantum = float(quantum)
        self._p = float(p)
        self._k_max = k_max
        # Inverse-CDF table over the truncated support.
        pmf = self._p * (1.0 - self._p) ** np.arange(k_max)
        self._cdf = np.cumsum(pmf / pmf.sum())
        self._cdf[-1] = 1.0

    @property
    def quantum(self) -> float:
        """The length quantum (the minimum packet length)."""
        return self._quantum

    @property
    def p(self) -> float:
        """The geometric success probability."""
        return self._p

    @property
    def k_max(self) -> int:
        """The largest multiple of ``quantum`` the model emits."""
        return self._k_max

    @property
    def max_size(self) -> float:
        """``k_max * quantum`` — the truncation point."""
        return self._k_max * self._quantum

    def sample(self, rng: np.random.Generator | None) -> float:
        """One truncated-geometric draw (inverse CDF)."""
        if rng is None:
            raise ValidationError(
                "TruncatedGeometricSize needs a random generator to "
                "sample from"
            )
        k = int(np.searchsorted(self._cdf, rng.random(), side="right"))
        return (min(k, self._k_max - 1) + 1) * self._quantum

    def __repr__(self) -> str:
        return (
            f"TruncatedGeometricSize({self._quantum!r}, {self._p!r}, "
            f"{self.max_size!r})"
        )


def packetize_trace_model(
    increments: np.ndarray,
    session: int,
    model: PacketSizeModel,
    rng: np.random.Generator | None = None,
) -> list[Packet]:
    """Chop one session's fluid trace into model-sized packets.

    A packet's length is drawn when the *previous* packet completes;
    the packet is released at the first instant the cumulative fluid
    reaches the resulting boundary.  Within a slot the fluid arrives
    at a constant rate, so release times interpolate linearly inside
    the slot.  Residual fluid smaller than the pending packet at the
    end of the trace is dropped (it never completed a packet).

    With :class:`FixedSize` this reproduces :func:`packetize_trace`
    bit for bit — the boundary accumulation is the same float
    sequence.
    """
    if session < 0:
        raise ValidationError(f"session must be >= 0, got {session}")
    arr = np.asarray(increments, dtype=float)
    if np.any(arr < 0.0):
        raise ValidationError("arrivals must be non-negative")
    packets: list[Packet] = []
    cumulative = 0.0
    pending_size = model.sample(rng)
    next_boundary = pending_size
    for slot, amount in enumerate(arr):
        if amount <= 0.0:
            continue
        slot_start_cum = cumulative
        cumulative += float(amount)
        while cumulative >= next_boundary - 1e-12:
            fraction = (next_boundary - slot_start_cum) / amount
            fraction = min(max(fraction, 0.0), 1.0)
            packets.append(
                Packet(
                    session=session,
                    size=pending_size,
                    arrival_time=slot + fraction,
                )
            )
            pending_size = model.sample(rng)
            next_boundary += pending_size
    return packets


def packetize_trace(
    increments: np.ndarray,
    session: int,
    packet_size: float,
) -> list[Packet]:
    """Chop one session's fluid trace into fixed-size packets.

    The original fixed-length API; equivalent to
    :func:`packetize_trace_model` with :class:`FixedSize` (and kept as
    the convenient spelling for the common case).
    """
    check_positive("packet_size", packet_size)
    return packetize_trace_model(
        increments, session, FixedSize(packet_size)
    )


def packetize_traces(
    traces: np.ndarray, packet_size: float
) -> list[Packet]:
    """Packetize a ``(num_sessions, num_slots)`` fluid matrix.

    Returns all packets merged in arrival order, ready for
    :meth:`repro.sim.packet.WFQServer.simulate`.
    """
    check_positive("packet_size", packet_size)
    return packetize_traces_model(traces, FixedSize(packet_size))


def packetize_traces_model(
    traces: np.ndarray,
    model: PacketSizeModel,
    *,
    seed: int | tuple | None = None,
) -> list[Packet]:
    """Packetize a fluid matrix with model-drawn packet lengths.

    Each session gets an independent generator spawned from ``seed``
    via ``SeedSequence(entropy=seed, spawn_key=(session,))`` — the
    workload for session ``i`` does not change when other sessions are
    added or removed.  Returns all packets merged in ``(arrival_time,
    session)`` order, the canonical admission order of both
    :meth:`repro.sim.packet.WFQServer.simulate` and
    :class:`repro.packet.engine.PacketEngine`.
    """
    matrix = np.asarray(traces, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(
            f"traces must be 2-D (sessions x slots), got {matrix.shape}"
        )
    packets: list[Packet] = []
    for session in range(matrix.shape[0]):
        rng = None
        if seed is not None:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=seed, spawn_key=(session,)
                )
            )
        packets.extend(
            packetize_trace_model(
                matrix[session], session, model, rng
            )
        )
    packets.sort(key=lambda p: (p.arrival_time, p.session))
    return packets
