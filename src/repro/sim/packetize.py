"""Convert fluid slot traces into packet workloads.

Bridges the fluid world of the analysis (per-slot traffic amounts) and
the packet world of :mod:`repro.sim.packet`: each session's fluid
arrivals are chopped into packets of a given size, with packets
released at the (sub-slot) instants at which the fluid crosses packet
boundaries.  This is how the PGPS ablation drives the WFQ simulator
with the same stochastic sources the fluid analysis uses.
"""

from __future__ import annotations

import numpy as np

from repro.sim.packet import Packet
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = ["packetize_trace", "packetize_traces"]


def packetize_trace(
    increments: np.ndarray,
    session: int,
    packet_size: float,
) -> list[Packet]:
    """Chop one session's fluid trace into fixed-size packets.

    A packet is released at the first instant the cumulative fluid
    reaches a multiple of ``packet_size``; within a slot the fluid is
    assumed to arrive at a constant rate, so release times interpolate
    linearly inside the slot.  Residual fluid smaller than a packet at
    the end of the trace is dropped (it never completed a packet).
    """
    check_positive("packet_size", packet_size)
    if session < 0:
        raise ValidationError(f"session must be >= 0, got {session}")
    arr = np.asarray(increments, dtype=float)
    if np.any(arr < 0.0):
        raise ValidationError("arrivals must be non-negative")
    packets: list[Packet] = []
    cumulative = 0.0
    next_boundary = packet_size
    for slot, amount in enumerate(arr):
        if amount <= 0.0:
            continue
        slot_start_cum = cumulative
        cumulative += float(amount)
        while cumulative >= next_boundary - 1e-12:
            fraction = (next_boundary - slot_start_cum) / amount
            fraction = min(max(fraction, 0.0), 1.0)
            packets.append(
                Packet(
                    session=session,
                    size=packet_size,
                    arrival_time=slot + fraction,
                )
            )
            next_boundary += packet_size
    return packets


def packetize_traces(
    traces: np.ndarray, packet_size: float
) -> list[Packet]:
    """Packetize a ``(num_sessions, num_slots)`` fluid matrix.

    Returns all packets merged in arrival order, ready for
    :meth:`repro.sim.packet.WFQServer.simulate`.
    """
    matrix = np.asarray(traces, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError(
            f"traces must be 2-D (sessions x slots), got {matrix.shape}"
        )
    packets: list[Packet] = []
    for session in range(matrix.shape[0]):
        packets.extend(
            packetize_trace(matrix[session], session, packet_size)
        )
    packets.sort(key=lambda p: (p.arrival_time, p.session))
    return packets
