"""Exact continuous-time fluid GPS: event-driven, piecewise-linear.

The slotted simulator (:mod:`repro.sim.fluid`) discretizes time; this
engine solves the fluid GPS dynamics *exactly* for inputs that are
piecewise-constant rates plus instantaneous bursts — the input class of
the deterministic analysis (leaky-bucket all-greedy sources emit a
burst ``sigma_i`` and then flow at rate ``rho_i``).

Between events the backlog trajectory is linear: the GPS allocation
depends only on which sessions are backlogged and on the current input
rates, and it changes only when (a) a session's backlog hits zero,
(b) an input breakpoint occurs, or (c) an idle session's input rate
starts exceeding its fair share.  The engine steps from event to event,
yielding exact per-session piecewise-linear backlog curves.

Within an instant, the service rate allocation is the fluid
water-filling fixed point: backlogged sessions demand unbounded rate,
idle sessions demand their input rate; capacity is assigned in weight
proportion with redistribution of unused shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = [
    "RateSegment",
    "FluidTrajectory",
    "gps_rate_allocation",
    "simulate_exact_gps",
]

_EPS = 1e-12


@dataclass(frozen=True)
class RateSegment:
    """Input rates from ``start_time`` onward (until the next segment).

    Attributes
    ----------
    start_time:
        When these rates take effect.
    rates:
        Per-session constant input rates.
    bursts:
        Instantaneous per-session traffic injected exactly at
        ``start_time`` (defaults to none).
    """

    start_time: float
    rates: tuple[float, ...]
    bursts: tuple[float, ...] | None = None


@dataclass(frozen=True)
class FluidTrajectory:
    """Exact piecewise-linear backlog curves.

    Attributes
    ----------
    times:
        Event times ``t_0 < t_1 < ...`` (including every input
        breakpoint and every queue-emptying instant).
    backlog:
        ``backlog[k][i]``: session ``i`` backlog at ``times[k]``
        (immediately after any burst at that instant).  Between
        consecutive times the backlog is linear.
    """

    times: np.ndarray
    backlog: np.ndarray

    def backlog_at(self, t: float, session: int) -> float:
        """Exact backlog of one session at an arbitrary time."""
        times = self.times
        if t < times[0] - _EPS:
            return 0.0
        k = int(np.searchsorted(times, t, side="right")) - 1
        k = min(k, times.size - 2) if times.size > 1 else 0
        if times.size == 1 or t >= times[-1]:
            return float(self.backlog[-1, session])
        t0, t1 = times[k], times[k + 1]
        q0, q1 = self.backlog[k, session], self.backlog[k + 1, session]
        if t1 <= t0 + _EPS:
            return float(q1)
        fraction = (t - t0) / (t1 - t0)
        return float(q0 + fraction * (q1 - q0))

    def max_backlog(self, session: int) -> float:
        """Peak backlog of one session (attained at an event time,
        since trajectories are piecewise linear)."""
        return float(self.backlog[:, session].max())


def gps_rate_allocation(
    backlogged: np.ndarray,
    input_rates: np.ndarray,
    phis: np.ndarray,
    capacity: float,
) -> np.ndarray:
    """Instantaneous GPS service-rate allocation.

    Backlogged sessions absorb any rate; idle sessions are capped at
    their input rate.  Water-filling: offer capacity in weight
    proportion among unsatisfied sessions; idle sessions whose input
    rate is below their offer are pinned there and release the excess.
    """
    num = phis.size
    allocation = np.zeros(num)
    demand = np.where(backlogged, np.inf, input_rates)
    remaining = float(capacity)
    active = demand > _EPS
    # Sessions with zero demand stay at zero allocation.
    for _ in range(num + 1):
        if remaining <= _EPS or not active.any():
            break
        total_phi = phis[active].sum()
        shares = np.zeros(num)
        shares[active] = remaining * phis[active] / total_phi
        capped = active & (demand <= shares + _EPS)
        if capped.any():
            allocation[capped] = demand[capped]
            remaining -= float(demand[capped].sum())
            active &= ~capped
        else:
            allocation[active] += shares[active]
            remaining = 0.0
    return allocation


def simulate_exact_gps(
    rate: float,
    phis: Sequence[float],
    segments: Sequence[RateSegment],
    *,
    horizon: float,
) -> FluidTrajectory:
    """Run the exact fluid GPS dynamics up to ``horizon``.

    ``segments`` must be sorted by ``start_time`` with the first at the
    simulation start.  Queues start empty (use a burst in the first
    segment for non-empty starts).
    """
    check_positive("rate", rate)
    phi_arr = np.asarray(check_weights("phis", list(phis)))
    num = phi_arr.size
    if not segments:
        raise ValidationError("need at least one input segment")
    starts = [seg.start_time for seg in segments]
    if starts != sorted(starts):
        raise ValidationError("segments must be sorted by start_time")
    check_positive("horizon", horizon)

    times = [segments[0].start_time]
    q = np.zeros(num)
    if segments[0].bursts is not None:
        q += np.asarray(segments[0].bursts, dtype=float)
    backlog_rows = [q.copy()]
    now = segments[0].start_time
    segment_index = 0

    def current_rates() -> np.ndarray:
        return np.asarray(segments[segment_index].rates, dtype=float)

    max_events = 64 * (num + len(segments)) * max(
        8, int(horizon) + 1
    )
    for _ in range(max_events):
        if now >= horizon - _EPS:
            break
        rates = current_rates()
        backlogged = q > _EPS
        # Promotion fixed point: an idle session whose input rate
        # exceeds its allocation becomes backlogged immediately, which
        # may in turn starve another idle session; iterate (at most N
        # promotions are possible).
        while True:
            allocation = gps_rate_allocation(
                backlogged, rates, phi_arr, rate
            )
            drift = rates - allocation
            promote = (~backlogged) & (drift > _EPS)
            if not promote.any():
                break
            backlogged = backlogged | promote
        # Next queue-emptying event.
        empty_dt = np.inf
        for i in range(num):
            if q[i] > _EPS and drift[i] < -_EPS:
                empty_dt = min(empty_dt, q[i] / (-drift[i]))
        # Next input breakpoint.
        if segment_index + 1 < len(segments):
            breakpoint_dt = segments[segment_index + 1].start_time - now
        else:
            breakpoint_dt = np.inf
        dt = min(empty_dt, breakpoint_dt, horizon - now)
        if dt <= _EPS:
            dt = min(breakpoint_dt, horizon - now)
            if dt <= _EPS:
                break
        q = np.clip(q + drift * dt, 0.0, None)
        now += dt
        if (
            segment_index + 1 < len(segments)
            and abs(now - segments[segment_index + 1].start_time) < 1e-9
        ):
            segment_index += 1
            bursts = segments[segment_index].bursts
            if bursts is not None:
                q += np.asarray(bursts, dtype=float)
        times.append(now)
        backlog_rows.append(q.copy())
    return FluidTrajectory(
        times=np.asarray(times), backlog=np.vstack(backlog_rows)
    )
