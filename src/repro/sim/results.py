"""The unified simulation-result protocol.

Every simulator in :mod:`repro.sim` returns a result object of its own
shape (fluid traces, packet journeys, network egress maps, ...), but
all of them expose the same two-method protocol:

* ``summary()`` — a small JSON-serializable dict of scalar facts about
  the run (kind, sizes, totals, utilization);
* ``to_dict()`` — the full JSON-serializable dump, summary plus
  traces/records.

``repro simulate --json`` and the checkpointing machinery consume the
protocol rather than the concrete classes, so new simulators plug into
the CLI and the supervised runner by implementing these two methods.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["SimResult", "to_jsonable"]


@runtime_checkable
class SimResult(Protocol):
    """Structural type of every simulation result class."""

    def summary(self) -> dict[str, Any]:
        """A small JSON-serializable dict of scalar facts."""
        ...

    def to_dict(self) -> dict[str, Any]:
        """The full JSON-serializable dump (summary plus traces)."""
        ...


def to_jsonable(value: Any) -> Any:
    """Convert numpy containers/scalars to plain JSON types.

    Dicts and sequences are converted recursively; non-string dict keys
    are stringified (tuple keys become ``"a/b"``) so the result always
    survives ``json.dumps``.
    """
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)
