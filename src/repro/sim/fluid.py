"""Discrete-time fluid GPS server simulator.

The paper's GPS server is a fluid device: in every instant, backlogged
sessions share the server in proportion to their weights ``phi_i``
(eq. 1), and capacity freed by sessions that empty is redistributed to
the rest.  This module simulates that device on a slotted time axis:
arrivals for slot ``t`` are available at the start of the slot and the
slot's capacity is allocated by exact proportional *water-filling*
(:func:`gps_slot_allocation`) — the fixed point of the GPS sharing rule
within the slot.

The server is a stateful stepper (so it can sit inside a multi-node
network simulation) with a batch :meth:`FluidGPSServer.run` convenience
returning a :class:`GPSSimResult` with per-session served/backlog
traces and the paper's delay process ``D_i(t)`` (the time for the
session-``i`` backlog present at ``t`` to clear).

The water-filling itself is implemented once, as a *batched* kernel
over stacked ``(B, N)`` work matrices (:func:`batch_gps_slot_allocation`);
the scalar server is the ``B = 1`` slice of that kernel, so the batched
engine in :mod:`repro.sim.batch` is bit-for-bit identical to stepping
this server trial by trial.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = [
    "gps_slot_allocation",
    "batch_gps_slot_allocation",
    "busy_gps_slot_allocation",
    "FluidGPSServer",
    "GPSSimResult",
    "clearing_delays",
]

_EPS = 1e-12


def _row_sum(values: np.ndarray) -> np.ndarray:
    """Strictly sequential (left-to-right) row sums of a ``(B, N)`` array.

    ``np.sum`` uses pairwise summation, whose grouping — and therefore
    rounding — depends on *where* entries sit in the row: interleaving
    exact zeros between the non-zero entries changes the result by an
    ulp or two.  A sequential sum is invariant to exact-zero entries
    (``x + 0.0 == x`` for every finite non-negative ``x``), which is
    the property the busy-set hot path rests on: summing a gathered
    slice of the non-zero entries is *bit-for-bit* the sum of the full
    row with idle zeros in place.  ``np.cumsum`` is contractually
    sequential (every prefix is exposed), so its last column is exactly
    that left-to-right sum.
    """
    if values.shape[1] == 0:
        return np.zeros(values.shape[0])
    return np.cumsum(values, axis=1)[:, -1]


def _batch_water_fill(
    work: np.ndarray, phis: np.ndarray, capacity: np.ndarray
) -> np.ndarray:
    """GPS water-filling over a batch of independent trials.

    ``work`` is ``(B, N)`` available work, ``phis`` a shared ``(N,)``
    weight vector, ``capacity`` the ``(B,)`` per-trial slot capacities.
    All inputs must already be validated, float64 and C-contiguous —
    this is the hot kernel and performs no checks or copies.

    Every floating-point operation applied to row ``b`` is independent
    of the other rows (elementwise arithmetic plus row-wise
    reductions), so the result for each row is bit-for-bit the result
    of running the kernel on that row alone.  All row reductions are
    strictly sequential (:func:`_row_sum`), so the result is also
    invariant to dropping (or inserting) sessions whose work is exactly
    zero — the contract :func:`busy_gps_slot_allocation` exposes.
    """
    served = np.zeros_like(work)
    remaining = capacity.astype(float, copy=True)
    active = work > _EPS
    while True:
        live = (remaining > _EPS) & active.any(axis=1)
        if not live.any():
            break
        total_phi = _row_sum(np.where(active, phis, 0.0))
        # Inactive-only rows would divide by zero; their shares are
        # masked out, the guard merely keeps the arithmetic finite.
        denom = np.where(total_phi > 0.0, total_phi, 1.0)
        shares = np.where(
            active, remaining[:, None] * phis / denom[:, None], 0.0
        )
        deficit = work - served
        finishing = active & (deficit <= shares + _EPS) & live[:, None]
        granting = finishing.any(axis=1)
        if granting.any():
            # Fully serve the finishing sessions of granting rows and
            # redistribute their surplus on the next round.
            grants = np.where(finishing, deficit, 0.0)
            served += grants
            remaining = np.where(
                granting, remaining - _row_sum(grants), remaining
            )
            active &= ~finishing
        flat = live & ~granting
        if flat.any():
            # Rows whose active sessions all absorb their full share:
            # spend the rest of the capacity proportionally and stop.
            served = np.where(
                flat[:, None] & active, served + shares, served
            )
            remaining = np.where(flat, 0.0, remaining)
    return served


def gps_slot_allocation(
    work: np.ndarray, phis: np.ndarray, capacity: float
) -> np.ndarray:
    """Allocate one slot's capacity among sessions GPS-fashion.

    ``work[i]`` is the session's available work (backlog plus this
    slot's arrivals).  Water-filling: capacity is offered in proportion
    to the weights of still-active sessions; sessions whose work is
    below their share are fully served and their surplus is
    redistributed, iterating until the remaining sessions absorb their
    full proportional shares.  Terminates in at most ``N`` rounds.

    Returns the per-session service amounts; their total equals
    ``min(capacity, total work)`` (work conservation).
    """
    work_arr = np.ascontiguousarray(work, dtype=float)
    phi_arr = np.ascontiguousarray(phis, dtype=float)
    if work_arr.shape != phi_arr.shape:
        raise ValidationError("work and phis must have matching shapes")
    if np.any(work_arr < -_EPS):
        raise ValidationError("work amounts must be non-negative")
    return _batch_water_fill(
        work_arr[None, :], phi_arr, np.array([float(capacity)])
    )[0]


def batch_gps_slot_allocation(
    work: np.ndarray, phis: np.ndarray, capacity
) -> np.ndarray:
    """Vectorized :func:`gps_slot_allocation` over a ``(B, N)`` batch.

    ``work[b]`` is trial ``b``'s available work, ``phis`` the shared
    weight vector and ``capacity`` either a scalar (same for every
    trial) or a ``(B,)`` array.  Row ``b`` of the result equals
    ``gps_slot_allocation(work[b], phis, capacity[b])`` bit for bit.
    """
    work_arr = np.ascontiguousarray(work, dtype=float)
    phi_arr = np.ascontiguousarray(phis, dtype=float)
    if work_arr.ndim != 2:
        raise ValidationError(
            f"work must be 2-D (trials x sessions), got {work_arr.shape}"
        )
    if phi_arr.shape != (work_arr.shape[1],):
        raise ValidationError(
            f"phis must have shape ({work_arr.shape[1]},), got "
            f"{phi_arr.shape}"
        )
    if np.any(work_arr < -_EPS):
        raise ValidationError("work amounts must be non-negative")
    caps = np.broadcast_to(
        np.asarray(capacity, dtype=float), (work_arr.shape[0],)
    ).copy()
    return _batch_water_fill(work_arr, phi_arr, caps)


def busy_gps_slot_allocation(
    work: np.ndarray, phis: np.ndarray, capacity: float
) -> np.ndarray:
    """Water-fill one slot over a gathered *busy* slice (hot path).

    ``work`` and ``phis`` are the compressed vectors of the sessions
    that can possibly receive service this slot (everything with
    non-zero backlog or pending arrivals), gathered in ascending
    session order.  Sessions left out must have exactly zero work:
    because every reduction in :func:`_batch_water_fill` is strictly
    sequential (:func:`_row_sum`), the returned allocation is
    *bit-for-bit* the slice of the dense allocation over the full
    session vector — the streaming engine's busy-set path and the
    offline dense path are ``np.array_equal``, not merely close.

    Performs no validation or copies; inputs must be float64 and
    C-contiguous.  This is the kernel entry point shared by
    :class:`repro.online.engine.StreamingGPSServer` (gathered slices)
    and the offline servers (the full vector is the degenerate
    "everything is busy" slice).
    """
    return _batch_water_fill(
        work[None, :], phis, np.array([float(capacity)])
    )[0]


@dataclass(frozen=True)
class GPSSimResult:
    """Batch simulation traces for a fluid GPS server.

    All arrays have shape ``(num_sessions, num_slots)``.

    Attributes
    ----------
    arrivals:
        Per-slot arrivals fed to the server.
    served:
        Per-slot service received by each session.
    backlog:
        End-of-slot backlog of each session.
    rate:
        The server rate (capacity per slot).
    phis:
        The GPS weights.
    """

    arrivals: np.ndarray
    served: np.ndarray
    backlog: np.ndarray
    rate: float
    phis: tuple[float, ...]
    capacities: np.ndarray | None = None

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self.arrivals.shape[0]

    @property
    def num_slots(self) -> int:
        """Number of simulated slots."""
        return self.arrivals.shape[1]

    def total_backlog(self) -> np.ndarray:
        """System backlog per slot (sum over sessions).

        Summed sequentially over sessions (not pairwise) so the value
        is bit-identical to the streaming engine's busy-set total: a
        sequential sum is invariant to the exact zeros contributed by
        idle sessions, a pairwise sum is not.
        """
        if self.backlog.shape[0] == 0:
            return np.zeros(self.backlog.shape[1])
        return np.cumsum(self.backlog, axis=0)[-1]

    def effective_capacities(self) -> np.ndarray:
        """Per-slot server capacity actually offered.

        Equals ``rate`` everywhere for an unfaulted run; under fault
        injection it reflects the degraded/outage windows.
        """
        if self.capacities is not None:
            return self.capacities
        return np.full(self.num_slots, self.rate)

    def utilization(self) -> float:
        """Fraction of offered server capacity actually used."""
        offered = float(self.effective_capacities().sum())
        if offered <= 0.0:
            return 0.0
        return float(self.served.sum()) / offered

    def session_delays(self, session: int) -> np.ndarray:
        """The delay process ``D_i(t)`` in slots, for each slot ``t``.

        ``D_i(t)`` is the time until the backlog present at the end of
        slot ``t`` has been completely served (FCFS within the session)
        — the quantity bounded by the delay theorems.  Slots whose
        backlog never clears within the simulated horizon are reported
        as ``nan`` and should be excluded (or the horizon extended).
        """
        cumulative_arrivals = np.cumsum(self.arrivals[session])
        cumulative_service = np.cumsum(self.served[session])
        return clearing_delays(cumulative_arrivals, cumulative_service)

    def busy_fraction(self, session: int) -> float:
        """Fraction of slots in which the session is backlogged."""
        return float(np.mean(self.backlog[session] > _EPS))

    # ------------------------------------------------------------------
    # unified result protocol (repro.sim.results.SimResult)
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-serializable scalar summary of the run."""
        return {
            "kind": "fluid_gps",
            "num_sessions": self.num_sessions,
            "num_slots": self.num_slots,
            "rate": self.rate,
            "phis": list(self.phis),
            "utilization": self.utilization(),
            "total_arrived": float(self.arrivals.sum()),
            "total_served": float(self.served.sum()),
            "final_backlog": [float(b) for b in self.backlog[:, -1]],
            "max_total_backlog": float(self.total_backlog().max()),
        }

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-serializable dump: summary plus all traces."""
        payload = self.summary()
        payload["arrivals"] = self.arrivals.tolist()
        payload["served"] = self.served.tolist()
        payload["backlog"] = self.backlog.tolist()
        if self.capacities is not None:
            payload["capacities"] = self.capacities.tolist()
        return payload


def clearing_delays(
    cumulative_arrivals: np.ndarray, cumulative_service: np.ndarray
) -> np.ndarray:
    """Slots until the work arrived by each slot is fully served.

    ``delays[t] = min{d >= 0 : S(t + d) >= A(t)}`` with ``A``/``S`` the
    cumulative arrival/service curves; ``nan`` when the horizon ends
    first.  Two-pointer scan, O(T).
    """
    arr = np.asarray(cumulative_arrivals, dtype=float)
    srv = np.asarray(cumulative_service, dtype=float)
    if arr.shape != srv.shape:
        raise ValidationError("cumulative curves must have matching shapes")
    horizon = arr.size
    delays = np.full(horizon, np.nan)
    pointer = 0
    for t in range(horizon):
        # Scale-aware tolerance: cumulative sums accumulate rounding
        # error proportional to their magnitude; without it a few
        # nano-units of phantom backlog can inflate a delay by many
        # slots (until the next real arrival pushes the curve up).
        target = arr[t] - 1e-9 * (1.0 + abs(arr[t]))
        if pointer < t:
            pointer = t
        while pointer < horizon and srv[pointer] < target:
            pointer += 1
        if pointer < horizon:
            delays[t] = pointer - t
    return delays


class FluidGPSServer:
    """Stateful slot-stepped fluid GPS server.

    Preferred construction is keyword-only::

        FluidGPSServer(rate=1.0, phis=[2.0, 1.0])
        FluidGPSServer(scenario=scenario)       # repro.scenario.Scenario

    The historical positional form ``FluidGPSServer(rate, phis)`` still
    works but emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    rate:
        Server capacity per slot.
    phis:
        GPS weights, one per session.
    scenario:
        A :class:`repro.scenario.Scenario` (or any object exposing
        ``rate`` and ``phis``); mutually exclusive with the explicit
        parameters.

    All argument validation happens here, at construction time; the
    per-slot stepping then runs on a fast no-copy path for contiguous
    float64 arrays.
    """

    def __init__(
        self,
        *args,
        rate: float | None = None,
        phis=None,
        scenario=None,
    ) -> None:
        if args:
            warnings.warn(
                "positional FluidGPSServer(rate, phis) is deprecated; "
                "use FluidGPSServer(rate=..., phis=...) or "
                "FluidGPSServer(scenario=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2 or (rate is not None or phis is not None):
                raise TypeError(
                    "FluidGPSServer takes at most the two legacy "
                    "positional arguments (rate, phis)"
                )
            rate = args[0]
            if len(args) == 2:
                phis = args[1]
        if scenario is not None:
            if rate is not None or phis is not None:
                raise ValidationError(
                    "pass either scenario= or explicit rate=/phis=, "
                    "not both"
                )
            rate = scenario.rate
            phis = scenario.phis
        if rate is None or phis is None:
            raise ValidationError(
                "FluidGPSServer requires rate= and phis= (or scenario=)"
            )
        check_positive("rate", rate)
        self._phis = np.ascontiguousarray(
            check_weights("phis", list(phis)), dtype=float
        )
        self._rate = float(rate)
        self._backlog = np.zeros(self._phis.size)

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Server capacity per slot."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self._phis.size

    @property
    def backlog(self) -> np.ndarray:
        """Current per-session backlog (copy)."""
        return self._backlog.copy()

    def reset(self) -> None:
        """Empty all queues."""
        self._backlog[:] = 0.0

    def _step_fast(self, arrivals: np.ndarray, capacity: float) -> np.ndarray:
        """One slot on the validated hot path.

        ``arrivals`` must be a float64 ``(N,)`` array of non-negative
        entries and ``capacity`` a finite non-negative float — the
        checks were hoisted to the callers (:meth:`step` validates per
        call, :meth:`run` validates the whole matrix once).
        """
        work = self._backlog + arrivals
        served = _batch_water_fill(
            work[None, :], self._phis, np.array([capacity])
        )[0]
        self._backlog = np.clip(work - served, 0.0, None)
        return served

    def step(self, arrivals, *, capacity: float | None = None) -> np.ndarray:
        """Advance one slot; returns per-session service amounts.

        ``capacity`` overrides the server rate for this slot only — the
        hook used by fault injection to model degraded or failed servers
        (``capacity=0`` is a full outage; the backlog simply accrues).
        """
        arr = np.ascontiguousarray(arrivals, dtype=float)
        if arr.shape != self._backlog.shape:
            raise ValidationError(
                f"expected {self._backlog.size} arrival entries, got "
                f"shape {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ValidationError("arrivals must be non-negative")
        if capacity is None:
            capacity = self._rate
        elif not np.isfinite(capacity) or capacity < 0.0:
            raise ValidationError(
                f"capacity must be finite and non-negative, got {capacity}"
            )
        return self._step_fast(arr, float(capacity))

    def run(
        self,
        arrivals: np.ndarray,
        *,
        capacities: np.ndarray | None = None,
    ) -> GPSSimResult:
        """Simulate a whole arrival matrix ``(num_sessions, num_slots)``.

        The server state is reset first, so ``run`` is reproducible.
        ``capacities`` (length ``num_slots``) overrides the per-slot
        server capacity, e.g. a degraded-rate window produced by
        :meth:`repro.faults.FaultSchedule.node_capacities`.

        Validation happens once, up front, on the whole matrix (no
        per-slot re-checks); an already-contiguous float64 input is
        used as-is, without a copy.
        """
        arr = np.ascontiguousarray(arrivals, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != self.num_sessions:
            raise ValidationError(
                f"arrivals must have shape ({self.num_sessions}, T), got "
                f"{arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ValidationError("arrivals must be non-negative")
        self.reset()
        num_slots = arr.shape[1]
        caps = None
        if capacities is not None:
            caps = np.ascontiguousarray(capacities, dtype=float)
            if caps.shape != (num_slots,):
                raise ValidationError(
                    f"capacities must have shape ({num_slots},), got "
                    f"{caps.shape}"
                )
            if np.any(~np.isfinite(caps)) or np.any(caps < 0.0):
                raise ValidationError(
                    "capacities must be finite and non-negative"
                )
        served = np.zeros_like(arr)
        backlog = np.zeros_like(arr)
        for t in range(num_slots):
            capacity = self._rate if caps is None else caps[t]
            served[:, t] = self._step_fast(arr[:, t], float(capacity))
            backlog[:, t] = self._backlog
        return GPSSimResult(
            arrivals=arr,
            served=served,
            backlog=backlog,
            rate=self._rate,
            phis=tuple(self._phis.tolist()),
            capacities=caps,
        )
