"""Discrete-time fluid GPS server simulator.

The paper's GPS server is a fluid device: in every instant, backlogged
sessions share the server in proportion to their weights ``phi_i``
(eq. 1), and capacity freed by sessions that empty is redistributed to
the rest.  This module simulates that device on a slotted time axis:
arrivals for slot ``t`` are available at the start of the slot and the
slot's capacity is allocated by exact proportional *water-filling*
(:func:`gps_slot_allocation`) — the fixed point of the GPS sharing rule
within the slot.

The server is a stateful stepper (so it can sit inside a multi-node
network simulation) with a batch :meth:`FluidGPSServer.run` convenience
returning a :class:`GPSSimResult` with per-session served/backlog
traces and the paper's delay process ``D_i(t)`` (the time for the
session-``i`` backlog present at ``t`` to clear).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = [
    "gps_slot_allocation",
    "FluidGPSServer",
    "GPSSimResult",
    "clearing_delays",
]

_EPS = 1e-12


def gps_slot_allocation(
    work: np.ndarray, phis: np.ndarray, capacity: float
) -> np.ndarray:
    """Allocate one slot's capacity among sessions GPS-fashion.

    ``work[i]`` is the session's available work (backlog plus this
    slot's arrivals).  Water-filling: capacity is offered in proportion
    to the weights of still-active sessions; sessions whose work is
    below their share are fully served and their surplus is
    redistributed, iterating until the remaining sessions absorb their
    full proportional shares.  Terminates in at most ``N`` rounds.

    Returns the per-session service amounts; their total equals
    ``min(capacity, total work)`` (work conservation).
    """
    work_arr = np.asarray(work, dtype=float)
    phi_arr = np.asarray(phis, dtype=float)
    if work_arr.shape != phi_arr.shape:
        raise ValidationError("work and phis must have matching shapes")
    if np.any(work_arr < -_EPS):
        raise ValidationError("work amounts must be non-negative")
    served = np.zeros_like(work_arr)
    remaining_capacity = float(capacity)
    active = work_arr > _EPS
    while remaining_capacity > _EPS and active.any():
        total_phi = phi_arr[active].sum()
        shares = np.zeros_like(work_arr)
        shares[active] = remaining_capacity * phi_arr[active] / total_phi
        deficit = work_arr - served
        finishing = active & (deficit <= shares + _EPS)
        if finishing.any():
            # Fully serve the finishing sessions and redistribute.
            grant = deficit[finishing]
            served[finishing] += grant
            remaining_capacity -= float(grant.sum())
            active &= ~finishing
        else:
            served[active] += shares[active]
            remaining_capacity = 0.0
    return served


@dataclass(frozen=True)
class GPSSimResult:
    """Batch simulation traces for a fluid GPS server.

    All arrays have shape ``(num_sessions, num_slots)``.

    Attributes
    ----------
    arrivals:
        Per-slot arrivals fed to the server.
    served:
        Per-slot service received by each session.
    backlog:
        End-of-slot backlog of each session.
    rate:
        The server rate (capacity per slot).
    phis:
        The GPS weights.
    """

    arrivals: np.ndarray
    served: np.ndarray
    backlog: np.ndarray
    rate: float
    phis: tuple[float, ...]
    capacities: np.ndarray | None = None

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self.arrivals.shape[0]

    @property
    def num_slots(self) -> int:
        """Number of simulated slots."""
        return self.arrivals.shape[1]

    def total_backlog(self) -> np.ndarray:
        """System backlog per slot (sum over sessions)."""
        return self.backlog.sum(axis=0)

    def effective_capacities(self) -> np.ndarray:
        """Per-slot server capacity actually offered.

        Equals ``rate`` everywhere for an unfaulted run; under fault
        injection it reflects the degraded/outage windows.
        """
        if self.capacities is not None:
            return self.capacities
        return np.full(self.num_slots, self.rate)

    def utilization(self) -> float:
        """Fraction of offered server capacity actually used."""
        offered = float(self.effective_capacities().sum())
        if offered <= 0.0:
            return 0.0
        return float(self.served.sum()) / offered

    def session_delays(self, session: int) -> np.ndarray:
        """The delay process ``D_i(t)`` in slots, for each slot ``t``.

        ``D_i(t)`` is the time until the backlog present at the end of
        slot ``t`` has been completely served (FCFS within the session)
        — the quantity bounded by the delay theorems.  Slots whose
        backlog never clears within the simulated horizon are reported
        as ``nan`` and should be excluded (or the horizon extended).
        """
        cumulative_arrivals = np.cumsum(self.arrivals[session])
        cumulative_service = np.cumsum(self.served[session])
        return clearing_delays(cumulative_arrivals, cumulative_service)

    def busy_fraction(self, session: int) -> float:
        """Fraction of slots in which the session is backlogged."""
        return float(np.mean(self.backlog[session] > _EPS))


def clearing_delays(
    cumulative_arrivals: np.ndarray, cumulative_service: np.ndarray
) -> np.ndarray:
    """Slots until the work arrived by each slot is fully served.

    ``delays[t] = min{d >= 0 : S(t + d) >= A(t)}`` with ``A``/``S`` the
    cumulative arrival/service curves; ``nan`` when the horizon ends
    first.  Two-pointer scan, O(T).
    """
    arr = np.asarray(cumulative_arrivals, dtype=float)
    srv = np.asarray(cumulative_service, dtype=float)
    if arr.shape != srv.shape:
        raise ValidationError("cumulative curves must have matching shapes")
    horizon = arr.size
    delays = np.full(horizon, np.nan)
    pointer = 0
    for t in range(horizon):
        # Scale-aware tolerance: cumulative sums accumulate rounding
        # error proportional to their magnitude; without it a few
        # nano-units of phantom backlog can inflate a delay by many
        # slots (until the next real arrival pushes the curve up).
        target = arr[t] - 1e-9 * (1.0 + abs(arr[t]))
        if pointer < t:
            pointer = t
        while pointer < horizon and srv[pointer] < target:
            pointer += 1
        if pointer < horizon:
            delays[t] = pointer - t
    return delays


class FluidGPSServer:
    """Stateful slot-stepped fluid GPS server.

    Parameters
    ----------
    rate:
        Server capacity per slot.
    phis:
        GPS weights, one per session.
    """

    def __init__(self, rate: float, phis) -> None:
        check_positive("rate", rate)
        self._phis = np.asarray(check_weights("phis", list(phis)))
        self._rate = float(rate)
        self._backlog = np.zeros(self._phis.size)

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Server capacity per slot."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self._phis.size

    @property
    def backlog(self) -> np.ndarray:
        """Current per-session backlog (copy)."""
        return self._backlog.copy()

    def reset(self) -> None:
        """Empty all queues."""
        self._backlog[:] = 0.0

    def step(self, arrivals, *, capacity: float | None = None) -> np.ndarray:
        """Advance one slot; returns per-session service amounts.

        ``capacity`` overrides the server rate for this slot only — the
        hook used by fault injection to model degraded or failed servers
        (``capacity=0`` is a full outage; the backlog simply accrues).
        """
        arr = np.asarray(arrivals, dtype=float)
        if arr.shape != self._backlog.shape:
            raise ValidationError(
                f"expected {self._backlog.size} arrival entries, got "
                f"shape {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ValidationError("arrivals must be non-negative")
        if capacity is None:
            capacity = self._rate
        elif not np.isfinite(capacity) or capacity < 0.0:
            raise ValidationError(
                f"capacity must be finite and non-negative, got {capacity}"
            )
        work = self._backlog + arr
        served = gps_slot_allocation(work, self._phis, float(capacity))
        self._backlog = np.clip(work - served, 0.0, None)
        return served

    def run(
        self,
        arrivals: np.ndarray,
        *,
        capacities: np.ndarray | None = None,
    ) -> GPSSimResult:
        """Simulate a whole arrival matrix ``(num_sessions, num_slots)``.

        The server state is reset first, so ``run`` is reproducible.
        ``capacities`` (length ``num_slots``) overrides the per-slot
        server capacity, e.g. a degraded-rate window produced by
        :meth:`repro.faults.FaultSchedule.node_capacities`.
        """
        arr = np.asarray(arrivals, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != self.num_sessions:
            raise ValidationError(
                f"arrivals must have shape ({self.num_sessions}, T), got "
                f"{arr.shape}"
            )
        self.reset()
        num_slots = arr.shape[1]
        caps = None
        if capacities is not None:
            caps = np.asarray(capacities, dtype=float)
            if caps.shape != (num_slots,):
                raise ValidationError(
                    f"capacities must have shape ({num_slots},), got "
                    f"{caps.shape}"
                )
        served = np.zeros_like(arr)
        backlog = np.zeros_like(arr)
        for t in range(num_slots):
            capacity = None if caps is None else caps[t]
            served[:, t] = self.step(arr[:, t], capacity=capacity)
            backlog[:, t] = self._backlog
        return GPSSimResult(
            arrivals=arr,
            served=served,
            backlog=backlog,
            rate=self._rate,
            phis=tuple(self._phis.tolist()),
            capacities=caps,
        )
