"""Baseline scheduling disciplines for comparison against GPS.

The paper's discussion (Sections 1 and 7, following Clark/Shenker/Zhang
[CSZ92]) contrasts GPS's isolation with FCFS's statistical-multiplexing
gain and sketches hybrid class-based schemes.  These simulators provide
the comparison points:

* :class:`FCFSServer` — all sessions share one FIFO queue; no
  isolation, maximal multiplexing.
* :class:`StaticPriorityServer` — strict priority by session order.
* :class:`WeightedRoundRobinServer` — a quantum-based approximation of
  GPS whose fairness degrades with quantum size.

All share the slot-stepped interface of
:class:`repro.sim.fluid.FluidGPSServer` and return the same
:class:`GPSSimResult` structure (the ``phis`` field records the weights
or priorities used).
"""

from __future__ import annotations

import numpy as np

from repro.sim.fluid import GPSSimResult
from repro.utils.validation import check_positive, check_weights

from repro.errors import ValidationError

__all__ = [
    "FCFSServer",
    "StaticPriorityServer",
    "WeightedRoundRobinServer",
]

_EPS = 1e-12


class _SlotServer:
    """Shared batch-run plumbing for the slot-stepped baselines."""

    def __init__(self, rate: float, num_sessions: int) -> None:
        check_positive("rate", rate)
        if num_sessions <= 0:
            raise ValidationError("need at least one session")
        self._rate = float(rate)
        self._num_sessions = num_sessions

    @property
    def rate(self) -> float:
        """Server capacity per slot."""
        return self._rate

    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return self._num_sessions

    def reset(self) -> None:
        """Reset scheduler state; subclasses extend."""
        raise NotImplementedError

    def step(self, arrivals: np.ndarray) -> np.ndarray:
        """Advance one slot; subclasses implement."""
        raise NotImplementedError

    def _weights_record(self) -> tuple[float, ...]:
        return tuple([1.0] * self._num_sessions)

    def run(self, arrivals: np.ndarray) -> GPSSimResult:
        """Simulate a whole arrival matrix; see FluidGPSServer.run."""
        arr = np.asarray(arrivals, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != self._num_sessions:
            raise ValidationError(
                f"arrivals must have shape ({self._num_sessions}, T), "
                f"got {arr.shape}"
            )
        self.reset()
        served = np.zeros_like(arr)
        backlog = np.zeros_like(arr)
        for t in range(arr.shape[1]):
            served[:, t] = self.step(arr[:, t])
            backlog[:, t] = self._backlog_snapshot()
        return GPSSimResult(
            arrivals=arr,
            served=served,
            backlog=backlog,
            rate=self._rate,
            phis=self._weights_record(),
        )

    def _backlog_snapshot(self) -> np.ndarray:
        raise NotImplementedError


class FCFSServer(_SlotServer):
    """First-come-first-served across all sessions.

    Work is served strictly in arrival order; traffic arriving in the
    same slot is served in proportion to the amounts contributed (the
    fluid analogue of random packet interleaving within a slot).
    Implemented as a FIFO of (per-session amounts) batches.
    """

    def __init__(self, rate: float, num_sessions: int) -> None:
        super().__init__(rate, num_sessions)
        self._queue: list[np.ndarray] = []

    def reset(self) -> None:
        self._queue = []

    def step(self, arrivals: np.ndarray) -> np.ndarray:
        arr = np.asarray(arrivals, dtype=float)
        if float(arr.sum()) > _EPS:
            self._queue.append(arr.astype(float).copy())
        capacity = self._rate
        served = np.zeros(self._num_sessions)
        while self._queue and capacity > _EPS:
            batch = self._queue[0]
            batch_total = float(batch.sum())
            if batch_total <= capacity + _EPS:
                served += batch
                capacity -= batch_total
                self._queue.pop(0)
            else:
                fraction = capacity / batch_total
                grant = batch * fraction
                served += grant
                self._queue[0] = batch - grant
                capacity = 0.0
        return served

    def _backlog_snapshot(self) -> np.ndarray:
        if not self._queue:
            return np.zeros(self._num_sessions)
        return np.sum(self._queue, axis=0)


class StaticPriorityServer(_SlotServer):
    """Strict priority: lower session index preempts all higher ones."""

    def __init__(self, rate: float, num_sessions: int) -> None:
        super().__init__(rate, num_sessions)
        self._backlog = np.zeros(num_sessions)

    def reset(self) -> None:
        self._backlog = np.zeros(self._num_sessions)

    def step(self, arrivals: np.ndarray) -> np.ndarray:
        arr = np.asarray(arrivals, dtype=float)
        work = self._backlog + arr
        served = np.zeros_like(work)
        capacity = self._rate
        for i in range(self._num_sessions):
            grant = min(work[i], capacity)
            served[i] = grant
            capacity -= grant
            if capacity <= _EPS:
                break
        self._backlog = np.clip(work - served, 0.0, None)
        return served

    def _backlog_snapshot(self) -> np.ndarray:
        return self._backlog.copy()


class WeightedRoundRobinServer(_SlotServer):
    """Deficit-style weighted round robin with a configurable quantum.

    Each slot the scheduler cycles through sessions granting up to
    ``quantum * phi_i`` units per visit until the slot capacity is
    exhausted.  As ``quantum -> 0`` the allocation converges to the
    fluid GPS allocation; large quanta introduce the burstiness that
    motivates fair-queueing (used in the scheduler-comparison bench).
    """

    def __init__(self, rate: float, phis, *, quantum: float = 0.1) -> None:
        weights = check_weights("phis", list(phis))
        super().__init__(rate, len(weights))
        check_positive("quantum", quantum)
        self._phis = np.asarray(weights)
        self._quantum = float(quantum)
        self._backlog = np.zeros(len(weights))
        self._next_session = 0

    def reset(self) -> None:
        self._backlog = np.zeros(self._num_sessions)
        self._next_session = 0

    def _weights_record(self) -> tuple[float, ...]:
        return tuple(self._phis.tolist())

    def step(self, arrivals: np.ndarray) -> np.ndarray:
        arr = np.asarray(arrivals, dtype=float)
        work = self._backlog + arr
        served = np.zeros_like(work)
        capacity = self._rate
        idle_visits = 0
        position = self._next_session
        # Cycle until capacity is gone or a full idle round shows no
        # remaining work.
        while capacity > _EPS and idle_visits < self._num_sessions:
            deficit = work[position] - served[position]
            if deficit > _EPS:
                grant = min(
                    deficit, self._quantum * self._phis[position], capacity
                )
                served[position] += grant
                capacity -= grant
                idle_visits = 0
            else:
                idle_visits += 1
            position = (position + 1) % self._num_sessions
        self._next_session = position
        self._backlog = np.clip(work - served, 0.0, None)
        return served

    def _backlog_snapshot(self) -> np.ndarray:
        return self._backlog.copy()
