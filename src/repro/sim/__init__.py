"""Simulators: fluid GPS, packetized WFQ (PGPS), baseline schedulers,
multi-node networks and measurement utilities."""

from repro.sim.baselines import (
    FCFSServer,
    StaticPriorityServer,
    WeightedRoundRobinServer,
)
from repro.sim.batch import BatchFluidGPSServer, BatchGPSSimResult
from repro.sim.class_based import ClassBasedGPSServer
from repro.sim.decay import DecayFit, estimate_decay_rate
from repro.sim.fluid_exact import (
    FluidTrajectory,
    RateSegment,
    gps_rate_allocation as gps_rate_allocation_exact,
    simulate_exact_gps,
)
from repro.sim.fluid import (
    FluidGPSServer,
    GPSSimResult,
    batch_gps_slot_allocation,
    clearing_delays,
    gps_slot_allocation,
)
from repro.sim.measurements import (
    BoundComparison,
    busy_periods,
    compare_bound_to_samples,
    empirical_ccdf,
    tail_quantile,
)
from repro.sim.network_sim import FluidNetworkSimulator, NetworkSimResult
from repro.sim.packet import Packet, ScheduledPacket, WFQResult, WFQServer
from repro.sim.packet_network import (
    PacketNetworkResult,
    PacketNetworkSimulator,
)
from repro.sim.packet_baselines import (
    SCFQServer,
    TaggedPacket,
    TaggedResult,
    VirtualClockServer,
)
from repro.sim.packetize import (
    FixedSize,
    PacketSizeModel,
    TruncatedGeometricSize,
    UniformSize,
    packetize_trace,
    packetize_trace_model,
    packetize_traces,
    packetize_traces_model,
)
from repro.sim.results import SimResult, to_jsonable
from repro.sim.statistics import (
    BatchMeansEstimate,
    batch_means_tail,
    dominance_check,
)

__all__ = [
    "FCFSServer",
    "StaticPriorityServer",
    "WeightedRoundRobinServer",
    "FluidGPSServer",
    "GPSSimResult",
    "BatchFluidGPSServer",
    "BatchGPSSimResult",
    "SimResult",
    "to_jsonable",
    "clearing_delays",
    "gps_slot_allocation",
    "batch_gps_slot_allocation",
    "BoundComparison",
    "busy_periods",
    "compare_bound_to_samples",
    "empirical_ccdf",
    "tail_quantile",
    "FluidNetworkSimulator",
    "NetworkSimResult",
    "Packet",
    "ScheduledPacket",
    "WFQResult",
    "WFQServer",
    "packetize_trace",
    "packetize_trace_model",
    "packetize_traces",
    "packetize_traces_model",
    "FixedSize",
    "PacketSizeModel",
    "TruncatedGeometricSize",
    "UniformSize",
    "SCFQServer",
    "TaggedPacket",
    "TaggedResult",
    "VirtualClockServer",
    "BatchMeansEstimate",
    "batch_means_tail",
    "dominance_check",
    "FluidTrajectory",
    "RateSegment",
    "gps_rate_allocation_exact",
    "simulate_exact_gps",
    "DecayFit",
    "estimate_decay_rate",
    "ClassBasedGPSServer",
    "PacketNetworkResult",
    "PacketNetworkSimulator",
]
