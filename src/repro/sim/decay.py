"""Empirical tail decay-rate estimation.

The paper's conclusions call for a *lower* bound on the per-session
backlog decay rate to complement the upper bounds it proves (an
effective-bandwidth theory for GPS).  While the theory is future work,
simulation gives the empirical counterpart: fit the exponential decay
of the measured tail and compare it with the analytic decay.  A valid
upper bound's decay rate never exceeds the true one, so

    fitted_decay  >=  bound.decay_rate   (up to estimation noise)

is an end-to-end consistency check used by the validation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.measurements import empirical_ccdf

from repro.errors import ValidationError

__all__ = ["DecayFit", "estimate_decay_rate"]


@dataclass(frozen=True)
class DecayFit:
    """An exponential fit ``Pr{X >= x} ~ C e^{-decay x}`` of a tail.

    Attributes
    ----------
    decay_rate:
        The fitted exponential decay rate.
    log_prefactor:
        The fitted intercept ``ln C``.
    xs, log_ccdf:
        The points the regression used.
    residual:
        Root-mean-square residual of the fit in log space (a large
        value signals a non-exponential tail).
    """

    decay_rate: float
    log_prefactor: float
    xs: np.ndarray
    log_ccdf: np.ndarray
    residual: float

    def evaluate(self, x: float) -> float:
        """The fitted tail value at ``x``."""
        return float(
            np.exp(self.log_prefactor - self.decay_rate * x)
        )


def estimate_decay_rate(
    samples: np.ndarray,
    *,
    lower_quantile: float = 0.90,
    upper_probability: float = 1e-4,
    num_points: int = 30,
) -> DecayFit:
    """Fit the exponential decay of a sample tail by least squares.

    The regression runs over the tail region from the
    ``lower_quantile`` of the data down to empirical probabilities of
    ``upper_probability`` (deeper points are Monte-Carlo noise).

    Raises
    ------
    ValueError
        If the usable tail region contains fewer than 3 grid points
        with positive empirical mass (trace too short or tail too
        light to fit).
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 100:
        raise ValidationError(
            f"need at least 100 samples to fit a tail, got {arr.size}"
        )
    if not 0.0 < lower_quantile < 1.0:
        raise ValidationError(
            f"lower_quantile must be in (0, 1), got {lower_quantile}"
        )
    start = float(np.quantile(arr, lower_quantile))
    stop = float(arr.max())
    if stop <= start:
        raise ValidationError(
            "degenerate tail: the quantile equals the maximum"
        )
    xs = np.linspace(start, stop, num_points)
    ccdf = empirical_ccdf(arr, xs)
    usable = ccdf >= upper_probability
    if usable.sum() < 3:
        raise ValidationError(
            "not enough tail mass to fit; lower upper_probability or "
            "use a longer trace"
        )
    xs_fit = xs[usable]
    ys_fit = np.log(ccdf[usable])
    slope, intercept = np.polyfit(xs_fit, ys_fit, deg=1)
    predictions = intercept + slope * xs_fit
    residual = float(
        np.sqrt(np.mean((ys_fit - predictions) ** 2))
    )
    return DecayFit(
        decay_rate=float(-slope),
        log_prefactor=float(intercept),
        xs=xs_fit,
        log_ccdf=ys_fit,
        residual=residual,
    )
