"""Output analysis for the simulators: batch means and tail-probability
confidence intervals.

Comparing an analytic bound against one long correlated sample path
needs more care than a raw frequency: backlog processes are strongly
autocorrelated, so naive binomial confidence intervals are far too
optimistic.  The standard remedy is the method of batch means — split
the (post-warm-up) path into ``k`` long batches, treat the per-batch
tail frequencies as approximately i.i.d., and build a t-interval from
their spread.  The validation benches use this to decide whether an
apparent bound violation is statistically meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ValidationError

__all__ = ["BatchMeansEstimate", "batch_means_tail", "dominance_check"]


@dataclass(frozen=True)
class BatchMeansEstimate:
    """A tail-probability estimate with a confidence interval.

    Attributes
    ----------
    probability:
        The point estimate (overall frequency).
    lower, upper:
        The two-sided confidence interval from the batch means.
    num_batches:
        Batches used.
    """

    probability: float
    lower: float
    upper: float
    num_batches: int

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def batch_means_tail(
    samples: np.ndarray,
    threshold: float,
    *,
    num_batches: int = 20,
    confidence: float = 0.95,
) -> BatchMeansEstimate:
    """Estimate ``Pr{X >= threshold}`` with a batch-means interval.

    The samples are split into ``num_batches`` contiguous batches
    (dropping any remainder); the per-batch exceedance frequencies give
    the variance estimate for a Student-t interval.
    """
    arr = np.asarray(samples, dtype=float)
    if num_batches < 2:
        raise ValidationError(
            f"need at least 2 batches, got {num_batches}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    batch_size = arr.size // num_batches
    if batch_size < 1:
        raise ValidationError(
            f"too few samples ({arr.size}) for {num_batches} batches"
        )
    usable = arr[: batch_size * num_batches]
    batches = usable.reshape(num_batches, batch_size)
    frequencies = (batches >= threshold).mean(axis=1)
    mean = float(frequencies.mean())
    spread = float(frequencies.std(ddof=1)) / math.sqrt(num_batches)
    t_value = float(
        stats.t.ppf(0.5 + confidence / 2.0, df=num_batches - 1)
    )
    half_width = t_value * spread
    return BatchMeansEstimate(
        probability=mean,
        lower=max(0.0, mean - half_width),
        upper=min(1.0, mean + half_width),
        num_batches=num_batches,
    )


def dominance_check(
    samples: np.ndarray,
    bound_value: float,
    threshold: float,
    *,
    num_batches: int = 20,
    confidence: float = 0.95,
) -> bool:
    """Is the bound statistically consistent with the simulation?

    Returns True when the bound value is at least the *lower* end of
    the confidence interval of the empirical tail probability — i.e.
    the data does not reject the bound at the given confidence.  (A
    valid bound may of course exceed the upper end; that just means it
    is conservative.)
    """
    estimate = batch_means_tail(
        samples,
        threshold,
        num_batches=num_batches,
        confidence=confidence,
    )
    return bound_value >= estimate.lower
