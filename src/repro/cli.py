"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1`` / ``table2`` / ``figure3`` / ``figure4``
    Print the corresponding paper artifact.
``simulate``
    Monte-Carlo validation of the Section 6.3 bounds.
``all``
    Render every artifact, optionally into ``--output-dir``.
``analyze``
    Analyze a user network described in a JSON file.
``serve``
    Run the online streaming GPS engine over a JSONL event stream,
    optionally gated by the live E.B.B. admission controller and made
    crash-safe with ``--wal`` (write-ahead log + snapshots).
``recover``
    Rebuild an interrupted durable serving session from its WAL
    directory and optionally resume or drain it.
``cluster-recover``
    Rebuild a sharded serving fleet (``serve --shards``) from its
    cluster root: every shard's WAL is recovered to bit-identical
    state, and ``--drain`` finishes the session.
``scrub``
    Verify (and by default repair) WAL segment CRC frames and
    snapshot checksums in a durable directory — or, with
    ``--cluster``, every shard directory under a cluster root.
    Corrupt-but-snapshot-covered files are quarantined so recovery
    succeeds; corruption past coverage reports the exact
    unrecoverable sequence ranges and exits nonzero.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.experiments.runner import (
    render_figure3,
    render_figure4,
    render_simulation_check,
    render_supervised_simulation,
    render_table1,
    render_table2,
    run_all_resilient,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the artifacts of 'Statistical Analysis of "
            "Generalized Processor Sharing' (Zhang/Towsley/Kurose)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("table1", "print Table 1 (source parameters)"),
        ("table2", "print Table 2 (E.B.B. characterizations)"),
        ("figure3", "print the Figure 3 delay-bound series"),
        ("figure4", "print the Figure 4 improved series"),
    ):
        sub.add_parser(name, help=help_text)
    simulate = sub.add_parser(
        "simulate", help="Monte-Carlo check of the bounds"
    )
    simulate.add_argument(
        "--slots", type=int, default=60_000, help="simulated slots"
    )
    simulate.add_argument(
        "--seed", type=int, default=0, help="random seed"
    )
    simulate.add_argument(
        "--trials",
        type=int,
        default=1,
        help=(
            "independent Monte-Carlo trials; with more than one the "
            "run is supervised (per-trial seeds, retries, partial "
            "aggregation)"
        ),
    )
    simulate.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the supervised run on the first failed trial",
    )
    simulate.add_argument(
        "--checkpoint",
        default=None,
        help=(
            "JSON checkpoint file for the supervised run; completed "
            "trials are skipped on rerun"
        ),
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool size for the supervised run; > 1 fans "
            "trials out across processes (results stay identical to "
            "a serial run)"
        ),
    )
    simulate.add_argument(
        "--dispatch",
        choices=("serial", "process"),
        default=None,
        help=(
            "execution backend for the supervised run (default: "
            "'process' when --workers > 1, else 'serial'); the "
            "shared-memory batch backend is Scenario-API-only "
            "(SupervisedRunner(scenario=..., dispatch='shared-memory'))"
        ),
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit a JSON payload (the unified result protocol) "
            "instead of the text report"
        ),
    )
    everything = sub.add_parser(
        "all", help="render every artifact"
    )
    everything.add_argument(
        "--output-dir",
        default=None,
        help="also write artifacts as text files here",
    )
    analyze = sub.add_parser(
        "analyze",
        help="analyze a user network described in a JSON file",
    )
    analyze.add_argument("network", help="path to the network JSON")
    analyze.add_argument(
        "--theta-shrink",
        type=float,
        default=0.7,
        help="per-hop Chernoff fraction for the CRST recursion",
    )
    serve = sub.add_parser(
        "serve",
        help=(
            "run the online streaming GPS engine over a JSONL event "
            "stream (file or '-' for stdin)"
        ),
    )
    serve.add_argument(
        "stream",
        help="path to a JSONL event trace, or '-' to read stdin",
    )
    serve.add_argument(
        "--rate",
        type=float,
        required=True,
        help="server capacity per slot",
    )
    serve.add_argument(
        "--out",
        default="-",
        help=(
            "where per-event decision/backlog records go "
            "(default: stdout)"
        ),
    )
    serve.add_argument(
        "--packet",
        action="store_true",
        help=(
            "serve a packetized PGPS/WFQ stream instead of slotted "
            "fluid events: the input is a packet trace (one "
            "packet-trace-header line, then packet lines in arrival "
            "order) and the output carries packet-accepted / "
            "packet-served / gap-report records; composes with --wal "
            "and repro recover"
        ),
    )
    serve.add_argument(
        "--admission",
        action="store_true",
        help=(
            "gate joins through the live E.B.B. admission controller "
            "(join events must carry ebb and target declarations)"
        ),
    )
    serve.add_argument(
        "--no-diagnostics",
        action="store_true",
        help=(
            "skip the feasible-ordering / Theorem 11 diagnostics on "
            "admission decisions (faster for large populations)"
        ),
    )
    serve.add_argument(
        "--full-recompute",
        action="store_true",
        help=(
            "re-run the full admission scan on every request instead "
            "of the O(log N) incremental gate (reference path; "
            "decisions are identical)"
        ),
    )
    serve.add_argument(
        "--strict",
        action="store_true",
        help=(
            "abort on malformed lines or session errors instead of "
            "emitting error records and continuing"
        ),
    )
    serve.add_argument(
        "--drain-slots",
        type=int,
        default=100_000,
        help="maximum empty slots served during the closing drain",
    )
    serve.add_argument(
        "--max-errors",
        type=int,
        default=None,
        help=(
            "error budget: abort with a typed OverloadError after "
            "this many error records (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--heartbeat-every",
        type=int,
        default=None,
        help="emit a heartbeat health record every N ingested lines",
    )
    serve.add_argument(
        "--shed-backlog",
        type=float,
        default=None,
        help=(
            "high watermark on the engine backlog; above it arrival "
            "events are shed with typed records until the backlog "
            "recedes below --shed-resume"
        ),
    )
    serve.add_argument(
        "--shed-resume",
        type=float,
        default=None,
        help=(
            "low watermark ending a shedding episode (default: half "
            "of --shed-backlog)"
        ),
    )
    serve.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help=(
            "serve durably: write-ahead log every line into DIR "
            "before applying it and snapshot periodically; an "
            "existing DIR is recovered and resumed (its recorded "
            "configuration wins over the other flags)"
        ),
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve as a fault-tolerant fleet of N durable shards "
            "(requires --wal for the cluster root): ingest lines are "
            "routed by CRC32 session key, each shard keeps its own "
            "WAL + snapshots, and a supervisor restarts crashed "
            "shards with bounded backoff; an existing cluster root "
            "is recovered and resumed"
        ),
    )
    serve.add_argument(
        "--shard-buffer",
        type=int,
        default=100_000,
        help=(
            "with --shards: per-shard degraded-mode buffer high "
            "watermark; lines past it are shed with typed records "
            "while the shard is down"
        ),
    )
    serve.add_argument(
        "--shard-retries",
        type=int,
        default=8,
        help=(
            "with --shards: consecutive-crash budget per shard "
            "before the cluster fails with a typed ClusterError"
        ),
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=1_000,
        help="with --wal: snapshot the full state every N lines",
    )
    serve.add_argument(
        "--fsync",
        default="batch",
        help=(
            "with --wal: fsync policy — 'always' syncs every append "
            "(power-loss safe), 'batch' syncs periodically, 'never' "
            "leaves syncing to the OS (process-crash safe only), "
            "'group[:Nms]' coalesces appends in a window into one "
            "fdatasync, 'budget[:Nms]' bounds unsynced-append age "
            "(default 5ms), 'async' fsyncs on a background thread "
            "with bounded backpressure"
        ),
    )
    recover = sub.add_parser(
        "recover",
        help=(
            "rebuild a crashed durable serving session from its WAL "
            "directory (newest valid snapshot + log replay)"
        ),
    )
    recover.add_argument(
        "waldir",
        help="the --wal directory of the interrupted session",
    )
    recover.add_argument(
        "--out",
        default="-",
        help="where output records go (default: stdout)",
    )
    recover.add_argument(
        "--resume",
        default=None,
        metavar="STREAM",
        help=(
            "after recovery, continue ingesting this JSONL stream "
            "('-' for stdin) and drain at its end"
        ),
    )
    recover.add_argument(
        "--drain",
        action="store_true",
        help=(
            "after recovery, drain the backlog and emit the final "
            "summary (finishes the session)"
        ),
    )
    cluster_recover = sub.add_parser(
        "cluster-recover",
        help=(
            "rebuild a sharded serving fleet from its cluster root "
            "(every shard: newest valid snapshot + log replay)"
        ),
    )
    cluster_recover.add_argument(
        "root",
        help="the --wal cluster root of the interrupted fleet",
    )
    cluster_recover.add_argument(
        "--out",
        default="-",
        help="where output records go (default: stdout)",
    )
    cluster_recover.add_argument(
        "--resume",
        default=None,
        metavar="STREAM",
        help=(
            "after recovery, continue routing this JSONL stream "
            "('-' for stdin) across the fleet and drain at its end"
        ),
    )
    cluster_recover.add_argument(
        "--drain",
        action="store_true",
        help=(
            "after recovery, drain every shard and emit the final "
            "cluster summary (finishes the session)"
        ),
    )
    scrub = sub.add_parser(
        "scrub",
        help=(
            "verify and repair WAL/snapshot integrity in a durable "
            "directory (quarantines corrupt-but-covered files; "
            "reports exact unrecoverable sequence ranges)"
        ),
    )
    scrub.add_argument(
        "directory",
        help=(
            "a --wal directory (or, with --cluster, a cluster root "
            "whose shard-NNN subdirectories are each scrubbed)"
        ),
    )
    scrub.add_argument(
        "--cluster",
        action="store_true",
        help="scrub every shard-NNN directory under a cluster root",
    )
    scrub.add_argument(
        "--no-repair",
        action="store_true",
        help=(
            "report only: never move corrupt files to quarantine/ "
            "(the default repairs when snapshot coverage allows)"
        ),
    )
    scrub.add_argument(
        "--out",
        default="-",
        help="where scrub report records go (default: stdout)",
    )
    return parser


def _run_analyze(args) -> int:
    from repro.experiments.tables import format_table
    from repro.network.analysis import analyze_crst_network
    from repro.network.render import render_topology
    from repro.network.rpps_network import rpps_network_report
    from repro.network.serialization import load_network

    network = load_network(args.network)
    print(render_topology(network))
    print()
    if network.is_rpps():
        print("assignment: RPPS — Theorem 15 closed forms")
        reports = rpps_network_report(network, discrete=True)
        rows = [
            [
                name,
                report.guaranteed_rate,
                report.network_backlog.prefactor,
                report.network_backlog.decay_rate,
                report.end_to_end_delay.decay_rate,
            ]
            for name, report in reports.items()
        ]
        print(
            format_table(
                [
                    "session",
                    "g_net",
                    "backlog prefactor",
                    "backlog decay",
                    "delay decay",
                ],
                rows,
            )
        )
    else:
        print("assignment: general CRST — Theorem 13 recursion")
        reports = analyze_crst_network(
            network, theta_shrink=args.theta_shrink, discrete=True
        )
        rows = [
            [
                name,
                report.end_to_end_delay.prefactor,
                report.end_to_end_delay.decay_rate,
                report.network_backlog.decay_rate,
            ]
            for name, report in reports.items()
        ]
        print(
            format_table(
                [
                    "session",
                    "delay prefactor",
                    "delay decay",
                    "backlog decay",
                ],
                rows,
            )
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        print(render_table1())
    elif args.command == "table2":
        print(render_table2())
    elif args.command == "figure3":
        print(render_figure3())
    elif args.command == "figure4":
        print(render_figure4())
    elif args.command == "simulate":
        return _run_simulate(args)
    elif args.command == "all":
        artifacts, errors = run_all_resilient(args.output_dir)
        for name, text in artifacts.items():
            print(f"\n### {name}\n{text}")
        for name, exc in errors.items():
            print(
                f"error: artifact {name} failed to render: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
        return 1 if errors else 0
    elif args.command == "analyze":
        return _run_analyze(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "recover":
        return _run_recover(args)
    elif args.command == "cluster-recover":
        return _run_cluster_recover(args)
    elif args.command == "scrub":
        return _run_scrub(args)
    return 0


def _run_serve(args) -> int:
    """Drive the online engine from a JSONL stream (see ``repro serve``)."""
    import contextlib

    from repro.online.admission import AdmissionController
    from repro.online.engine import StreamingGPSServer
    from repro.online.service import OnlineService

    if args.drain_slots < 1:
        print("error: --drain-slots must be >= 1", file=sys.stderr)
        return 2
    if args.packet:
        incompatible = []
        if args.shards is not None:
            incompatible.append("--shards")
        if args.admission:
            incompatible.append("--admission")
        if args.shed_backlog is not None or args.shed_resume is not None:
            incompatible.append("--shed-backlog/--shed-resume")
        if incompatible:
            print(
                "error: --packet cannot be combined with "
                + ", ".join(incompatible),
                file=sys.stderr,
            )
            return 2
    if args.shards is not None:
        if args.shards < 1:
            print("error: --shards must be >= 1", file=sys.stderr)
            return 2
        if args.wal is None:
            print(
                "error: --shards requires --wal DIR (the cluster "
                "root holding the per-shard WAL directories)",
                file=sys.stderr,
            )
            return 2
    try:
        with contextlib.ExitStack() as stack:
            if args.stream == "-":
                lines = sys.stdin
            else:
                lines = stack.enter_context(
                    open(args.stream, "r", encoding="utf-8")
                )
            if args.out == "-":
                sink = sys.stdout
            else:
                sink = stack.enter_context(
                    open(args.out, "w", encoding="utf-8")
                )
            if args.shards is not None:
                from repro.online.cluster import ShardedOnlineCluster

                cluster, reports = ShardedOnlineCluster.open(
                    args.wal,
                    mode="attach",
                    num_shards=args.shards,
                    rate=args.rate,
                    sink=sink,
                    buffer_limit=args.shard_buffer,
                    max_retries=args.shard_retries,
                    cluster_heartbeat_every=args.heartbeat_every,
                    admission=args.admission,
                    diagnostics=not args.no_diagnostics,
                    incremental=not args.full_recompute,
                    strict=args.strict,
                    drain_slots=args.drain_slots,
                    max_errors=args.max_errors,
                    shed_backlog=args.shed_backlog,
                    shed_resume=args.shed_resume,
                    snapshot_every=args.snapshot_every,
                    fsync=args.fsync,
                )
                for report in reports:
                    sink.write(json.dumps(report.to_record()))
                    sink.write("\n")
                cluster_result = cluster.serve(lines)
                drained = all(
                    r.drained for r in cluster_result.results
                )
                errors = sum(
                    h.service.errors
                    for h in cluster.handles
                    if h.service is not None
                )
                return 0 if errors == 0 and drained else 1
            if args.wal is not None:
                from repro.online.durability import DurableOnlineService

                service, report = DurableOnlineService.open(
                    args.wal,
                    mode="attach",
                    rate=args.rate,
                    sink=sink,
                    packet=args.packet,
                    admission=args.admission,
                    diagnostics=not args.no_diagnostics,
                    incremental=not args.full_recompute,
                    strict=args.strict,
                    drain_slots=args.drain_slots,
                    max_errors=args.max_errors,
                    heartbeat_every=args.heartbeat_every,
                    shed_backlog=args.shed_backlog,
                    shed_resume=args.shed_resume,
                    snapshot_every=args.snapshot_every,
                    fsync=args.fsync,
                )
                sink.write(json.dumps(report.to_record()))
                sink.write("\n")
            elif args.packet:
                from repro.packet.serving import (
                    PacketOnlineService,
                    PacketStreamEngine,
                )

                service = PacketOnlineService(
                    PacketStreamEngine(rate=args.rate),
                    sink=sink,
                    strict=args.strict,
                    drain_slots=args.drain_slots,
                    max_errors=args.max_errors,
                    heartbeat_every=args.heartbeat_every,
                )
            else:
                admission = None
                if args.admission:
                    admission = AdmissionController(
                        rate=args.rate,
                        diagnostics=not args.no_diagnostics,
                        incremental=not args.full_recompute,
                    )
                engine = StreamingGPSServer(
                    rate=args.rate, admission=admission
                )
                service = OnlineService(
                    engine,
                    sink=sink,
                    strict=args.strict,
                    drain_slots=args.drain_slots,
                    max_errors=args.max_errors,
                    heartbeat_every=args.heartbeat_every,
                    shed_backlog=args.shed_backlog,
                    shed_resume=args.shed_resume,
                )
            result = service.serve(lines)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0 if service.errors == 0 and result.drained else 1


def _run_recover(args) -> int:
    """Rebuild a durable serving session (see ``repro recover``)."""
    import contextlib

    from repro.online.durability import DurableOnlineService

    try:
        with contextlib.ExitStack() as stack:
            if args.out == "-":
                sink = sys.stdout
            else:
                sink = stack.enter_context(
                    open(args.out, "w", encoding="utf-8")
                )
            service, report = DurableOnlineService.open(
                args.waldir, mode="recover", sink=sink
            )
            sink.write(json.dumps(report.to_record()))
            sink.write("\n")
            if args.resume is not None:
                if args.resume == "-":
                    lines = sys.stdin
                else:
                    lines = stack.enter_context(
                        open(args.resume, "r", encoding="utf-8")
                    )
                result = service.serve(lines)
                return 0 if result.drained else 1
            if args.drain:
                result = service.shutdown()
                return 0 if result.drained else 1
            # Report-only: take a snapshot so the recovered state is
            # durable without replaying the tail again next time.
            service.snapshot()
            service.wal.close()
            sink.flush()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_cluster_recover(args) -> int:
    """Rebuild a sharded fleet (see ``repro cluster-recover``)."""
    import contextlib

    from repro.online.cluster import ShardedOnlineCluster

    try:
        with contextlib.ExitStack() as stack:
            if args.out == "-":
                sink = sys.stdout
            else:
                sink = stack.enter_context(
                    open(args.out, "w", encoding="utf-8")
                )
            cluster, reports = ShardedOnlineCluster.open(
                args.root, mode="recover", sink=sink
            )
            for shard, report in enumerate(reports):
                record = report.to_record()
                record["shard"] = shard
                sink.write(json.dumps(record))
                sink.write("\n")
            if args.resume is not None:
                if args.resume == "-":
                    lines = stack.enter_context(
                        contextlib.nullcontext(sys.stdin)
                    )
                else:
                    lines = stack.enter_context(
                        open(args.resume, "r", encoding="utf-8")
                    )
                result = cluster.serve(lines)
                return (
                    0 if all(r.drained for r in result.results) else 1
                )
            if args.drain:
                result = cluster.shutdown()
                return (
                    0 if all(r.drained for r in result.results) else 1
                )
            # Report-only: snapshot each shard so the recovered state
            # is durable without replaying the tails again next time.
            for handle in cluster.handles:
                handle.service.snapshot()
                handle.service.wal.close()
            sink.flush()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_scrub(args) -> int:
    """Verify/repair durable directories (see ``repro scrub``)."""
    import contextlib
    from pathlib import Path

    from repro.online.cluster.shard import SHARD_DIR_PREFIX
    from repro.online.durability import scrub_directory

    root = Path(args.directory)
    if args.cluster:
        directories = sorted(
            path
            for path in root.glob(f"{SHARD_DIR_PREFIX}*")
            if path.is_dir()
        )
        if not directories:
            print(
                f"error: {root} holds no {SHARD_DIR_PREFIX}NNN shard "
                "directories",
                file=sys.stderr,
            )
            return 1
    else:
        directories = [root]
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 1
    exit_code = 0
    try:
        with contextlib.ExitStack() as stack:
            if args.out == "-":
                sink = sys.stdout
            else:
                sink = stack.enter_context(
                    open(args.out, "w", encoding="utf-8")
                )
            for directory in directories:
                report = scrub_directory(
                    directory, repair=not args.no_repair
                )
                sink.write(json.dumps(report.to_record()))
                sink.write("\n")
                if not report.ok:
                    exit_code = 1
            sink.flush()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return exit_code


def _run_simulate(args) -> int:
    if args.trials < 1:
        print("error: --trials must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.trials == 1:
        if args.json:
            return _simulate_single_json(args)
        print(
            render_simulation_check(
                num_slots=args.slots, seed=args.seed
            )
        )
        return 0
    try:
        report, manifest = render_supervised_simulation(
            num_trials=args.trials,
            num_slots=args.slots,
            base_seed=args.seed,
            checkpoint_path=args.checkpoint,
            fail_fast=args.fail_fast,
            max_workers=args.workers,
            dispatch=args.dispatch,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        from repro.experiments.runner import aggregate_frequencies
        from repro.sim.results import to_jsonable

        payload = {
            "kind": "supervised_simulation",
            "summary": manifest.summary(),
            "num_trials": manifest.num_trials,
            "base_seed": manifest.base_seed,
            "num_slots": args.slots,
            "completed": sorted(manifest.completed),
            "failed": manifest.failed,
            "skipped": manifest.skipped,
            "aggregate": aggregate_frequencies(manifest.results),
        }
        print(json.dumps(to_jsonable(payload), indent=2))
    else:
        print(report)
    return 1 if manifest.failed else 0


def _simulate_single_json(args) -> int:
    """One trial, emitted via the unified result protocol."""
    from repro.experiments.paper_example import simulate_example_network
    from repro.experiments.runner import delay_frequencies
    from repro.sim.results import to_jsonable

    try:
        simulation = simulate_example_network(
            1, args.slots, seed=args.seed
        )
        payload = simulation.summary()
        payload["delay_frequencies"] = delay_frequencies(simulation)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(to_jsonable(payload), indent=2))
    return 0
