"""The unified :class:`Scenario` entry point.

Historically every layer of the library assembled the same facts —
session names, GPS weights, server rate, traffic sources, horizon,
seed — through its own constructor signature: the fluid server took
``(rate, phis)``, the traffic generators a separate RNG, the bound
theorems a :class:`repro.core.gps.GPSConfig`, the fault layer yet
another argument list.  A :class:`Scenario` collects those facts once,
immutably, and is accepted everywhere:

* ``FluidGPSServer(scenario=s)`` / ``BatchFluidGPSServer(scenario=s)``
  — scalar and batched fluid simulation;
* ``s.simulate(trial=k)`` / ``s.simulate_batch(B)`` — one-call fluid
  runs with deterministic per-trial seeding (and fault injection when
  the scenario carries a :class:`repro.faults.FaultSchedule`);
* ``s.packetize(...)`` + ``s.packet_server()`` — the packet/WFQ side;
* ``s.gps_config()`` — the analysis-side object consumed by the bound
  theorems (requires E.B.B. characterizations);
* ``SupervisedRunner(scenario=s, num_trials=...)`` — supervised
  Monte-Carlo campaigns over the scenario;
* the topology builders in :mod:`repro.network.builders` — network
  families grown out of the scenario's sessions.

Determinism: trial ``k`` draws its arrivals from a generator seeded by
``SeedSequence(entropy=seed, spawn_key=(k,))``, so
``s.sample_arrivals(trial=k)`` equals trial ``k`` of
``s.sample_arrival_batch(B)`` bit for bit, for every ``B > k``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.traffic.sources import TrafficSource
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.core.ebb import EBB
    from repro.core.gps import GPSConfig
    from repro.faults.schedule import FaultSchedule
    from repro.sim.batch import BatchFluidGPSServer, BatchGPSSimResult
    from repro.sim.fluid import FluidGPSServer, GPSSimResult
    from repro.packet.trace import PacketTrace
    from repro.sim.packet import Packet, WFQResult, WFQServer
    from repro.sim.packetize import PacketSizeModel

__all__ = ["Scenario"]


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """One GPS simulation/analysis scenario, frozen.

    Attributes
    ----------
    rate:
        Server capacity per slot.
    phis:
        GPS weights, one per session.
    sources:
        One :class:`repro.traffic.TrafficSource` per session.
    horizon:
        Number of simulated slots per trial.
    seed:
        Base seed; per-trial generators derive from it.
    names:
        Session labels; defaults to ``session1..sessionN``.
    ebbs:
        Optional per-session E.B.B. characterizations — required by the
        analysis-side accessors (:meth:`gps_config`) and the topology
        builders.
    faults:
        Optional :class:`repro.faults.FaultSchedule` applied by
        :meth:`simulate` / :meth:`simulate_batch` (rate faults scale
        the server capacity under :attr:`node_name`; burst faults
        perturb per-session ingress).
    node_name:
        The label rate faults address this server by.
    """

    rate: float
    phis: tuple[float, ...]
    sources: tuple[TrafficSource, ...]
    horizon: int
    seed: int = 0
    names: tuple[str, ...] | None = None
    ebbs: tuple["EBB", ...] | None = None
    faults: "FaultSchedule | None" = None
    node_name: str = "server"

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        phis = tuple(float(p) for p in self.phis)
        if not phis:
            raise ValidationError("a Scenario needs at least one session")
        for k, phi in enumerate(phis):
            check_positive(f"phis[{k}]", phi)
        object.__setattr__(self, "phis", phis)
        sources = tuple(self.sources)
        if len(sources) != len(phis):
            raise ValidationError(
                f"got {len(phis)} weights but {len(sources)} sources"
            )
        for k, source in enumerate(sources):
            if not isinstance(source, TrafficSource):
                raise ValidationError(
                    f"sources[{k}] must be a TrafficSource, got "
                    f"{type(source).__name__}"
                )
        object.__setattr__(self, "sources", sources)
        if self.horizon <= 0:
            raise ValidationError(
                f"horizon must be positive, got {self.horizon}"
            )
        if self.names is None:
            object.__setattr__(
                self,
                "names",
                tuple(f"session{k + 1}" for k in range(len(phis))),
            )
        else:
            names = tuple(str(n) for n in self.names)
            if len(names) != len(phis):
                raise ValidationError(
                    f"got {len(phis)} sessions but {len(names)} names"
                )
            if len(set(names)) != len(names):
                raise ValidationError(
                    f"session names must be unique, got {list(names)}"
                )
            object.__setattr__(self, "names", names)
        if self.ebbs is not None:
            ebbs = tuple(self.ebbs)
            if len(ebbs) != len(phis):
                raise ValidationError(
                    f"got {len(phis)} sessions but {len(ebbs)} "
                    "E.B.B. characterizations"
                )
            object.__setattr__(self, "ebbs", ebbs)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_sessions(self) -> int:
        """Number of sessions."""
        return len(self.phis)

    @property
    def mean_rates(self) -> tuple[float, ...]:
        """Long-run mean arrival rate of each source."""
        return tuple(s.mean_rate for s in self.sources)

    @property
    def offered_load(self) -> float:
        """Total mean arrival rate over the server rate."""
        return sum(self.mean_rates) / self.rate

    def index_of(self, name: str) -> int:
        """Index of the session called ``name``."""
        assert self.names is not None
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"no session named {name!r}") from None

    def replace(self, **changes: Any) -> "Scenario":
        """A copy of the scenario with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # deterministic sampling
    # ------------------------------------------------------------------
    def trial_rng(self, trial: int = 0) -> np.random.Generator:
        """The per-trial random generator.

        Derived via ``SeedSequence`` spawn keys so different trials see
        statistically independent streams while trial ``k`` is
        reproducible regardless of how many trials surround it.
        """
        if trial < 0:
            raise ValidationError(f"trial must be >= 0, got {trial}")
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(trial,)
            )
        )

    def sample_arrivals(self, trial: int = 0) -> np.ndarray:
        """Sample one trial's ``(num_sessions, horizon)`` arrivals."""
        rng = self.trial_rng(trial)
        return np.vstack(
            [
                source.generate(self.horizon, rng)
                for source in self.sources
            ]
        )

    def sample_arrival_batch(
        self, num_trials: int, *, vectorized: bool = False
    ) -> np.ndarray:
        """Sample ``(num_trials, num_sessions, horizon)`` arrivals.

        With ``vectorized=False`` (default) each trial draws from its
        own :meth:`trial_rng` stream, so slice ``b`` equals
        ``sample_arrivals(trial=b)`` bit for bit — the property the
        batched-engine equivalence suite relies on.  With
        ``vectorized=True`` all trials are drawn from one generator via
        the sources' :meth:`~repro.traffic.TrafficSource.generate_batch`
        fast path — statistically equivalent, much faster, but laid out
        on a different stream.
        """
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if not vectorized:
            return np.stack(
                [self.sample_arrivals(trial=b) for b in range(num_trials)]
            )
        rng = self.trial_rng(0)
        batch = np.empty(
            (num_trials, self.num_sessions, self.horizon)
        )
        for k, source in enumerate(self.sources):
            batch[:, k, :] = source.generate_batch(
                num_trials, self.horizon, rng
            )
        return batch

    # ------------------------------------------------------------------
    # simulation entry points
    # ------------------------------------------------------------------
    def server(self) -> "FluidGPSServer":
        """A fresh scalar fluid GPS server for this scenario."""
        from repro.sim.fluid import FluidGPSServer

        return FluidGPSServer(scenario=self)

    def batch_server(self) -> "BatchFluidGPSServer":
        """A fresh batched fluid GPS server for this scenario."""
        from repro.sim.batch import BatchFluidGPSServer

        return BatchFluidGPSServer(scenario=self)

    def _fault_capacities(self) -> np.ndarray | None:
        if self.faults is None or len(self.faults) == 0:
            return None
        return self.faults.node_capacities(
            self.node_name, self.rate, self.horizon
        )

    def _fault_adjusted(self, arrivals: np.ndarray) -> np.ndarray:
        if self.faults is None or not self.faults.has_burst_faults:
            return arrivals
        assert self.names is not None
        adjusted = np.array(arrivals, dtype=float, copy=True)
        for k, name in enumerate(self.names):
            adjusted[k] = self.faults.adjusted_arrivals(
                name, adjusted[k]
            )
        return adjusted

    def simulate(self, trial: int = 0) -> "GPSSimResult":
        """Run one fluid-GPS trial (faults applied when scheduled)."""
        arrivals = self._fault_adjusted(self.sample_arrivals(trial))
        return self.server().run(
            arrivals, capacities=self._fault_capacities()
        )

    def simulate_batch(
        self, num_trials: int, *, vectorized_sampling: bool = False
    ) -> "BatchGPSSimResult":
        """Run ``num_trials`` fluid-GPS trials on the batched engine.

        With default sampling, ``result.trial(b)`` is bit-for-bit
        identical to :meth:`simulate` with ``trial=b``.
        """
        batch = self.sample_arrival_batch(
            num_trials, vectorized=vectorized_sampling
        )
        if self.faults is not None and self.faults.has_burst_faults:
            for b in range(num_trials):
                batch[b] = self._fault_adjusted(batch[b])
        return self.batch_server().run(
            batch, capacities=self._fault_capacities()
        )

    def trial_result(self, trial: int, seed: int) -> dict[str, Any]:
        """One supervised Monte-Carlo trial, as a JSON-friendly dict.

        This is the default ``trial_fn`` installed by
        ``SupervisedRunner(scenario=...)``.  The supervisor owns the
        seed derivation (retry attempts re-seed), so the arrivals come
        from ``seed`` directly rather than from :meth:`trial_rng`; the
        ``trial`` index is recorded for labeling only.  The method is a
        plain bound method of a picklable frozen dataclass, so it
        survives the ``max_workers`` process fan-out.
        """
        rng = np.random.default_rng(seed)
        arrivals = np.vstack(
            [
                source.generate(self.horizon, rng)
                for source in self.sources
            ]
        )
        result = self.server().run(
            self._fault_adjusted(arrivals),
            capacities=self._fault_capacities(),
        )
        payload = result.summary()
        payload["trial"] = int(trial)
        return payload

    # ------------------------------------------------------------------
    # online side
    # ------------------------------------------------------------------
    def to_event_stream(
        self,
        trial: int = 0,
        *,
        targets: "Sequence | None" = None,
        include_leaves: bool = False,
    ) -> list:
        """The scenario as an online event stream (slot-ordered).

        Emits one :class:`repro.online.events.SessionJoin` per session
        at time 0 (carrying the scenario's weights, E.B.B.
        characterizations when present, and the optional per-session
        QoS ``targets``), a :class:`repro.online.events.CapacityEvent`
        at every slot where the fault-injected capacity trace changes,
        and one :class:`repro.online.events.ArrivalEvent` per session
        and slot with non-zero (fault-adjusted) arrivals — the same
        sample path :meth:`simulate` feeds the offline engine.
        Replaying the stream through
        :class:`repro.online.engine.StreamingGPSServer` with
        ``horizon=self.horizon`` reproduces the offline run's backlog
        and service trajectories bit for bit.

        ``include_leaves=True`` appends a
        :class:`repro.online.events.SessionLeave` per session at the
        horizon (useful for churn-style downstream processing; leave
        it off when comparing trajectories against the offline run).
        """
        from repro.online.events import (
            ArrivalEvent,
            CapacityEvent,
            SessionJoin,
            SessionLeave,
        )

        assert self.names is not None
        if targets is not None and len(targets) != self.num_sessions:
            raise ValidationError(
                f"got {self.num_sessions} sessions but {len(targets)} "
                "QoS targets"
            )
        events: list = []
        for k, name in enumerate(self.names):
            events.append(
                SessionJoin(
                    time=0.0,
                    name=name,
                    phi=self.phis[k],
                    ebb=None if self.ebbs is None else self.ebbs[k],
                    target=None if targets is None else targets[k],
                )
            )
        capacities = self._fault_capacities()
        arrivals = self._fault_adjusted(self.sample_arrivals(trial))
        current_capacity = self.rate
        for t in range(self.horizon):
            if capacities is not None and capacities[t] != current_capacity:
                current_capacity = float(capacities[t])
                events.append(
                    CapacityEvent(time=float(t), capacity=current_capacity)
                )
            for k, name in enumerate(self.names):
                amount = float(arrivals[k, t])
                if amount > 0.0:
                    events.append(
                        ArrivalEvent(
                            time=float(t), session=name, amount=amount
                        )
                    )
        if include_leaves:
            for name in self.names:
                events.append(
                    SessionLeave(time=float(self.horizon), name=name)
                )
        return events

    # ------------------------------------------------------------------
    # packet side
    # ------------------------------------------------------------------
    def packet_server(self) -> "WFQServer":
        """A WFQ (packet-by-packet GPS) server for this scenario."""
        from repro.sim.packet import WFQServer

        return WFQServer(rate=self.rate, phis=self.phis)

    def packetize(
        self, packet_size: float, trial: int = 0
    ) -> "list[Packet]":
        """Sample one trial and chop it into fixed-size packets."""
        from repro.sim.packetize import packetize_traces

        return packetize_traces(
            self.sample_arrivals(trial), packet_size
        )

    def simulate_packets(
        self, packet_size: float, trial: int = 0
    ) -> "WFQResult":
        """Run one packetized WFQ trial of the scenario."""
        return self.packet_server().simulate(
            self.packetize(packet_size, trial)
        )

    def to_packet_trace(
        self,
        packet_size: float | None = None,
        *,
        model: "PacketSizeModel | None" = None,
        trial: int = 0,
    ) -> "PacketTrace":
        """Sample one trial as a :class:`repro.packet.trace.PacketTrace`.

        Pass either ``packet_size`` (the fixed-length chopper) or
        ``model`` (any :class:`repro.sim.packetize.PacketSizeModel`).
        The trace header carries this scenario's weights, rate and
        session names, so the file is self-describing — feed it to
        :class:`repro.packet.engine.PacketEngine`, ``repro serve
        --packet``, or write it to disk with
        :meth:`~repro.packet.trace.PacketTrace.write`.

        Arrivals come from :meth:`sample_arrivals` for the given
        trial; model-drawn packet lengths are seeded from
        ``(self.seed, trial)``, so the same scenario and trial always
        produce the same trace.
        """
        from repro.packet.trace import PacketTrace, PacketTraceHeader
        from repro.sim.packetize import FixedSize, packetize_traces_model

        if (packet_size is None) == (model is None):
            raise ValidationError(
                "pass exactly one of packet_size= or model= to "
                "to_packet_trace()"
            )
        if model is None:
            assert packet_size is not None
            model = FixedSize(packet_size)
        packets = packetize_traces_model(
            self.sample_arrivals(trial),
            model,
            seed=(self.seed, trial),
        )
        header = PacketTraceHeader(
            phis=self.phis, rate=self.rate, names=self.names
        )
        return PacketTrace(header=header, packets=tuple(packets))

    # ------------------------------------------------------------------
    # analysis side
    # ------------------------------------------------------------------
    def gps_config(self) -> "GPSConfig":
        """The analysis-side :class:`repro.core.gps.GPSConfig`.

        Requires :attr:`ebbs`; raises :class:`ValidationError` when the
        scenario carries no E.B.B. characterizations.
        """
        from repro.core.gps import GPSConfig, Session

        if self.ebbs is None:
            raise ValidationError(
                "this Scenario has no E.B.B. characterizations; "
                "construct it with ebbs=(...) to use the bound theorems"
            )
        assert self.names is not None
        return GPSConfig(
            self.rate,
            [
                Session(name, ebb, phi)
                for name, ebb, phi in zip(
                    self.names, self.ebbs, self.phis
                )
            ],
        )

    def analysis_context(
        self,
        targets: "Sequence[QoSTarget] | None" = None,
        *,
        discrete: bool = True,
        incremental: bool = True,
    ) -> "AnalysisContext":
        """A :class:`repro.analysis.context.AnalysisContext` seeded with
        this scenario's sessions.

        Requires :attr:`ebbs`; raises :class:`ValidationError` when the
        scenario carries no E.B.B. characterizations.  ``targets``
        optionally attaches one QoS target per session, enabling the
        context's admission gate in addition to its cached partition /
        bound-family computations.
        """
        from repro.analysis.context import AnalysisContext

        if self.ebbs is None:
            raise ValidationError(
                "this Scenario has no E.B.B. characterizations; "
                "construct it with ebbs=(...) to use the bound theorems"
            )
        assert self.names is not None
        if targets is not None and len(targets) != self.num_sessions:
            raise ValidationError(
                f"got {self.num_sessions} sessions but {len(targets)} "
                "QoS targets"
            )
        context = AnalysisContext(
            self.rate, discrete=discrete, incremental=incremental
        )
        for k, name in enumerate(self.names):
            context.add(
                name,
                self.ebbs[k],
                self.phis[k],
                None if targets is None else targets[k],
            )
        return context

    def summary(self) -> dict[str, Any]:
        """JSON-serializable description of the scenario."""
        return {
            "kind": "scenario",
            "rate": self.rate,
            "phis": list(self.phis),
            "names": list(self.names or ()),
            "horizon": self.horizon,
            "seed": self.seed,
            "mean_rates": list(self.mean_rates),
            "offered_load": self.offered_load,
            "num_faults": 0 if self.faults is None else len(self.faults),
        }
