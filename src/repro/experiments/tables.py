"""Plain-text table and series formatting for benches and examples.

The benchmark harness regenerates each paper artifact as text: tables
as aligned ASCII, figure curves as (x, log10 value) series — the same
rows/series the paper reports, without a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["format_table", "format_series", "format_comparison"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with 4 significant digits; everything else via
    ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_series(
    label: str, xs: Sequence[float], ys: Sequence[float]
) -> str:
    """Render a named (x, y) series, one point per line."""
    lines = [label]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:10.4g}  {y:12.6g}")
    return "\n".join(lines)


def format_comparison(
    label: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
) -> str:
    """Render several aligned series over a common grid."""
    names = list(series)
    headers = ["x"] + names
    rows = []
    columns = [np.asarray(series[name], dtype=float) for name in names]
    for k, x in enumerate(xs):
        rows.append([float(x)] + [float(col[k]) for col in columns])
    return f"{label}\n" + format_table(headers, rows)
