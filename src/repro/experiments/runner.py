"""Regenerate every paper artifact as plain-text reports.

Drives the same computations as the benchmark harness but writes the
artifacts to files (or returns them as strings), so the full
reproduction can be archived with one call — also the engine behind
the ``python -m repro`` command line.
"""

from __future__ import annotations

import functools
from pathlib import Path

import numpy as np

from repro.analysis.grid import tail_probability_matrix
from repro.errors import ReproError
from repro.experiments.paper_example import (
    PAPER_TABLE2,
    SESSION_NAMES,
    TABLE1_PARAMETERS,
    delay_bound_curve,
    example_network,
    figure3_delay_bounds,
    figure4_improved_bounds,
    simulate_example_network,
    table1_sources,
    table2_characterizations,
)
from repro.experiments.supervisor import RunManifest, SupervisedRunner
from repro.experiments.tables import format_comparison, format_table
from repro.faults.injection import guard_finite

__all__ = [
    "render_table1",
    "render_table2",
    "render_figure3",
    "render_figure4",
    "render_simulation_check",
    "simulation_trial",
    "delay_frequencies",
    "aggregate_frequencies",
    "render_supervised_simulation",
    "run_all",
    "run_all_resilient",
]

_DELAY_GRID = np.arange(0.0, 51.0, 5.0)

#: Delay thresholds (slots) at which the Monte-Carlo check compares the
#: empirical CCDF against the Figure 3/4 bounds.
_CHECK_DELAYS = (3.0, 6.0, 9.0)

#: Slots discarded as warm-up before measuring delay frequencies.
_WARMUP_SLOTS = 1000


def render_table1() -> str:
    """Table 1 as text."""
    rows = [
        [name, p, q, lam, source.mean_rate]
        for name, (p, q, lam), source in zip(
            SESSION_NAMES, TABLE1_PARAMETERS, table1_sources()
        )
    ]
    return format_table(
        ["session", "p_i", "q_i", "lambda_i", "mean rate"], rows
    )


def render_table2() -> str:
    """Table 2 (both sets, ours vs paper) as text."""
    blocks = []
    for parameter_set in (1, 2):
        ours = table2_characterizations(parameter_set)
        theirs = PAPER_TABLE2[parameter_set]
        rows = [
            [
                name,
                ebb.rho,
                ebb.prefactor,
                row.prefactor,
                ebb.decay_rate,
                row.alpha,
            ]
            for name, ebb, row in zip(SESSION_NAMES, ours, theirs)
        ]
        blocks.append(
            f"Set {parameter_set}\n"
            + format_table(
                [
                    "session",
                    "rho",
                    "Lambda",
                    "Lambda(paper)",
                    "alpha",
                    "alpha(paper)",
                ],
                rows,
            )
        )
    return "\n\n".join(blocks)


def _render_curves(bounds, label: str) -> str:
    series = {
        name: delay_bound_curve(
            bounds[name].end_to_end_delay, _DELAY_GRID
        )
        for name in SESSION_NAMES
    }
    return format_comparison(label, _DELAY_GRID, series)


def render_figure3() -> str:
    """Figure 3(a)/(b) series as text."""
    return "\n\n".join(
        _render_curves(
            figure3_delay_bounds(parameter_set),
            f"Figure 3, Set {parameter_set}: log10 Pr{{D_net >= d}}",
        )
        for parameter_set in (1, 2)
    )


def render_figure4() -> str:
    """Figure 4 series as text."""
    return "\n\n".join(
        _render_curves(
            figure4_improved_bounds(parameter_set),
            f"Figure 4, Set {parameter_set}: log10 Pr{{D_net >= d}}",
        )
        for parameter_set in (1, 2)
    )


def render_simulation_check(
    *, num_slots: int = 60_000, seed: int = 0
) -> str:
    """Monte-Carlo validation block: simulated CCDF vs both bounds."""
    frequencies = simulation_trial(0, seed, num_slots=num_slots)
    fig3 = figure3_delay_bounds(1)
    fig4 = figure4_improved_bounds(1)
    fig4_at, fig3_at = _check_bound_matrices(fig3, fig4)
    rows = []
    for i, name in enumerate(SESSION_NAMES):
        for j, d in enumerate(_CHECK_DELAYS):
            rows.append(
                [
                    name,
                    d,
                    frequencies[name][str(d)],
                    fig4_at[i, j],
                    fig3_at[i, j],
                ]
            )
    return format_table(
        ["session", "d", "simulated", "Fig4 bound", "Fig3 bound"],
        rows,
    )


def _check_bound_matrices(fig3, fig4):
    """Figure 3/4 end-to-end bounds at the check delays, vectorized.

    The paper compares ``Pr{D >= d}`` against the bound evaluated at
    ``d - 1`` (the slotted simulator counts a delay of ``d`` slots as
    strictly exceeding ``d - 1``); one
    :func:`repro.analysis.grid.tail_probability_matrix` call per figure
    replaces the per-cell scalar evaluations.
    """
    shifted = [d - 1.0 for d in _CHECK_DELAYS]
    fig4_at = tail_probability_matrix(
        [fig4[name].end_to_end_delay for name in SESSION_NAMES], shifted
    )
    fig3_at = tail_probability_matrix(
        [fig3[name].end_to_end_delay for name in SESSION_NAMES], shifted
    )
    return fig4_at, fig3_at


def delay_frequencies(simulation) -> dict[str, dict[str, float]]:
    """Per-session delay-exceedance frequencies of a network run.

    ``{session: {str(d): Pr-hat{D_net >= d}}}`` over the post-warm-up
    slots, guarded: a non-finite frequency (e.g. from an injected
    numeric fault) raises :class:`repro.errors.NumericalError`.
    """
    frequencies: dict[str, dict[str, float]] = {}
    for name in SESSION_NAMES:
        delays = simulation.end_to_end_delays(name)[_WARMUP_SLOTS:]
        delays = delays[~np.isnan(delays)]
        frequencies[name] = {
            str(d): guard_finite(
                f"{name} frequency at d={d}",
                float(np.mean(delays >= d)) if delays.size else 0.0,
            )
            for d in _CHECK_DELAYS
        }
    return frequencies


def aggregate_frequencies(
    results,
) -> dict[str, dict[str, dict[str, float]]]:
    """Mean/std of per-trial exceedance frequencies across trials.

    ``results`` is a list of :func:`simulation_trial` records;
    returns ``{session: {str(d): {"mean": ..., "std": ...}}}``.
    """
    aggregate: dict[str, dict[str, dict[str, float]]] = {}
    for name in SESSION_NAMES:
        aggregate[name] = {}
        for d in _CHECK_DELAYS:
            samples = [r[name][str(d)] for r in results]
            aggregate[name][str(d)] = {
                "mean": float(np.mean(samples)) if samples else float("nan"),
                "std": float(np.std(samples)) if samples else float("nan"),
            }
    return aggregate


def simulation_trial(
    trial: int, seed: int, *, num_slots: int = 60_000
) -> dict[str, dict[str, float]]:
    """One Monte-Carlo trial: per-session delay-exceedance frequencies.

    Returns ``{session: {str(d): Pr-hat{D_net >= d}}}`` — a
    JSON-serializable record suitable for
    :class:`repro.experiments.supervisor.SupervisedRunner`
    checkpointing (see :func:`delay_frequencies` for the guarding).
    The ``trial`` index is unused beyond labeling.
    """
    del trial
    simulation = simulate_example_network(1, num_slots, seed=seed)
    return delay_frequencies(simulation)


def render_supervised_simulation(
    *,
    num_trials: int,
    num_slots: int = 60_000,
    base_seed: int = 0,
    checkpoint_path: str | Path | None = None,
    fail_fast: bool = False,
    timeout: float | None = None,
    max_workers: int | None = None,
    dispatch: str | None = None,
) -> tuple[str, RunManifest]:
    """Supervised multi-trial Monte-Carlo check of the Section 6.3 bounds.

    Runs ``num_trials`` independent simulations under
    :class:`SupervisedRunner` (deterministic per-trial seeds, retries,
    optional checkpoint/resume, process fan-out with
    ``max_workers > 1``), aggregates the per-trial exceedance
    frequencies of the completed trials, and renders them against the
    Figure 3/4 bounds.  Returns ``(report text, manifest)``.

    ``dispatch`` selects the execution backend (``"serial"`` /
    ``"process"``); the ``"shared-memory"`` backend is scenario-only
    and cannot serve this network-simulation campaign.
    """
    # functools.partial keeps the trial function picklable, which the
    # max_workers > 1 process pool requires.
    runner = SupervisedRunner(
        trial_fn=functools.partial(simulation_trial, num_slots=num_slots),
        num_trials=num_trials,
        base_seed=base_seed,
        checkpoint_path=checkpoint_path,
        fail_fast=fail_fast,
        timeout=timeout,
        max_workers=max_workers,
        dispatch=dispatch,
    )
    manifest = runner.run()
    fig3 = figure3_delay_bounds(1)
    fig4 = figure4_improved_bounds(1)
    fig4_at, fig3_at = _check_bound_matrices(fig3, fig4)
    rows = []
    results = manifest.results
    for i, name in enumerate(SESSION_NAMES):
        for j, d in enumerate(_CHECK_DELAYS):
            samples = [r[name][str(d)] for r in results]
            mean = float(np.mean(samples)) if samples else float("nan")
            spread = float(np.std(samples)) if samples else float("nan")
            rows.append(
                [
                    name,
                    d,
                    mean,
                    spread,
                    fig4_at[i, j],
                    fig3_at[i, j],
                ]
            )
    table = format_table(
        [
            "session",
            "d",
            "simulated",
            "std",
            "Fig4 bound",
            "Fig3 bound",
        ],
        rows,
    )
    return f"{manifest.summary()}\n{table}", manifest


def run_all_resilient(
    output_dir: str | Path | None = None,
) -> tuple[dict[str, str], dict[str, Exception]]:
    """Render every artifact, surviving individual failures.

    Returns ``(artifacts, errors)``: every artifact that rendered is in
    ``artifacts`` (and written to ``<output_dir>/<name>.txt`` when a
    directory is given); every artifact that raised is in ``errors``
    with the exception that killed it.  One bad artifact no longer
    takes down the other four.
    """
    renderers = {
        "table1": render_table1,
        "table2": render_table2,
        "figure3": render_figure3,
        "figure4": render_figure4,
        "simulation_check": render_simulation_check,
    }
    artifacts: dict[str, str] = {}
    errors: dict[str, Exception] = {}
    for name, render in renderers.items():
        try:
            artifacts[name] = render()
        except (ReproError, ArithmeticError, ValueError) as exc:
            errors[name] = exc
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for name, text in artifacts.items():
            (directory / f"{name}.txt").write_text(text + "\n")
    return artifacts, errors


def run_all(output_dir: str | Path | None = None) -> dict[str, str]:
    """Render every artifact; optionally write them under a directory.

    Returns ``{artifact name: text}``.  With ``output_dir`` set, each
    artifact is also written to ``<output_dir>/<name>.txt``.  The first
    render failure propagates; use :func:`run_all_resilient` to collect
    partial results instead.
    """
    artifacts, errors = run_all_resilient(output_dir)
    if errors:
        raise next(iter(errors.values()))
    return artifacts
