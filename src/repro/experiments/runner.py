"""Regenerate every paper artifact as plain-text reports.

Drives the same computations as the benchmark harness but writes the
artifacts to files (or returns them as strings), so the full
reproduction can be archived with one call — also the engine behind
the ``python -m repro`` command line.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.experiments.paper_example import (
    PAPER_TABLE2,
    SESSION_NAMES,
    TABLE1_PARAMETERS,
    delay_bound_curve,
    example_network,
    figure3_delay_bounds,
    figure4_improved_bounds,
    simulate_example_network,
    table1_sources,
    table2_characterizations,
)
from repro.experiments.tables import format_comparison, format_table

__all__ = [
    "render_table1",
    "render_table2",
    "render_figure3",
    "render_figure4",
    "render_simulation_check",
    "run_all",
]

_DELAY_GRID = np.arange(0.0, 51.0, 5.0)


def render_table1() -> str:
    """Table 1 as text."""
    rows = [
        [name, p, q, lam, source.mean_rate]
        for name, (p, q, lam), source in zip(
            SESSION_NAMES, TABLE1_PARAMETERS, table1_sources()
        )
    ]
    return format_table(
        ["session", "p_i", "q_i", "lambda_i", "mean rate"], rows
    )


def render_table2() -> str:
    """Table 2 (both sets, ours vs paper) as text."""
    blocks = []
    for parameter_set in (1, 2):
        ours = table2_characterizations(parameter_set)
        theirs = PAPER_TABLE2[parameter_set]
        rows = [
            [
                name,
                ebb.rho,
                ebb.prefactor,
                row.prefactor,
                ebb.decay_rate,
                row.alpha,
            ]
            for name, ebb, row in zip(SESSION_NAMES, ours, theirs)
        ]
        blocks.append(
            f"Set {parameter_set}\n"
            + format_table(
                [
                    "session",
                    "rho",
                    "Lambda",
                    "Lambda(paper)",
                    "alpha",
                    "alpha(paper)",
                ],
                rows,
            )
        )
    return "\n\n".join(blocks)


def _render_curves(bounds, label: str) -> str:
    series = {
        name: delay_bound_curve(
            bounds[name].end_to_end_delay, _DELAY_GRID
        )
        for name in SESSION_NAMES
    }
    return format_comparison(label, _DELAY_GRID, series)


def render_figure3() -> str:
    """Figure 3(a)/(b) series as text."""
    return "\n\n".join(
        _render_curves(
            figure3_delay_bounds(parameter_set),
            f"Figure 3, Set {parameter_set}: log10 Pr{{D_net >= d}}",
        )
        for parameter_set in (1, 2)
    )


def render_figure4() -> str:
    """Figure 4 series as text."""
    return "\n\n".join(
        _render_curves(
            figure4_improved_bounds(parameter_set),
            f"Figure 4, Set {parameter_set}: log10 Pr{{D_net >= d}}",
        )
        for parameter_set in (1, 2)
    )


def render_simulation_check(
    *, num_slots: int = 60_000, seed: int = 0
) -> str:
    """Monte-Carlo validation block: simulated CCDF vs both bounds."""
    simulation = simulate_example_network(1, num_slots, seed=seed)
    fig3 = figure3_delay_bounds(1)
    fig4 = figure4_improved_bounds(1)
    rows = []
    for name in SESSION_NAMES:
        delays = simulation.end_to_end_delays(name)[1000:]
        delays = delays[~np.isnan(delays)]
        for d in (3.0, 6.0, 9.0):
            rows.append(
                [
                    name,
                    d,
                    float(np.mean(delays >= d)),
                    fig4[name].end_to_end_delay.evaluate(d - 1.0),
                    fig3[name].end_to_end_delay.evaluate(d - 1.0),
                ]
            )
    return format_table(
        ["session", "d", "simulated", "Fig4 bound", "Fig3 bound"],
        rows,
    )


def run_all(output_dir: str | Path | None = None) -> dict[str, str]:
    """Render every artifact; optionally write them under a directory.

    Returns ``{artifact name: text}``.  With ``output_dir`` set, each
    artifact is also written to ``<output_dir>/<name>.txt``.
    """
    artifacts = {
        "table1": render_table1(),
        "table2": render_table2(),
        "figure3": render_figure3(),
        "figure4": render_figure4(),
        "simulation_check": render_simulation_check(),
    }
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for name, text in artifacts.items():
            (directory / f"{name}.txt").write_text(text + "\n")
    return artifacts
