"""Paper experiment configurations (Section 6.3) and report formatting."""

from repro.experiments.paper_example import (
    PAPER_TABLE2,
    SESSION_NAMES,
    SET1_RHOS,
    SET2_RHOS,
    TABLE1_PARAMETERS,
    delay_bound_curve,
    example_network,
    figure3_delay_bounds,
    figure4_improved_bounds,
    simulate_example_network,
    table1_sources,
    table2_characterizations,
)
from repro.experiments.sensitivity import (
    RhoTradeoffPoint,
    rho_tradeoff_curve,
)
from repro.experiments.runner import (
    render_figure3,
    render_figure4,
    render_simulation_check,
    render_supervised_simulation,
    render_table1,
    render_table2,
    run_all,
    run_all_resilient,
    simulation_trial,
)
from repro.experiments.dispatch import (
    DISPATCH_BACKENDS,
    DispatchBackend,
    ProcessPickleDispatch,
    SerialDispatch,
    SharedMemoryDispatch,
    make_dispatch_backend,
)
from repro.experiments.supervisor import (
    RunManifest,
    SupervisedRunner,
    trial_seed,
)
from repro.experiments.tables import (
    format_comparison,
    format_series,
    format_table,
)

__all__ = [
    "PAPER_TABLE2",
    "SESSION_NAMES",
    "SET1_RHOS",
    "SET2_RHOS",
    "TABLE1_PARAMETERS",
    "delay_bound_curve",
    "example_network",
    "figure3_delay_bounds",
    "figure4_improved_bounds",
    "simulate_example_network",
    "table1_sources",
    "table2_characterizations",
    "format_comparison",
    "format_series",
    "format_table",
    "render_figure3",
    "render_figure4",
    "render_simulation_check",
    "render_supervised_simulation",
    "render_table1",
    "render_table2",
    "run_all",
    "run_all_resilient",
    "simulation_trial",
    "RunManifest",
    "SupervisedRunner",
    "trial_seed",
    "DISPATCH_BACKENDS",
    "DispatchBackend",
    "SerialDispatch",
    "ProcessPickleDispatch",
    "SharedMemoryDispatch",
    "make_dispatch_backend",
    "RhoTradeoffPoint",
    "rho_tradeoff_curve",
]
