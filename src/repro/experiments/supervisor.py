"""Supervised Monte-Carlo execution: retries, timeouts, checkpoints.

Long validation runs die in practice for reasons that have nothing to
do with the mathematics: a trial hits a numerical blow-up under fault
injection, a machine reboots at trial 47 of 64, one pathological seed
takes forever.  :class:`SupervisedRunner` wraps a per-trial function
with the standard production defenses:

* **deterministic per-trial seeding** — trial ``k`` always sees the same
  seed (derived from ``base_seed`` via ``numpy.random.SeedSequence``),
  so an interrupted-and-resumed run aggregates to *exactly* the result
  of an uninterrupted one;
* **retry with exponential backoff + jitter** — transient failures
  (:class:`repro.errors.NumericalError`, injected simulation faults)
  are retried up to ``max_retries`` times; retry ``a`` of trial ``k``
  runs with a seed derived from ``(k, a)``, so a fault that is a
  function of the sample path can clear on retry;
* **per-trial timeout** — a wall-clock budget per attempt, enforced in
  a worker thread (a timed-out attempt is abandoned, counted as a
  failure, and retried);
* **JSON checkpoint/resume** — completed and failed trials are flushed
  to a checkpoint file after every trial (atomic rename), and a rerun
  with the same ``checkpoint_path`` skips finished work;
* **pluggable dispatch** — *how* pending trials execute is a
  :class:`repro.experiments.dispatch.DispatchBackend`: ``"serial"``
  (the reference), ``"process"`` (the legacy per-trial
  ``ProcessPoolExecutor`` pickle fan-out that ``max_workers > 1``
  selects by default), or ``"shared-memory"`` (scenario campaigns
  only: chunked ``(B, N, T)`` arrival blocks in
  ``multiprocessing.shared_memory``, executed through the batched
  fluid engine — bit-identical per-trial results, one pickle and one
  shm segment per chunk instead of per trial);
* **graceful degradation** — trials that exhaust their retries are
  recorded in the manifest's ``failed`` map and the run continues
  (unless ``fail_fast``), so a 1000-trial campaign with three bad seeds
  still yields 997 aggregatable results plus an explicit account of
  the rest.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    CheckpointError,
    NumericalError,
    ReproError,
    SimulationFaultError,
    ValidationError,
)
from repro.experiments.dispatch import (
    DispatchBackend,
    make_dispatch_backend,
)
from repro.sim.results import to_jsonable
from repro.utils.retry import RetryPolicy

__all__ = [
    "trial_seed",
    "RunManifest",
    "SupervisedRunner",
]

_CHECKPOINT_VERSION = 1

#: Exception types retried by default: typed repro failures and the
#: numpy linear-algebra errors a degenerate sample path can trigger.
_DEFAULT_RETRYABLE = (ReproError, FloatingPointError, np.linalg.LinAlgError)


def trial_seed(base_seed: int, trial: int, attempt: int = 0) -> int:
    """Deterministic seed for one attempt of one trial.

    Derived through ``numpy.random.SeedSequence`` spawn keys, so seeds
    for different trials (and different retry attempts of one trial)
    are statistically independent, and trial ``k`` of a resumed run
    sees exactly the seed it saw in the original run.
    """
    if trial < 0 or attempt < 0:
        raise ValidationError(
            f"trial and attempt must be >= 0, got {trial}, {attempt}"
        )
    sequence = np.random.SeedSequence(
        entropy=base_seed, spawn_key=(trial, attempt)
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass
class RunManifest:
    """Outcome of a supervised run: what completed, failed, was skipped.

    ``completed`` maps trial index to the trial's result; ``failed``
    maps trial index to the final error message; ``skipped`` lists
    trials never attempted (a ``fail_fast`` abort).  ``attempts`` maps
    trial index to the number of attempts consumed.
    """

    base_seed: int
    num_trials: int
    completed: dict[int, Any] = field(default_factory=dict)
    failed: dict[int, str] = field(default_factory=dict)
    skipped: list[int] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)

    @property
    def results(self) -> list[Any]:
        """Completed results in trial order."""
        return [self.completed[k] for k in sorted(self.completed)]

    @property
    def num_completed(self) -> int:
        """Number of trials that produced a result."""
        return len(self.completed)

    def summary(self) -> str:
        """One-line account of the run."""
        return (
            f"trials: {len(self.completed)} completed, "
            f"{len(self.failed)} failed, {len(self.skipped)} skipped "
            f"(of {self.num_trials}; base_seed={self.base_seed})"
        )


# Shared with the unified result protocol; kept under the old private
# name for callers that imported it from here.
_to_jsonable = to_jsonable


class SupervisedRunner:
    """Run ``num_trials`` Monte-Carlo trials under supervision.

    Preferred construction is keyword-only::

        SupervisedRunner(trial_fn=fn, num_trials=64, ...)
        SupervisedRunner(scenario=s, num_trials=64, ...)

    The historical positional form ``SupervisedRunner(fn, n, ...)``
    still works but emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    trial_fn:
        Called as ``trial_fn(trial_index, seed)``; must return a
        JSON-serializable result (numpy scalars/arrays are converted).
        With ``max_workers > 1`` it must also be picklable (a
        module-level function, ``functools.partial`` of one, or a bound
        method of a picklable object).
    scenario:
        A :class:`repro.scenario.Scenario`; its
        :meth:`~repro.scenario.Scenario.trial_result` becomes the
        ``trial_fn``.  Mutually exclusive with ``trial_fn``.
    num_trials, base_seed:
        The campaign size and the seed the per-trial seeds derive from.
    max_retries:
        Extra attempts after the first, per trial.
    retry_on:
        Exception types considered transient.  Anything else aborts the
        trial immediately (still recorded as failed, no retries burned).
    timeout:
        Wall-clock seconds per attempt, enforced via a worker thread;
        ``None`` disables the thread and runs inline.  Not supported
        together with ``max_workers > 1``.
    max_workers:
        ``> 1`` fans trials out to a process pool of that size.
        Per-trial seeding keeps the completed results identical to a
        serial run; retry backoff sleeps are skipped (a retried trial
        simply re-enters the queue).
    dispatch:
        How pending trials execute: ``"serial"``, ``"process"``,
        ``"shared-memory"``, or a
        :class:`repro.experiments.dispatch.DispatchBackend` instance.
        ``None`` (default) keeps the historical mapping —
        ``"process"`` when ``max_workers > 1``, else ``"serial"``.
        ``"shared-memory"`` requires ``scenario=`` (it samples and
        batches the scenario's arrivals itself).
    chunk_size:
        Trials per shared-memory batch chunk (``dispatch=
        "shared-memory"`` only); default splits the pending trials
        evenly across the pool.
    backoff_base, backoff_cap, jitter:
        Attempt ``a`` sleeps ``min(cap, base * 2**a) * (1 + U*jitter)``
        before retrying, with ``U`` drawn from a deterministic
        per-(trial, attempt) RNG so runs remain reproducible.
    checkpoint_path:
        JSON checkpoint written after every trial and loaded (if
        present) before the run; see :meth:`load_checkpoint`.
    fail_fast:
        Re-raise as soon as one trial exhausts its retries; remaining
        trials are recorded as skipped in the manifest attached to the
        raised :class:`repro.errors.SimulationFaultError`.
    sleep:
        Injection point for the backoff clock (tests pass a stub).
    """

    def __init__(
        self,
        *args,
        trial_fn: Callable[[int, int], Any] | None = None,
        num_trials: int | None = None,
        scenario=None,
        base_seed: int = 0,
        max_retries: int = 2,
        retry_on: Sequence[type] = _DEFAULT_RETRYABLE,
        timeout: float | None = None,
        max_workers: int | None = None,
        dispatch: "str | DispatchBackend | None" = None,
        chunk_size: int | None = None,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        jitter: float = 0.25,
        checkpoint_path: str | Path | None = None,
        fail_fast: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if args:
            warnings.warn(
                "positional SupervisedRunner(trial_fn, num_trials) is "
                "deprecated; use SupervisedRunner(trial_fn=..., "
                "num_trials=...) or SupervisedRunner(scenario=..., "
                "num_trials=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2 or trial_fn is not None or (
                len(args) == 2 and num_trials is not None
            ):
                raise TypeError(
                    "SupervisedRunner takes at most the two legacy "
                    "positional arguments (trial_fn, num_trials)"
                )
            trial_fn = args[0]
            if len(args) == 2:
                num_trials = args[1]
        if scenario is not None:
            if trial_fn is not None:
                raise ValidationError(
                    "pass either scenario= or trial_fn=, not both"
                )
            trial_fn = scenario.trial_result
        if trial_fn is None or num_trials is None:
            raise ValidationError(
                "SupervisedRunner requires trial_fn= (or scenario=) "
                "and num_trials="
            )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if max_workers is not None and max_workers > 1 and timeout is not None:
            raise ValidationError(
                "per-attempt timeout is not supported with "
                "max_workers > 1; drop one of the two"
            )
        if dispatch is None:
            resolved_workers = (
                int(max_workers) if max_workers is not None else 1
            )
            dispatch = "process" if resolved_workers > 1 else "serial"
        backend = make_dispatch_backend(dispatch, chunk_size=chunk_size)
        if backend.name == "shared-memory" and scenario is None:
            raise ValidationError(
                "dispatch='shared-memory' requires scenario= (the "
                "backend samples and batches the scenario's arrivals); "
                "use dispatch='process' for arbitrary trial functions"
            )
        if backend.name != "serial" and timeout is not None:
            raise ValidationError(
                "per-attempt timeout is not supported with the "
                f"'{backend.name}' dispatch backend; drop one of the two"
            )
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        self._trial_fn = trial_fn
        self._num_trials = int(num_trials)
        self._base_seed = int(base_seed)
        self._max_retries = int(max_retries)
        self._retry_on = tuple(retry_on)
        self._timeout = timeout
        # The shared deterministic backoff policy (repro.utils.retry);
        # jitter is keyed per (trial, attempt) via the run's base seed.
        self._retry_policy = RetryPolicy(
            max_retries=int(max_retries),
            base=float(backoff_base),
            cap=float(backoff_cap),
            jitter=float(jitter),
            seed=int(base_seed),
        )
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._fail_fast = bool(fail_fast)
        self._max_workers = int(max_workers) if max_workers is not None else 1
        self._sleep = sleep
        self._scenario = scenario
        self._dispatch = backend

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def load_checkpoint(self) -> RunManifest:
        """Load prior progress, or an empty manifest when none exists.

        Raises
        ------
        CheckpointError
            If the file is unreadable, not valid JSON, from a different
            checkpoint version, or recorded under a different
            ``base_seed`` / ``num_trials`` than this run.
        """
        manifest = RunManifest(
            base_seed=self._base_seed, num_trials=self._num_trials
        )
        path = self._checkpoint_path
        if path is None or not path.exists():
            return manifest
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        for key in ("version", "base_seed", "num_trials", "completed"):
            if key not in payload:
                raise CheckpointError(
                    f"checkpoint {path} is missing field {key!r}"
                )
        if payload["version"] != _CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {payload['version']}, "
                f"expected {_CHECKPOINT_VERSION}"
            )
        if payload["base_seed"] != self._base_seed:
            raise CheckpointError(
                f"checkpoint {path} was recorded with base_seed "
                f"{payload['base_seed']}, this run uses {self._base_seed}; "
                "resuming would silently mix sample paths"
            )
        if payload["num_trials"] != self._num_trials:
            raise CheckpointError(
                f"checkpoint {path} was recorded for "
                f"{payload['num_trials']} trials, this run asks for "
                f"{self._num_trials}"
            )
        manifest.completed = {
            int(k): v for k, v in payload["completed"].items()
        }
        manifest.failed = {
            int(k): str(v) for k, v in payload.get("failed", {}).items()
        }
        manifest.attempts = {
            int(k): int(v) for k, v in payload.get("attempts", {}).items()
        }
        return manifest

    def _write_checkpoint(self, manifest: RunManifest) -> None:
        path = self._checkpoint_path
        if path is None:
            return
        payload = {
            "version": _CHECKPOINT_VERSION,
            "base_seed": manifest.base_seed,
            "num_trials": manifest.num_trials,
            "completed": {
                str(k): _to_jsonable(v)
                for k, v in manifest.completed.items()
            },
            "failed": {str(k): v for k, v in manifest.failed.items()},
            "attempts": {
                str(k): v for k, v in manifest.attempts.items()
            },
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    json.dump(payload, stream)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                # Never leave a mkstemp orphan behind (a failing
                # json.dump — unserializable result — used to).
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            # Make the rename itself durable, not just the contents.
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _attempt(self, trial: int, attempt: int) -> Any:
        seed = trial_seed(self._base_seed, trial, attempt)
        if self._timeout is None:
            return self._trial_fn(trial, seed)
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(self._trial_fn, trial, seed)
            try:
                return future.result(timeout=self._timeout)
            except FutureTimeoutError:
                future.cancel()
                raise SimulationFaultError(
                    f"trial {trial} attempt {attempt} exceeded the "
                    f"{self._timeout}s timeout"
                ) from None

    def _backoff(self, trial: int, attempt: int) -> None:
        delay = self._retry_policy.delay(attempt, key=trial)
        if delay > 0.0:
            self._sleep(delay)

    @property
    def dispatch(self) -> DispatchBackend:
        """The backend executing this runner's pending trials."""
        return self._dispatch

    def run(self) -> RunManifest:
        """Execute (or resume) the campaign and return its manifest.

        The pending trials are handed to the configured
        :class:`~repro.experiments.dispatch.DispatchBackend`; every
        backend fills the manifest exactly as the serial reference
        would (same per-``(trial, attempt)`` seeds, same retry
        accounting, same fail-fast contract).
        """
        manifest = self.load_checkpoint()
        indices = [
            k
            for k in range(self._num_trials)
            if k not in manifest.completed
        ]
        # Failed trials from a previous run get a fresh chance.
        for k in indices:
            manifest.failed.pop(k, None)
        return self._dispatch.execute(self, manifest, indices)
