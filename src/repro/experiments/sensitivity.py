"""The rho-selection trade-off study (the paper's Table 2 discussion).

Choosing the E.B.B. upper rate ``rho`` for a source trades three
quantities against each other (the paper's Set 1 vs Set 2 comparison
and the surrounding discussion):

* smaller ``rho`` admits more sessions (smaller reserved rate), but
* the decay rate ``alpha(rho)`` collapses as ``rho`` approaches the
  mean rate, and
* the prefactor ``Lambda(rho)`` grows.

:func:`rho_tradeoff_curve` sweeps ``rho`` across the (mean, peak)
range of a Markov source and reports, per point, the characterization
and the resulting Theorem 15 delay bound at a reference delay — making
the paper's qualitative discussion a quantitative, regenerable curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.grid import rpps_delay_bounds, tail_probability_matrix
from repro.core.ebb import EBB
from repro.markov.lnt94 import ebb_characterization
from repro.markov.mmpp import MarkovModulatedSource

from repro.errors import ValidationError

__all__ = ["RhoTradeoffPoint", "rho_tradeoff_curve"]


@dataclass(frozen=True)
class RhoTradeoffPoint:
    """One point of the rho sweep.

    Attributes
    ----------
    rho:
        The chosen upper rate.
    alpha:
        Effective-bandwidth decay rate at this rho.
    prefactor:
        Supremum E.B.B. prefactor at this rho.
    delay_bound:
        The Theorem 15 delay-bound value at the reference delay when
        the session is guaranteed ``guaranteed_rate``.
    guaranteed_rate:
        The clearing rate used for the delay bound.
    """

    rho: float
    alpha: float
    prefactor: float
    delay_bound: float
    guaranteed_rate: float


def rho_tradeoff_curve(
    source: MarkovModulatedSource,
    *,
    guaranteed_rate: float,
    reference_delay: float,
    num_points: int = 8,
    margin: float = 0.05,
) -> list[RhoTradeoffPoint]:
    """Sweep ``rho`` over ``(mean, min(peak, guaranteed_rate))``.

    ``margin`` keeps the sweep strictly inside the admissible range
    (both endpoints are degenerate).  The guaranteed rate must exceed
    the source's mean rate; rho values at or above the guaranteed rate
    are skipped (the virtual queue would be unstable).
    """
    mean, peak = source.mean_rate, source.peak_rate
    if guaranteed_rate <= mean:
        raise ValidationError(
            f"guaranteed rate {guaranteed_rate} must exceed the mean "
            f"rate {mean}"
        )
    if num_points < 2:
        raise ValidationError(f"num_points must be >= 2, got {num_points}")
    hi = min(peak, guaranteed_rate)
    lo = mean + margin * (hi - mean)
    hi = hi - margin * (hi - mean)
    # per-rho characterizations stay scalar (Markov eigen-analysis); the
    # bound evaluation then runs vectorized through the grid path
    kept: list[tuple[float, EBB]] = []
    arrivals: list[EBB] = []
    for rho in np.linspace(lo, hi, num_points):
        rho_f = float(rho)
        if rho_f >= guaranteed_rate:
            continue
        ebb = ebb_characterization(source, rho_f)
        kept.append((rho_f, ebb))
        arrivals.append(ebb)
    if len(kept) < 2:
        raise ValidationError(
            "sweep produced fewer than 2 admissible points; widen the "
            "guaranteed rate"
        )
    bounds = rpps_delay_bounds(
        arrivals, [guaranteed_rate] * len(arrivals), discrete=True
    )
    delay_column = tail_probability_matrix(bounds, [reference_delay])[:, 0]
    return [
        RhoTradeoffPoint(
            rho=rho_f,
            alpha=ebb.decay_rate,
            prefactor=ebb.prefactor,
            delay_bound=float(delay_column[k]),
            guaranteed_rate=guaranteed_rate,
        )
        for k, (rho_f, ebb) in enumerate(kept)
    ]
