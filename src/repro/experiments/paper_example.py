"""The Section 6.3 numerical example, exactly as configured in the paper.

A three-node tree network (Figure 2): sessions 1 and 2 enter at node 1,
sessions 3 and 4 at node 2, and all four share node 3.  All server
rates and link capacities are 1.  Sources are discrete-time two-state
on-off Markov processes with the Table 1 parameters; Table 2 gives two
E.B.B. characterizations per source (two choices of the upper rate
``rho``), derived via the LNT94 effective-bandwidth results.  The GPS
assignment is RPPS (``phi_i^m = rho_i``), so Theorem 15 with the
discrete-time prefactor (eqs. 66-67) yields the Figure 3 end-to-end
delay-bound curves, and the direct LNT94 bound on ``delta_i`` at rate
``g_i`` yields the improved Figure 4 curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import ExponentialTailBound
from repro.core.ebb import EBB
from repro.markov.lnt94 import ebb_characterization
from repro.markov.onoff import OnOffSource
from repro.network.rpps_network import (
    RPPSSessionReport,
    rpps_network_bounds,
    rpps_network_bounds_markov,
)
from repro.network.topology import Network, NetworkNode, NetworkSession
from repro.sim.network_sim import FluidNetworkSimulator, NetworkSimResult
from repro.traffic.sources import OnOffTraffic

from repro.errors import ValidationError

__all__ = [
    "SESSION_NAMES",
    "TABLE1_PARAMETERS",
    "SET1_RHOS",
    "SET2_RHOS",
    "PAPER_TABLE2",
    "table1_sources",
    "table2_characterizations",
    "example_network",
    "figure3_delay_bounds",
    "figure4_improved_bounds",
    "delay_bound_curve",
    "simulate_example_network",
]

#: Session labels, in the paper's order.
SESSION_NAMES = ("session1", "session2", "session3", "session4")

#: Table 1: (p, q, lambda) per session.  Mean rates: .15, .2, .15, .2.
TABLE1_PARAMETERS = (
    (0.3, 0.7, 0.5),
    (0.4, 0.4, 0.4),
    (0.3, 0.3, 0.3),
    (0.4, 0.6, 0.5),
)

#: Table 2, Set 1: upper rates rho_i (sum 0.9).
SET1_RHOS = (0.2, 0.25, 0.2, 0.25)

#: Table 2, Set 2: upper rates rho_i (sum 0.78).
SET2_RHOS = (0.17, 0.22, 0.17, 0.22)


@dataclass(frozen=True)
class PaperTable2Row:
    """The paper's reported (rho, Lambda, alpha) for one session/set."""

    rho: float
    prefactor: float
    alpha: float


#: Table 2 as printed in the paper, for comparison in benches/tests.
PAPER_TABLE2 = {
    1: (
        PaperTable2Row(0.2, 1.0, 1.74),
        PaperTable2Row(0.25, 0.92, 1.76),
        PaperTable2Row(0.2, 0.84, 2.13),
        PaperTable2Row(0.25, 1.0, 1.62),
    ),
    2: (
        PaperTable2Row(0.17, 1.0, 0.729),
        PaperTable2Row(0.22, 0.968, 0.672),
        PaperTable2Row(0.17, 0.929, 0.775),
        PaperTable2Row(0.22, 1.0, 0.655),
    ),
}


def table1_sources() -> list[OnOffSource]:
    """The four on-off sources of Table 1."""
    return [OnOffSource(p, q, lam) for p, q, lam in TABLE1_PARAMETERS]


def _rhos_for_set(parameter_set: int) -> tuple[float, ...]:
    if parameter_set == 1:
        return SET1_RHOS
    if parameter_set == 2:
        return SET2_RHOS
    raise ValidationError(f"parameter_set must be 1 or 2, got {parameter_set}")


def table2_characterizations(parameter_set: int) -> list[EBB]:
    """Recompute Table 2: E.B.B. characterizations via LNT94.

    The decay rates ``alpha_i`` solve the effective-bandwidth equation
    ``eb(alpha) = rho_i`` and match the paper to three digits; the
    prefactors are our rigorous supremum prefactors (the paper's are
    slightly smaller; see EXPERIMENTS.md).
    """
    rhos = _rhos_for_set(parameter_set)
    return [
        ebb_characterization(source.as_mms(), rho)
        for source, rho in zip(table1_sources(), rhos)
    ]


def example_network(
    parameter_set: int, *, paper_prefactors: bool = False
) -> Network:
    """The Figure 2 network under the RPPS assignment.

    With ``paper_prefactors=True`` the sessions carry the paper's
    printed ``(Lambda, alpha)`` values instead of our recomputed ones —
    useful to reproduce Figure 3 literally.
    """
    if paper_prefactors:
        rows = PAPER_TABLE2[parameter_set]
        ebbs = [EBB(r.rho, r.prefactor, r.alpha) for r in rows]
    else:
        ebbs = table2_characterizations(parameter_set)
    nodes = [
        NetworkNode("node1", 1.0),
        NetworkNode("node2", 1.0),
        NetworkNode("node3", 1.0),
    ]
    routes = {
        "session1": ("node1", "node3"),
        "session2": ("node1", "node3"),
        "session3": ("node2", "node3"),
        "session4": ("node2", "node3"),
    }
    sessions = [
        NetworkSession(
            name=name,
            arrival=ebb,
            route=routes[name],
            phis=ebb.rho,  # RPPS: phi = rho at every hop
        )
        for name, ebb in zip(SESSION_NAMES, ebbs)
    ]
    return Network(nodes, sessions)


def figure3_delay_bounds(
    parameter_set: int, *, paper_prefactors: bool = False
) -> dict[str, RPPSSessionReport]:
    """Figure 3: Theorem 15 end-to-end bounds, discrete prefactor."""
    network = example_network(
        parameter_set, paper_prefactors=paper_prefactors
    )
    return {
        name: rpps_network_bounds(network, name, discrete=True)
        for name in SESSION_NAMES
    }


def figure4_improved_bounds(
    parameter_set: int,
) -> dict[str, RPPSSessionReport]:
    """Figure 4: improved bounds via the direct LNT94 queue bound."""
    network = example_network(parameter_set)
    sources = table1_sources()
    return {
        name: rpps_network_bounds_markov(
            network, name, source.as_mms()
        )
        for name, source in zip(SESSION_NAMES, sources)
    }


def delay_bound_curve(
    bound: ExponentialTailBound, delays: np.ndarray
) -> np.ndarray:
    """``log10`` of the delay-bound CCDF over a grid (Figure 3/4 axes)."""
    values = bound.evaluate_array(delays)
    return np.log10(np.clip(values, 1e-300, None))


def simulate_example_network(
    parameter_set: int,
    num_slots: int,
    *,
    seed: int = 0,
) -> NetworkSimResult:
    """Monte-Carlo simulation of the example network.

    Sources are sampled from their Table 1 on-off models; the network
    runs the fluid GPS simulator with RPPS weights.  Used to verify
    that the Figure 3/4 bounds dominate the empirical distributions.
    """
    network = example_network(parameter_set)
    rng = np.random.default_rng(seed)
    arrivals = {
        name: OnOffTraffic(source).generate(num_slots, rng)
        for name, source in zip(SESSION_NAMES, table1_sources())
    }
    simulator = FluidNetworkSimulator(network)
    return simulator.run(arrivals)
