"""Pluggable Monte-Carlo dispatch: serial, process-pickle, shared memory.

:class:`~repro.experiments.supervisor.SupervisedRunner` owns the
campaign bookkeeping — deterministic per-trial seeds, retries with
backoff, checkpoint/resume, the fail-fast contract — and delegates
*how the pending trials are executed* to a :class:`DispatchBackend`:

* :class:`SerialDispatch` — one trial at a time on the calling thread;
  the reference semantics every other backend must reproduce;
* :class:`ProcessPickleDispatch` — the legacy fan-out: each trial is a
  ``ProcessPoolExecutor`` task, pickling the trial function (and any
  ``Scenario`` it closes over) per submission.  General — it runs any
  picklable ``trial_fn`` — but the per-task pickle/unpickle overhead
  swamps short trials, which is why ``BENCH_engine.json`` measured it
  at ~1.0× on 4 workers;
* :class:`SharedMemoryDispatch` — the fast path for scenario
  campaigns: the parent samples each trial's ``(N, T)`` arrival matrix
  (the exact per-``(trial, attempt)`` seeds of the serial path),
  stacks a chunk of trials into one ``(B, N, T)`` block in
  ``multiprocessing.shared_memory``, and each worker attaches the
  block zero-copy and runs it through
  :class:`repro.sim.batch.BatchFluidGPSServer` — whose per-trial
  results are bit-for-bit those of the scalar engine, so
  ``manifest.completed`` is identical to a serial run.  One pickled
  scenario and one shm segment per *chunk* instead of one pickle per
  *trial*, and the simulation itself runs vectorized.

Chunk failures degrade, they do not abort: if a chunked batch raises
(one bad trial poisons the whole block — the batch engine cannot tell
which), every trial of that chunk is re-run through the serial
attempt/retry loop, starting from attempt 0 with the same seeds, so
outcomes (results, attempt counts, fail-fast behavior) still match the
serial reference exactly.
"""

from __future__ import annotations

import math
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import SimulationFaultError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.supervisor import RunManifest, SupervisedRunner
    from repro.scenario import Scenario

__all__ = [
    "DispatchBackend",
    "SerialDispatch",
    "ProcessPickleDispatch",
    "SharedMemoryDispatch",
    "DISPATCH_BACKENDS",
    "make_dispatch_backend",
]

#: Names accepted by ``SupervisedRunner(dispatch=...)``.
DISPATCH_BACKENDS: tuple[str, ...] = (
    "serial",
    "process",
    "shared-memory",
)


class DispatchBackend:
    """Executes the pending trials of one supervised campaign.

    ``execute`` receives the runner (for seeds, retry policy,
    checkpoint writes and the trial function), the manifest loaded
    from the checkpoint, and the pending trial indices; it must fill
    ``manifest.completed`` / ``failed`` / ``attempts`` exactly as the
    serial reference would, honor ``fail_fast`` (record the remaining
    trials as skipped and raise
    :class:`repro.errors.SimulationFaultError`), and write a
    checkpoint after every state change it makes.
    """

    #: The backend's registry name.
    name: str = ""

    def execute(
        self,
        runner: "SupervisedRunner",
        manifest: "RunManifest",
        indices: list[int],
    ) -> "RunManifest":
        raise NotImplementedError


def _fail_fast_abort(manifest: "RunManifest") -> SimulationFaultError:
    failed = sorted(manifest.failed)
    return SimulationFaultError(
        f"fail-fast abort: trial {failed[-1]} exhausted its "
        f"retries; manifest: {manifest.summary()}"
    )


class SerialDispatch(DispatchBackend):
    """One trial at a time, with inline backoff sleeps — the reference."""

    name = "serial"

    def execute(
        self,
        runner: "SupervisedRunner",
        manifest: "RunManifest",
        indices: list[int],
    ) -> "RunManifest":
        aborted = False
        for trial in indices:
            if aborted:
                manifest.skipped.append(trial)
                continue
            attempts_used = 0
            while True:
                attempts_used += 1
                try:
                    result = runner._attempt(trial, attempts_used - 1)
                except runner._retry_on as exc:
                    if attempts_used <= runner._max_retries:
                        runner._backoff(trial, attempts_used - 1)
                        continue
                    manifest.failed[trial] = (
                        f"{type(exc).__name__}: {exc}"
                    )
                    manifest.attempts[trial] = attempts_used
                    runner._write_checkpoint(manifest)
                    if runner._fail_fast:
                        aborted = True
                    break
                except Exception as exc:  # non-retryable: record, no retry
                    manifest.failed[trial] = (
                        f"{type(exc).__name__}: {exc}"
                    )
                    manifest.attempts[trial] = attempts_used
                    runner._write_checkpoint(manifest)
                    if runner._fail_fast:
                        aborted = True
                    break
                else:
                    manifest.completed[trial] = result
                    manifest.attempts[trial] = attempts_used
                    runner._write_checkpoint(manifest)
                    break
        if aborted and runner._fail_fast:
            raise _fail_fast_abort(manifest)
        return manifest


class ProcessPickleDispatch(DispatchBackend):
    """The legacy process-pool fan-out: one pickled task per trial.

    Seeds are the same per-``(trial, attempt)`` values the serial path
    uses, so ``manifest.completed`` is identical to a serial run.
    Retryable failures re-enter the submission queue immediately (no
    backoff sleep — the pool's other workers keep the wall clock
    busy); checkpoints are written as completions arrive.
    """

    name = "process"

    def execute(
        self,
        runner: "SupervisedRunner",
        manifest: "RunManifest",
        indices: list[int],
    ) -> "RunManifest":
        from repro.experiments.supervisor import trial_seed

        aborted = False
        attempts: dict[int, int] = {trial: 0 for trial in indices}
        with ProcessPoolExecutor(max_workers=runner._max_workers) as pool:

            def submit(trial: int):
                attempt = attempts[trial]
                attempts[trial] += 1
                seed = trial_seed(runner._base_seed, trial, attempt)
                return pool.submit(runner._trial_fn, trial, seed)

            pending = {submit(trial): trial for trial in indices}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    trial = pending.pop(future)
                    if aborted:
                        if trial not in manifest.failed:
                            manifest.skipped.append(trial)
                        continue
                    error = future.exception()
                    if error is None:
                        manifest.completed[trial] = future.result()
                        manifest.attempts[trial] = attempts[trial]
                        runner._write_checkpoint(manifest)
                        continue
                    retryable = isinstance(error, runner._retry_on)
                    if retryable and attempts[trial] <= runner._max_retries:
                        new_future = submit(trial)
                        pending[new_future] = trial
                        continue
                    manifest.failed[trial] = (
                        f"{type(error).__name__}: {error}"
                    )
                    manifest.attempts[trial] = attempts[trial]
                    runner._write_checkpoint(manifest)
                    if runner._fail_fast:
                        aborted = True
                        for other in pending.values():
                            manifest.skipped.append(other)
                        for other_future in pending:
                            other_future.cancel()
                        pending = {}
                        break
        manifest.skipped.sort()
        if aborted and runner._fail_fast:
            raise _fail_fast_abort(manifest)
        return manifest


# ----------------------------------------------------------------------
# shared-memory chunked batch dispatch
# ----------------------------------------------------------------------
def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker interference.

    Before Python 3.13 every POSIX attach registers the segment with
    the ``resource_tracker`` — under a forking pool that tracker is
    *shared* with the creating parent, so the worker's registration
    collides with the parent's and the segment is torn down (with
    tracker errors) behind the parent's back.  3.13 grew
    ``track=False``; on older interpreters the registration is
    suppressed for the duration of the attach instead (the parent owns
    the segment's lifecycle: it created it tracked and unlinks it when
    the chunk completes).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - version-dependent
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _sample_trial_block(
    scenario: "Scenario", seeds: Sequence[int]
) -> np.ndarray:
    """Stack per-trial arrival matrices into one ``(B, N, T)`` block.

    Each trial's matrix is sampled exactly as
    :meth:`repro.scenario.Scenario.trial_result` samples it — same RNG
    construction, same per-source generate order, same fault
    adjustment — so the batched trial is bit-for-bit the serial one.
    """
    rows = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        arrivals = np.vstack(
            [
                source.generate(scenario.horizon, rng)
                for source in scenario.sources
            ]
        )
        rows.append(scenario._fault_adjusted(arrivals))
    return np.ascontiguousarray(np.stack(rows), dtype=float)


def _run_shm_chunk(
    shm_name: str,
    shape: tuple[int, ...],
    scenario: "Scenario",
    trials: list[int],
    capacities: Any,
) -> list[Any]:
    """Worker: run one shared-memory block through the batch engine."""
    shm = _attach_shm(shm_name)
    try:
        block = np.ndarray(shape, dtype=float, buffer=shm.buf)
        result = scenario.batch_server().run(block, capacities=capacities)
        payloads = []
        for index, trial in enumerate(trials):
            payload = result.trial(index).summary()
            payload["trial"] = int(trial)
            payloads.append(payload)
        return payloads
    finally:
        shm.close()


class SharedMemoryDispatch(DispatchBackend):
    """Chunked ``(B, N, T)`` batch dispatch through shared memory.

    Requires the runner to be scenario-backed (``scenario=``): the
    backend needs the scenario's sources to sample arrivals in the
    parent and its :meth:`~repro.scenario.Scenario.batch_server` to
    run them.  ``chunk_size`` bounds both the shm block size and the
    work granularity; the default splits the pending trials evenly
    across the pool (one chunk per worker, capped at 128 trials).
    """

    name = "shared-memory"

    def __init__(self, *, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._chunk_size = chunk_size

    def _chunks(
        self, indices: list[int], max_workers: int
    ) -> list[list[int]]:
        size = self._chunk_size
        if size is None:
            size = max(1, math.ceil(len(indices) / max(1, max_workers)))
            size = min(size, 128)
        return [
            indices[i : i + size] for i in range(0, len(indices), size)
        ]

    def execute(
        self,
        runner: "SupervisedRunner",
        manifest: "RunManifest",
        indices: list[int],
    ) -> "RunManifest":
        from repro.experiments.supervisor import trial_seed

        scenario = runner._scenario
        if scenario is None:
            raise ValidationError(
                "dispatch='shared-memory' requires a scenario-backed "
                "runner (SupervisedRunner(scenario=...)); arbitrary "
                "trial_fn campaigns need dispatch='process'"
            )
        if not indices:
            return manifest
        capacities = scenario._fault_capacities()
        queue = deque(self._chunks(indices, runner._max_workers))
        fallback: list[int] = []
        inflight: dict[Any, tuple[list[int], shared_memory.SharedMemory]]
        inflight = {}
        with ProcessPoolExecutor(max_workers=runner._max_workers) as pool:

            def launch(chunk: list[int]) -> None:
                seeds = [
                    trial_seed(runner._base_seed, trial, 0)
                    for trial in chunk
                ]
                block = _sample_trial_block(scenario, seeds)
                shm = shared_memory.SharedMemory(
                    create=True, size=block.nbytes
                )
                view = np.ndarray(
                    block.shape, dtype=block.dtype, buffer=shm.buf
                )
                view[:] = block
                future = pool.submit(
                    _run_shm_chunk,
                    shm.name,
                    block.shape,
                    scenario,
                    list(chunk),
                    capacities,
                )
                inflight[future] = (chunk, shm)

            # Keep at most one chunk queued per worker beyond the ones
            # running, bounding shared memory to O(workers) blocks.
            while queue and len(inflight) <= runner._max_workers:
                launch(queue.popleft())
            while inflight:
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk, shm = inflight.pop(future)
                    shm.close()
                    shm.unlink()
                    error = future.exception()
                    if error is None:
                        for trial, payload in zip(chunk, future.result()):
                            manifest.completed[trial] = payload
                            manifest.attempts[trial] = 1
                        runner._write_checkpoint(manifest)
                    else:
                        # A poisoned chunk (one bad trial, a broken
                        # pool) falls back to the serial per-trial
                        # loop, which re-runs attempt 0 with the same
                        # seeds and owns the retry/fail-fast logic.
                        fallback.extend(chunk)
                while queue and len(inflight) <= runner._max_workers:
                    launch(queue.popleft())
        if fallback:
            return SerialDispatch().execute(
                runner, manifest, sorted(fallback)
            )
        return manifest


def make_dispatch_backend(
    spec: "str | DispatchBackend", *, chunk_size: int | None = None
) -> DispatchBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(spec, DispatchBackend):
        return spec
    if spec == "serial":
        return SerialDispatch()
    if spec == "process":
        return ProcessPickleDispatch()
    if spec == "shared-memory":
        return SharedMemoryDispatch(chunk_size=chunk_size)
    raise ValidationError(
        f"dispatch backend must be one of {DISPATCH_BACKENDS} or a "
        f"DispatchBackend instance, got {spec!r}"
    )
