"""Typed error hierarchy for the whole library.

Every exception deliberately raised by a ``repro.*`` public API is a
:class:`ReproError`, so callers can catch one base class at a fault
boundary (the supervised Monte-Carlo runner, the CLI, a long batch job)
without also swallowing genuine programming errors such as
``AttributeError``.

The concrete subclasses distinguish the failure modes that callers
actually treat differently:

* :class:`ValidationError` — an argument fails eager validation.  Also a
  ``ValueError`` so pre-existing ``except ValueError`` call sites keep
  working.
* :class:`FeasibilityError` — the *combination* of rates, weights and
  server capacity admits no feasible ordering / partition (eqs. 4-5,
  37-39).  A subclass of :class:`ValidationError`: the inputs are
  individually fine but jointly infeasible.
* :class:`NumericalError` — a numerical procedure failed: a root find
  did not bracket or converge, a bound evaluation produced ``nan`` or
  ``inf``.  Distinguishing this from :class:`ValidationError` is what
  lets a Monte-Carlo supervisor retry a trial (numerical blow-ups can
  be transient under fault injection) while an infeasible configuration
  is retried never.
* :class:`SimulationFaultError` — a simulation reached an internally
  inconsistent state, or an injected fault escalated past the point of
  graceful degradation.
* :class:`CheckpointError` — a checkpoint file is missing a field,
  corrupt, or inconsistent with the run being resumed.
* :class:`AdmissionError` — an online session-management operation is
  invalid (duplicate join, unknown leave) or an admission decision was
  rejected and the caller asked for rejection to raise.  Carries the
  :class:`repro.online.admission.AdmissionDecision` when one exists.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ValidationError",
    "FeasibilityError",
    "NumericalError",
    "SimulationFaultError",
    "CheckpointError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for every error deliberately raised by ``repro``."""


class ValidationError(ReproError, ValueError):
    """An argument failed eager validation (wrong sign, shape, range)."""


class FeasibilityError(ValidationError):
    """No feasible ordering / partition / rate assignment exists.

    Raised when individually valid rates, weights and capacities are
    jointly infeasible — e.g. ``sum(rho) >= r`` so eq. (4) can never
    hold.
    """


class NumericalError(ReproError, ValueError, ArithmeticError):
    """A numerical procedure failed to bracket, converge, or stay finite.

    Also an ``ArithmeticError`` (the stdlib family for numeric failure)
    and a ``ValueError`` for backward compatibility with call sites
    that caught the bare ``ValueError`` these paths used to raise.
    """


class SimulationFaultError(ReproError, RuntimeError):
    """A simulation reached an inconsistent or unrecoverable state."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is corrupt or inconsistent with the resumed run."""


class AdmissionError(ReproError):
    """An online admission/session-management operation failed.

    Raised for stream-level session errors (joining a name that is
    already active, leaving or renegotiating an unknown session) and by
    ``AdmissionDecision.raise_if_rejected()`` when a caller wants a
    rejected join to be an exception rather than a returned decision.
    The offending decision, when one exists, is attached as
    :attr:`decision`.
    """

    def __init__(self, message: str, *, decision: Any = None) -> None:
        super().__init__(message)
        self.decision = decision
