"""Typed error hierarchy for the whole library.

Every exception deliberately raised by a ``repro.*`` public API is a
:class:`ReproError`, so callers can catch one base class at a fault
boundary (the supervised Monte-Carlo runner, the CLI, a long batch job)
without also swallowing genuine programming errors such as
``AttributeError``.

The concrete subclasses distinguish the failure modes that callers
actually treat differently:

* :class:`ValidationError` — an argument fails eager validation.  Also a
  ``ValueError`` so pre-existing ``except ValueError`` call sites keep
  working.
* :class:`FeasibilityError` — the *combination* of rates, weights and
  server capacity admits no feasible ordering / partition (eqs. 4-5,
  37-39).  A subclass of :class:`ValidationError`: the inputs are
  individually fine but jointly infeasible.
* :class:`NumericalError` — a numerical procedure failed: a root find
  did not bracket or converge, a bound evaluation produced ``nan`` or
  ``inf``.  Distinguishing this from :class:`ValidationError` is what
  lets a Monte-Carlo supervisor retry a trial (numerical blow-ups can
  be transient under fault injection) while an infeasible configuration
  is retried never.
* :class:`SimulationFaultError` — a simulation reached an internally
  inconsistent state, or an injected fault escalated past the point of
  graceful degradation.
* :class:`CheckpointError` — a checkpoint file is missing a field,
  corrupt, or inconsistent with the run being resumed.
* :class:`AdmissionError` — an online session-management operation is
  invalid (duplicate join, unknown leave) or an admission decision was
  rejected and the caller asked for rejection to raise.  Carries the
  :class:`repro.online.admission.AdmissionDecision` when one exists.
* :class:`RecoveryError` — durable-serving state on disk (write-ahead
  log, snapshot, WAL metadata) is corrupt, inconsistent, or cannot be
  reconciled with the requested restart.
* :class:`WalSyncError` — an fsync on the write-ahead log failed and
  the seal/repair cycle could not make the covering window durable;
  carries the poisoned sequence window.
* :class:`UnrecoverableRangeError` — recovery or scrubbing determined
  that a specific range of acknowledged sequence numbers cannot be
  rebuilt from any snapshot or surviving WAL segment; carries the
  exact ranges so a supervisor can refuse readmission precisely.
* :class:`DiskPressureError` — the disk under a WAL directory is full
  (``ENOSPC``) and pruning snapshot-covered segments did not free
  enough space; the durable service converts this into degraded-mode
  ``disk-pressure`` records instead of crashing.
* :class:`OverloadError` — an ingest-protection limit was exhausted
  (the ``max_errors`` budget of a garbage-emitting stream); carries the
  offending count so supervisors can report it.
* :class:`ClusterError` — the sharded serving fleet cannot supervise a
  shard any further: a shard exhausted its restart budget, or the
  cluster's on-disk layout contradicts the requested topology.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ValidationError",
    "FeasibilityError",
    "NumericalError",
    "SimulationFaultError",
    "CheckpointError",
    "AdmissionError",
    "RecoveryError",
    "WalSyncError",
    "UnrecoverableRangeError",
    "DiskPressureError",
    "OverloadError",
    "ClusterError",
]


class ReproError(Exception):
    """Base class for every error deliberately raised by ``repro``."""


class ValidationError(ReproError, ValueError):
    """An argument failed eager validation (wrong sign, shape, range)."""


class FeasibilityError(ValidationError):
    """No feasible ordering / partition / rate assignment exists.

    Raised when individually valid rates, weights and capacities are
    jointly infeasible — e.g. ``sum(rho) >= r`` so eq. (4) can never
    hold.
    """


class NumericalError(ReproError, ValueError, ArithmeticError):
    """A numerical procedure failed to bracket, converge, or stay finite.

    Also an ``ArithmeticError`` (the stdlib family for numeric failure)
    and a ``ValueError`` for backward compatibility with call sites
    that caught the bare ``ValueError`` these paths used to raise.
    """


class SimulationFaultError(ReproError, RuntimeError):
    """A simulation reached an inconsistent or unrecoverable state."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is corrupt or inconsistent with the resumed run."""


class AdmissionError(ReproError):
    """An online admission/session-management operation failed.

    Raised for stream-level session errors (joining a name that is
    already active, leaving or renegotiating an unknown session) and by
    ``AdmissionDecision.raise_if_rejected()`` when a caller wants a
    rejected join to be an exception rather than a returned decision.
    The offending decision, when one exists, is attached as
    :attr:`decision`.
    """

    def __init__(self, message: str, *, decision: Any = None) -> None:
        super().__init__(message)
        self.decision = decision


class RecoveryError(ReproError, RuntimeError):
    """Durable serving state cannot be recovered.

    Raised when a write-ahead log or snapshot is corrupt beyond the
    tolerated torn tail (mid-log corruption, a sequence gap between the
    snapshot and the log, checksum mismatch in WAL metadata) or when a
    restart's configuration contradicts the on-disk metadata.
    """


class WalSyncError(RecoveryError):
    """A WAL fsync failed and in-place repair could not restore durability.

    After a failed fsync the covering window of appended-but-unsynced
    frames is *poisoned*: retrying the sync on the same file descriptor
    can falsely succeed (the kernel may have dropped the dirty pages),
    so the log seals the descriptor, truncates the segment back to the
    durable boundary, rewrites the in-doubt frames through a fresh
    descriptor and syncs again.  This error is raised only when that
    repair cycle *also* fails; the poisoned window is attached as
    ``[first_seq, last_seq]`` (inclusive) so callers know exactly which
    acknowledged sequence numbers are not power-loss durable.
    """

    def __init__(
        self, message: str, *, first_seq: int = 0, last_seq: int = 0
    ) -> None:
        super().__init__(message)
        self.first_seq = int(first_seq)
        self.last_seq = int(last_seq)


class UnrecoverableRangeError(RecoveryError):
    """Specific acknowledged sequence ranges cannot be rebuilt.

    Raised by WAL recovery and by the scrubber when a corrupt or
    missing segment holds entries *not* covered by any valid snapshot:
    the data behind those sequence numbers is gone, and replaying past
    the gap would silently desynchronize the engine.  ``ranges`` is a
    tuple of inclusive ``(first, last)`` sequence pairs — the cluster
    supervisor surfaces them verbatim when refusing to readmit a
    shard.
    """

    def __init__(
        self,
        message: str,
        *,
        ranges: tuple[tuple[int, int], ...] = (),
    ) -> None:
        super().__init__(message)
        self.ranges = tuple((int(a), int(b)) for a, b in ranges)


class DiskPressureError(ReproError, RuntimeError):
    """The disk under a WAL directory is full and pruning did not help.

    Raised by :meth:`repro.online.durability.wal.WriteAheadLog.append`
    when a frame write hits ``ENOSPC`` (the partial frame is rolled
    back first, so the log stays parseable).  The durable service
    catches it, force-prunes snapshot-covered segments, retries once,
    and on persistent pressure flips into degraded mode — emitting
    typed ``disk-pressure`` records and dropping (never acknowledging)
    lines until writes succeed again.  The failing path, when known,
    is attached as :attr:`path`.
    """

    def __init__(self, message: str, *, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path


class OverloadError(ReproError, RuntimeError):
    """An ingest-protection limit of the online service was exhausted.

    Raised by :class:`repro.online.service.OnlineService` when an
    adversarial stream blows through its ``max_errors`` budget; the
    number of error records emitted before the abort is attached as
    :attr:`count`.
    """

    def __init__(self, message: str, *, count: int = 0) -> None:
        super().__init__(message)
        self.count = int(count)


class ClusterError(ReproError, RuntimeError):
    """The sharded serving fleet cannot keep a shard under supervision.

    Raised by :class:`repro.online.cluster.ShardSupervisor` when a
    shard exhausts its bounded restart budget (the fault is persistent,
    not transient — restarting further would loop forever) and when a
    cluster directory's recorded topology contradicts the requested one
    (resharding an existing WAL fleet is not supported).  The failing
    shard index, when one exists, is attached as :attr:`shard`.
    """

    def __init__(self, message: str, *, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard
