"""Long-running ingestion loop around the streaming engine.

:class:`OnlineService` wires a :class:`repro.online.engine.StreamingGPSServer`
to a JSONL transport: it reads event records line by line (a file, a
pipe, or any iterable of strings — ``repro serve`` points it at a path
or stdin), feeds each event to the engine, and writes one decision/
backlog record per event to a sink.  The loop is resilient by default:
a malformed line or a stream-level session error (duplicate join,
unknown leave) produces an ``{"kind": "error", ...}`` record and the
loop keeps going; ``strict=True`` turns those into raised exceptions.

Shutdown is graceful: when the stream ends — or the operator interrupts
with Ctrl-C — the service drains the remaining backlog through empty
slots and emits a final ``{"kind": "summary", ...}`` record carrying
the :meth:`repro.online.engine.OnlineResult.summary` payload.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from repro.errors import ReproError
from repro.online.engine import OnlineResult, StreamingGPSServer
from repro.online.events import event_from_record
from repro.sim.results import to_jsonable

__all__ = ["OnlineService"]


class OnlineService:
    """Drive a streaming engine from a JSONL event feed.

    Parameters
    ----------
    engine:
        The :class:`~repro.online.engine.StreamingGPSServer` to feed.
    sink:
        Open text file for per-event output records; ``None`` discards
        them (the final :class:`~repro.online.engine.OnlineResult` is
        still returned).
    strict:
        Raise on malformed lines / stream-level session errors instead
        of emitting ``error`` records and continuing.
    drain_slots:
        Maximum number of empty slots served during the closing drain.
    """

    def __init__(
        self,
        engine: StreamingGPSServer,
        *,
        sink: IO[str] | None = None,
        strict: bool = False,
        drain_slots: int = 100_000,
    ) -> None:
        self._engine = engine
        self._sink = sink
        self._strict = bool(strict)
        self._drain_slots = int(drain_slots)
        self._errors = 0

    @property
    def engine(self) -> StreamingGPSServer:
        """The engine being driven."""
        return self._engine

    @property
    def errors(self) -> int:
        """Number of lines that produced error records so far."""
        return self._errors

    def _emit(self, record: dict[str, Any]) -> None:
        if self._sink is None:
            return
        self._sink.write(json.dumps(to_jsonable(record)))
        self._sink.write("\n")

    def _handle_line(self, lineno: int, line: str) -> None:
        stripped = line.strip()
        if not stripped:
            return
        try:
            event = event_from_record(json.loads(stripped))
            record = self._engine.process(event)
        except json.JSONDecodeError as exc:
            if self._strict:
                raise ReproError(
                    f"line {lineno} is not valid JSON: {exc}"
                ) from exc
            self._errors += 1
            self._emit(
                {"kind": "error", "line": lineno, "error": str(exc)}
            )
            return
        except ReproError as exc:
            if self._strict:
                raise
            self._errors += 1
            self._emit(
                {
                    "kind": "error",
                    "line": lineno,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                }
            )
            return
        record["line"] = lineno
        self._emit(record)

    def serve(self, lines: Iterable[str]) -> OnlineResult:
        """Ingest a line stream until it ends (or Ctrl-C), then drain.

        Returns the final :class:`~repro.online.engine.OnlineResult`;
        its summary is also emitted as the last output record.
        """
        try:
            for lineno, line in enumerate(lines, start=1):
                self._handle_line(lineno, line)
        except KeyboardInterrupt:
            # Graceful shutdown: fall through to the drain with
            # whatever has been ingested so far.
            pass
        return self.shutdown()

    def shutdown(self) -> OnlineResult:
        """Drain the engine and emit the final summary record."""
        _, drained = self._engine.drain(max_slots=self._drain_slots)
        result = self._engine.result(drained=drained)
        summary = result.summary()
        summary["errors"] = self._errors
        self._emit({"kind": "summary", "summary": summary})
        if self._sink is not None:
            self._sink.flush()
        return result
