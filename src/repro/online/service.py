"""Long-running ingestion loop around the streaming engine.

:class:`OnlineService` wires a :class:`repro.online.engine.StreamingGPSServer`
to a JSONL transport: it reads event records line by line (a file, a
pipe, or any iterable of strings — ``repro serve`` points it at a path
or stdin), feeds each event to the engine, and writes one decision/
backlog record per event to a sink.  The loop is resilient by default:
a malformed line or a stream-level session error (duplicate join,
unknown leave) produces an ``{"kind": "error", ...}`` record and the
loop keeps going; ``strict=True`` turns those into raised exceptions.

Production ingest protection rides on top of the resilience:

* ``max_errors`` bounds the error budget — an adversarial garbage
  stream can no longer emit error records forever; past the budget the
  service aborts with a typed :class:`repro.errors.OverloadError`
  carrying the error count;
* ``shed_backlog`` / ``shed_resume`` are high/low watermarks on the
  engine backlog — above the high watermark arrival events are *shed*
  (the slot clock still advances, so the server keeps draining) and a
  typed ``{"kind": "shed", ...}`` record is emitted for each, until
  the backlog recedes below the low watermark;
* ``heartbeat_every`` emits a periodic ``{"kind": "heartbeat", ...}``
  health record (clock, backlog, error/shed counters, active
  sessions) so an operator can watch a long-running ingest without
  parsing every per-event record.

Shutdown is graceful: when the stream ends — or the operator interrupts
with Ctrl-C — the service drains the remaining backlog through empty
slots and emits a final ``{"kind": "summary", ...}`` record carrying
the :meth:`repro.online.engine.OnlineResult.summary` payload.  A drain
that hits ``drain_slots`` with backlog still standing emits an
explicit ``{"kind": "drain-truncated", ...}`` record (and flags the
summary) instead of silently under-reporting the residual.
"""

from __future__ import annotations

import json
import math
from typing import IO, Any, Iterable

from repro.errors import OverloadError, ReproError, ValidationError
from repro.online.engine import OnlineResult, StreamingGPSServer
from repro.online.events import ArrivalEvent, event_from_record
from repro.online.records import RecordSink, as_record_sink

__all__ = ["OnlineService"]


class OnlineService:
    """Drive a streaming engine from a JSONL event feed.

    Parameters
    ----------
    engine:
        The :class:`~repro.online.engine.StreamingGPSServer` to feed.
    sink:
        Destination for per-event output records: a
        :class:`repro.online.records.RecordSink`, an open text file
        (wrapped in a :class:`repro.online.records.JsonlSink`), or
        ``None`` to discard them (the final
        :class:`~repro.online.engine.OnlineResult` is still returned).
    strict:
        Raise on malformed lines / stream-level session errors instead
        of emitting ``error`` records and continuing.
    drain_slots:
        Maximum number of empty slots served during the closing drain.
    max_errors:
        Error budget: after this many error records the service aborts
        with :class:`repro.errors.OverloadError` (``None`` = unbounded,
        the historical behavior).
    heartbeat_every:
        Emit a ``heartbeat`` health record every N ingested lines
        (``None`` disables heartbeats).
    shed_backlog:
        High watermark on the engine backlog; at or above it arrival
        events are shed with typed ``shed`` records until the backlog
        recedes below ``shed_resume`` (``None`` disables shedding).
    shed_resume:
        Low watermark ending a shedding episode; defaults to half of
        ``shed_backlog``.
    """

    def __init__(
        self,
        engine: StreamingGPSServer,
        *,
        sink: RecordSink | IO[str] | None = None,
        strict: bool = False,
        drain_slots: int = 100_000,
        max_errors: int | None = None,
        heartbeat_every: int | None = None,
        shed_backlog: float | None = None,
        shed_resume: float | None = None,
    ) -> None:
        if max_errors is not None and max_errors < 0:
            raise ValidationError(
                f"max_errors must be >= 0, got {max_errors}"
            )
        if heartbeat_every is not None and heartbeat_every < 1:
            raise ValidationError(
                f"heartbeat_every must be >= 1, got {heartbeat_every}"
            )
        if shed_backlog is not None and (
            not math.isfinite(shed_backlog) or shed_backlog <= 0.0
        ):
            raise ValidationError(
                f"shed_backlog must be finite and > 0, got {shed_backlog}"
            )
        if shed_resume is not None:
            if shed_backlog is None:
                raise ValidationError(
                    "shed_resume requires shed_backlog to be set"
                )
            if not 0.0 <= shed_resume <= shed_backlog:
                raise ValidationError(
                    f"shed_resume must lie in [0, shed_backlog], got "
                    f"{shed_resume} with shed_backlog={shed_backlog}"
                )
        self._engine = engine
        self._sink = as_record_sink(sink)
        self._strict = bool(strict)
        self._drain_slots = int(drain_slots)
        self._max_errors = (
            None if max_errors is None else int(max_errors)
        )
        self._heartbeat_every = (
            None if heartbeat_every is None else int(heartbeat_every)
        )
        self._shed_backlog = (
            None if shed_backlog is None else float(shed_backlog)
        )
        self._shed_resume = (
            None
            if shed_backlog is None
            else float(
                shed_resume if shed_resume is not None else shed_backlog / 2.0
            )
        )
        self._errors = 0
        self._shed = 0
        self._heartbeats = 0
        self._shedding = False
        self._lineno = 0
        self._drain_truncated = False

    @property
    def engine(self) -> StreamingGPSServer:
        """The engine being driven."""
        return self._engine

    @property
    def errors(self) -> int:
        """Number of lines that produced error records so far."""
        return self._errors

    @property
    def shed(self) -> int:
        """Number of arrival events shed by overload protection."""
        return self._shed

    @property
    def lineno(self) -> int:
        """Sequence number of the last ingested line."""
        return self._lineno

    def _emit(self, record: dict[str, Any]) -> None:
        self._sink.emit(record)

    def _count_error(self) -> None:
        """Bump the error counter, aborting past the ``max_errors`` budget."""
        self._errors += 1
        if self._max_errors is not None and self._errors > self._max_errors:
            raise OverloadError(
                f"error budget exhausted: {self._errors} error records "
                f"exceed max_errors={self._max_errors}; aborting the "
                "ingest loop (the stream looks adversarial or the "
                "transport is corrupting lines)",
                count=self._errors,
            )

    def _maybe_shed(self, lineno: int, event: Any) -> bool:
        """Apply the backlog-watermark shed policy to one event.

        Only arrival events are ever shed; membership and capacity
        events always apply.  A shed arrival still advances the engine
        clock to the event's slot — the server keeps serving (and
        therefore draining) while refusing new work, which is what
        makes the high/low watermark hysteresis converge.
        """
        if self._shed_backlog is None or not isinstance(event, ArrivalEvent):
            return False
        slot = int(math.floor(event.time))
        if slot > self._engine.clock:
            self._engine.advance_to(slot)
        # Unfinished work (carried backlog plus same-slot pending), not
        # the post-service backlog alone: a burst inside one slot must
        # trip the watermark before the slot is ever served.
        backlog = self._engine.unfinished_work()
        if self._shedding:
            assert self._shed_resume is not None
            if backlog <= self._shed_resume:
                self._shedding = False
        elif backlog >= self._shed_backlog:
            self._shedding = True
        if not self._shedding:
            return False
        self._shed += 1
        self._emit(
            {
                "kind": "shed",
                "line": lineno,
                "session": event.session,
                "amount": event.amount,
                "slot": slot,
                "total_backlog": backlog,
            }
        )
        return True

    def _heartbeat(self, lineno: int) -> None:
        if (
            self._heartbeat_every is None
            or lineno % self._heartbeat_every != 0
        ):
            return
        self._heartbeats += 1
        engine = self._engine
        self._emit(
            {
                "kind": "heartbeat",
                "line": lineno,
                "clock": engine.clock,
                "events_processed": engine.events_processed,
                "total_backlog": engine.unfinished_work(),
                "active_sessions": engine.num_active,
                "errors": self._errors,
                "shed": self._shed,
                "shedding": self._shedding,
            }
        )

    def _parse_event(self, payload: dict[str, Any]) -> Any:
        """Decode one JSON payload into an engine event.

        Subclasses override this to speak other wire vocabularies
        (:class:`repro.packet.serving.PacketOnlineService` dispatches
        packet-trace records here); the surrounding resilience,
        durability and replay machinery is shared untouched.
        """
        return event_from_record(payload)

    def _handle_line(self, lineno: int, line: str) -> None:
        stripped = line.strip()
        if not stripped:
            self._heartbeat(lineno)
            return
        try:
            event = self._parse_event(json.loads(stripped))
            if self._maybe_shed(lineno, event):
                self._heartbeat(lineno)
                return
            record = self._engine.process(event)
        except json.JSONDecodeError as exc:
            if self._strict:
                raise ReproError(
                    f"line {lineno} is not valid JSON: {exc}"
                ) from exc
            self._emit(
                {"kind": "error", "line": lineno, "error": str(exc)}
            )
            self._count_error()
            self._heartbeat(lineno)
            return
        except ReproError as exc:
            if self._strict:
                raise
            self._emit(
                {
                    "kind": "error",
                    "line": lineno,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                }
            )
            self._count_error()
            self._heartbeat(lineno)
            return
        record["line"] = lineno
        self._emit(record)
        self._heartbeat(lineno)

    def ingest(self, lines: Iterable[str]) -> None:
        """Feed a line stream to the engine without draining.

        Line numbering continues from where the previous ingest left
        off, so a service resumed after recovery keeps globally
        consistent sequence numbers.
        """
        for line in lines:
            self._lineno += 1
            self._handle_line(self._lineno, line)

    def serve(self, lines: Iterable[str]) -> OnlineResult:
        """Ingest a line stream until it ends (or Ctrl-C), then drain.

        Returns the final :class:`~repro.online.engine.OnlineResult`;
        its summary is also emitted as the last output record.
        """
        try:
            self.ingest(lines)
        except KeyboardInterrupt:
            # Graceful shutdown: fall through to the drain with
            # whatever has been ingested so far.
            pass
        return self.shutdown()

    def shutdown(self) -> OnlineResult:
        """Drain the engine and emit the final summary record."""
        slots_used, drained = self._engine.drain(
            max_slots=self._drain_slots
        )
        if not drained:
            self._drain_truncated = True
            self._emit(
                {
                    "kind": "drain-truncated",
                    "slots_used": slots_used,
                    "residual_backlog": self._engine.unfinished_work(),
                }
            )
        result = self._engine.result(drained=drained)
        summary = result.summary()
        summary["errors"] = self._errors
        summary["shed"] = self._shed
        summary["heartbeats"] = self._heartbeats
        summary["drain_truncated"] = self._drain_truncated
        summary.update(self._extra_summary())
        self._emit({"kind": "summary", "summary": summary})
        self._sink.flush()
        return result

    def _extra_summary(self) -> dict[str, Any]:
        """Summary fields contributed by subclasses (durable counters)."""
        return {}
