"""OS-process shard management: spawn, health-check, SIGKILL, restart.

The in-process cluster (:mod:`repro.online.cluster.cluster`) proves
the failover *logic*; this module proves it against real processes.
:class:`ShardProcess` wraps one ``python -m repro.online.cluster.worker``
subprocess — lines go in over a pipe, records come out through a file
whose mtime doubles as the worker's heartbeat —  and
:class:`ProcessShardSupervisor` implements the two liveness checks a
real fleet needs:

* **deadness**: the process exited (``poll()`` returns a code) —
  covers crashes and SIGKILL;
* **hangness**: the process is alive but its heartbeat file has not
  been touched for longer than ``hang_timeout`` seconds while traffic
  was sent — covers deadlocks and stuck I/O, which ``poll()`` can
  never see.

A hung shard is killed (SIGKILL — it is not going to cooperate) and
both failure modes converge on the same recovery path: spawn a fresh
worker on the same WAL directory; its ``open_durable_service`` replays
the log to the exact acknowledged state.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ClusterError

__all__ = ["ShardProcess", "ProcessShardSupervisor"]

#: Health states reported by :meth:`ProcessShardSupervisor.check`.
ALIVE = "alive"
DEAD = "dead"
HUNG = "hung"


class ShardProcess:
    """One shard worker subprocess and its heartbeat file.

    Parameters
    ----------
    directory:
        The shard's WAL directory (survives the process; recovery
        replays it).
    rate:
        Server rate, forwarded to the worker for fresh directories.
    out_path:
        The worker's output-record file; its mtime is the heartbeat.
    hang_after:
        Test hook forwarded to the worker (``--hang-after``).
    snapshot_every:
        Snapshot cadence forwarded to the worker.
    fsync:
        WAL fsync policy spec forwarded to the worker for fresh
        directories (restarted workers recover under the recorded
        policy regardless).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        rate: float,
        out_path: str | Path,
        hang_after: int | None = None,
        snapshot_every: int | None = None,
        fsync: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.rate = float(rate)
        self.out_path = Path(out_path)
        self.hang_after = hang_after
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.proc: subprocess.Popen[str] | None = None
        self.sent = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker (recovering the WAL directory if it exists)."""
        if self.proc is not None and self.proc.poll() is None:
            raise ClusterError(
                f"worker for {self.directory} is already running"
            )
        cmd = [
            sys.executable,
            "-m",
            "repro.online.cluster.worker",
            "--dir",
            str(self.directory),
            "--rate",
            repr(self.rate),
            "--out",
            str(self.out_path),
        ]
        if self.hang_after is not None:
            cmd += ["--hang-after", str(self.hang_after)]
        if self.snapshot_every is not None:
            cmd += ["--snapshot-every", str(self.snapshot_every)]
        if self.fsync is not None:
            cmd += ["--fsync", str(self.fsync)]
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[3]
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (str(src), env.get("PYTHONPATH", ""))
            if p
        )
        self.proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def send(self, line: str) -> None:
        """Write one ingest line to the worker's stdin."""
        if self.proc is None or self.proc.stdin is None:
            raise ClusterError(
                f"worker for {self.directory} is not running"
            )
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()
        self.sent += 1

    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.proc is not None and self.proc.poll() is None

    def heartbeat_age(self) -> float | None:
        """Seconds since the worker last touched its output file."""
        try:
            return time.time() - self.out_path.stat().st_mtime
        except OSError:
            return None

    def kill(self) -> None:
        """SIGKILL the worker — no warning, no cleanup, no flush."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait()

    def drain(self, timeout: float = 30.0) -> int:
        """Close stdin and wait for a clean exit; returns the code."""
        if self.proc is None:
            raise ClusterError(
                f"worker for {self.directory} was never started"
            )
        if self.proc.stdin is not None:
            try:
                self.proc.stdin.close()
            except OSError:
                pass
        return self.proc.wait(timeout=timeout)


class ProcessShardSupervisor:
    """Liveness checks and kill/restart for process-mode shards.

    Parameters
    ----------
    shards:
        The :class:`ShardProcess` fleet.
    hang_timeout:
        Seconds of frozen heartbeat (with traffic outstanding) after
        which an alive worker is declared hung.
    """

    def __init__(
        self, shards: list[ShardProcess], *, hang_timeout: float = 5.0
    ) -> None:
        self._shards = shards
        self._hang_timeout = float(hang_timeout)

    @property
    def shards(self) -> list[ShardProcess]:
        """The supervised worker processes."""
        return self._shards

    def check(self, shard: ShardProcess) -> str:
        """Classify one worker: ``alive``, ``dead``, or ``hung``."""
        if not shard.alive():
            return DEAD
        age = shard.heartbeat_age()
        if (
            shard.sent > 0
            and age is not None
            and age > self._hang_timeout
        ):
            return HUNG
        return ALIVE

    def restart(self, shard: ShardProcess) -> str:
        """Recover one unhealthy worker; returns the state it was in.

        A hung worker is SIGKILLed first; either way a fresh worker is
        spawned on the same WAL directory, whose recovery replays the
        log to the acknowledged state.  Raises
        :class:`repro.errors.ClusterError` for an ``alive`` worker —
        restarting a healthy shard would drop its in-memory pipe
        buffer for no reason.
        """
        state = self.check(shard)
        if state == ALIVE:
            raise ClusterError(
                f"worker for {shard.directory} is healthy; refusing "
                "to restart it"
            )
        if state == HUNG:
            shard.kill()
        shard.hang_after = None  # the hook fired; do not re-arm it
        shard.sent = 0
        shard.start()
        shard.restarts += 1
        return state
