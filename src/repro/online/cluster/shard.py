"""One shard of the serving fleet: a durable service plus failover state.

A :class:`ShardHandle` owns everything the cluster knows about one
shard: its WAL directory (``shard-NNN/`` under the cluster root), the
live :class:`repro.online.durability.service.DurableOnlineService`
when the shard is up, and the degraded-mode machinery used while it is
down — the bounded line buffer with high/low-watermark shedding, the
count of acknowledged deliveries, and the single *in-flight* line a
crash may or may not have persisted.

The in-flight line is the heart of exactly-once delivery across
failures.  Deliveries are synchronous: the cluster hands the shard one
line, and a normal return means the line is both in the shard's WAL
and applied.  If the shard dies mid-delivery there are only two
possible worlds — the line reached the WAL (post-append/mid-snapshot
kill) or it did not (pre-append kill) — and recovery's replayed
``applied_seq`` distinguishes them: the supervisor compares it against
the acknowledged count and either marks the in-flight line delivered
or re-queues it at the head of the buffer.  No sequence number is ever
applied twice or skipped.
"""

from __future__ import annotations

import json
import warnings
from collections import deque
from pathlib import Path
from typing import IO, Any

from repro.errors import ValidationError

__all__ = [
    "SHARD_DIR_PREFIX",
    "ShardHandle",
    "ShardRecordSink",
    "shard_directory",
]

SHARD_DIR_PREFIX = "shard-"

#: Shard lifecycle states.
RUNNING = "running"
DOWN = "down"
STOPPED = "stopped"


def shard_directory(root: str | Path, index: int) -> Path:
    """The WAL directory of shard ``index`` under a cluster root."""
    return Path(root) / f"{SHARD_DIR_PREFIX}{index:03d}"


class ShardRecordSink:
    """Deprecated: use ``TaggedSink(sink, shard=index)``.

    The old serialize/re-parse shard tagger: the durable service wrote
    serialized JSON lines to its sink, so each line had to be re-parsed
    and stamped with ``"shard": index`` before reaching the shared
    stream.  The typed :class:`repro.online.records.TaggedSink` stamps
    the structured record before it is ever serialized; this shim is
    kept for one release for callers still holding raw text sinks.
    """

    def __init__(self, sink: IO[str], index: int) -> None:
        warnings.warn(
            "ShardRecordSink is deprecated; use "
            "repro.online.records.TaggedSink(sink, shard=index)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._sink = sink
        self._index = int(index)
        self._buffer = ""

    def write(self, text: str) -> None:
        self._buffer += text
        while True:
            newline = self._buffer.find("\n")
            if newline < 0:
                return
            line, self._buffer = (
                self._buffer[:newline],
                self._buffer[newline + 1 :],
            )
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Never let a malformed record break ingest; pass it
                # through untagged.
                self._sink.write(line + "\n")
                continue
            if isinstance(record, dict):
                record["shard"] = self._index
                self._sink.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
            else:
                self._sink.write(line + "\n")

    def flush(self) -> None:
        self._sink.flush()


class ShardHandle:
    """Cluster-side bookkeeping for one shard.

    Parameters
    ----------
    index:
        The shard's position in the fleet (also its routing target).
    directory:
        The shard's WAL directory.
    buffer_limit:
        High watermark on the degraded-mode buffer: while the shard is
        down, at most this many lines queue for replay; past it the
        shard *sheds* (typed records, lines dropped) until the buffer
        drains below ``buffer_resume``.
    buffer_resume:
        Low watermark ending a shedding episode (defaults to half the
        limit).
    crash:
        Optional :class:`repro.faults.injection.CrashInjector` carried
        across restarts by the chaos harness.
    sink:
        The (already shard-tagged) sink handed to the durable service.
    io:
        Optional fault-injection filesystem
        (:class:`repro.faults.io.FaultyFS`) carried across restarts so
        disk-fault schedules span the shard's whole lifetime.
    """

    def __init__(
        self,
        index: int,
        directory: Path,
        *,
        buffer_limit: int = 100_000,
        buffer_resume: int | None = None,
        crash: Any = None,
        sink: Any = None,
        io: Any = None,
    ) -> None:
        if buffer_limit < 1:
            raise ValidationError(
                f"buffer_limit must be >= 1, got {buffer_limit}"
            )
        if buffer_resume is None:
            buffer_resume = buffer_limit // 2
        if not 0 <= buffer_resume <= buffer_limit:
            raise ValidationError(
                f"buffer_resume must lie in [0, buffer_limit], got "
                f"{buffer_resume} with buffer_limit={buffer_limit}"
            )
        self.index = int(index)
        self.directory = Path(directory)
        self.crash = crash
        self.sink = sink
        self.io = io
        self.service: Any = None
        self.state = DOWN
        #: Lines acknowledged (== the service's applied_seq while up).
        self.acked = 0
        #: The one delivery a crash interrupted: ``(global_seq, line)``.
        self.inflight: tuple[int, str] | None = None
        #: Degraded-mode queue of ``(global_seq, line)`` pairs.
        self.buffer: deque[tuple[int, str]] = deque()
        self.buffer_limit = int(buffer_limit)
        self.buffer_resume = int(buffer_resume)
        self.shedding = False
        #: Lines dropped by degraded-mode shedding.
        self.shed = 0
        #: Crashes observed over the shard's lifetime (reporting).
        self.crashes = 0
        #: Consecutive crashes since the shard was last fully
        #: readmitted (the supervisor's retry-budget counter).
        self.consecutive = 0
        #: Successful restarts.
        self.restarts = 0
        #: Tick at which the next restart attempt is allowed.
        self.restart_due: int | None = None

    # ------------------------------------------------------------------
    def attach(self, service: Any) -> None:
        """Bind a live durable service and mark the shard RUNNING."""
        self.service = service
        self.state = RUNNING
        self.restart_due = None

    def enqueue(self, global_seq: int, line: str) -> bool:
        """Queue a line while the shard is down.

        Applies the high/low-watermark hysteresis: returns ``True``
        when the line was buffered, ``False`` when it was shed (the
        caller emits the typed ``shed`` record and drops it).
        """
        if self.shedding and len(self.buffer) <= self.buffer_resume:
            self.shedding = False
        if not self.shedding and len(self.buffer) >= self.buffer_limit:
            self.shedding = True
        if self.shedding:
            self.shed += 1
            return False
        self.buffer.append((global_seq, line))
        return True

    def status(self) -> dict[str, Any]:
        """JSON-serializable health summary (cluster heartbeats)."""
        return {
            "shard": self.index,
            "state": self.state,
            "acked": self.acked,
            "buffered": len(self.buffer),
            "shedding": self.shedding,
            "shed": self.shed,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "restart_due": self.restart_due,
        }
