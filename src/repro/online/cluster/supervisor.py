"""Shard lifecycle supervision: crash detection, backoff, reconciliation.

:class:`ShardSupervisor` owns the fleet of :class:`ShardHandle` objects
and implements the supervision loop the cluster calls into:

* :meth:`deliver` hands one line to a running shard and converts a
  crash (:class:`repro.faults.injection.SimulatedCrash` from the chaos
  harness, or any :class:`repro.errors.ReproError` escaping the
  durable service) into a *down* shard with a scheduled restart;
* :meth:`poll` is the heartbeat check, called once per ingest tick —
  it restarts any shard whose backoff delay has elapsed;
* :meth:`restart` recovers the shard's WAL directory to bit-identical
  state, *reconciles* the interrupted delivery (see below), and
  replays the degraded-mode buffer before readmitting traffic.

Supervision time is measured in **ingest ticks** (global lines
processed), not wall-clock seconds: backoff delays from the shared
:class:`repro.utils.retry.RetryPolicy` are interpreted as tick counts.
That makes every chaos schedule deterministic — the same seed produces
the same kills, the same restart times, and the same shed records,
with no sleeps anywhere.

Reconciliation
--------------
Deliveries are synchronous and the WAL append happens before the
engine observes a line, so a crash interrupts at most one line and
leaves exactly two possible worlds.  With ``acked`` the count of
deliveries acknowledged before the crash and ``applied`` the shard's
replayed ``applied_seq``:

===================  ==============================================
``applied == acked``       the in-flight line never reached the WAL
                           (pre-append kill) — re-deliver it first
``applied == acked + 1``   the in-flight line survived (post-append
                           or mid-snapshot kill) and was replayed —
                           acknowledge it, do *not* re-deliver
anything else              acknowledged data was lost or phantom
                           entries appeared: :class:`ClusterError`
===================  ==============================================

A shard whose consecutive-crash count exceeds the retry budget is
marked *failed* and the supervisor raises
:class:`repro.errors.ClusterError` — a fleet that cannot hold a shard
up is broken, not degraded.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Callable

from repro.errors import ClusterError, ReproError, UnrecoverableRangeError
from repro.faults import SimulatedCrash
from repro.online.cluster.shard import (
    DOWN,
    RUNNING,
    ShardHandle,
)
from repro.online.durability.scrub import scrub_directory
from repro.online.durability.service import DurableOnlineService
from repro.utils.retry import RetryPolicy

__all__ = ["ShardSupervisor"]

#: ``state`` value for a shard whose restart budget is exhausted.
FAILED = "failed"


class ShardSupervisor:
    """Monitor shard health; restart crashed shards with backoff.

    Parameters
    ----------
    handles:
        The fleet, one :class:`ShardHandle` per shard index.
    policy:
        Restart budget and backoff schedule; ``delay(attempt)`` values
        are interpreted as ingest-tick counts (ceil'd, minimum 1).
    emit:
        Callback receiving cluster-level records (``failover`` on
        crash and on readmission); typically the cluster's tagged
        JSONL emitter.
    """

    def __init__(
        self,
        handles: list[ShardHandle],
        *,
        policy: RetryPolicy | None = None,
        emit: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self._handles = handles
        self._policy = policy if policy is not None else RetryPolicy()
        self._emit = emit if emit is not None else (lambda record: None)

    @property
    def policy(self) -> RetryPolicy:
        """The restart backoff policy."""
        return self._policy

    # ------------------------------------------------------------------
    def deliver(
        self, handle: ShardHandle, tick: int, line: str
    ) -> bool:
        """Synchronously deliver one line to a running shard.

        Returns ``True`` when the shard acknowledged the line (it is in
        the WAL and applied), ``False`` when the shard crashed — the
        line is then in-flight and reconciliation on restart decides
        its fate.  ``tick`` is the current ingest tick, used to
        schedule the restart.
        """
        if handle.state != RUNNING or handle.service is None:
            raise ClusterError(
                f"delivery to shard {handle.index} in state "
                f"{handle.state!r}; only running shards accept traffic",
                shard=handle.index,
            )
        handle.inflight = (tick, line)
        try:
            handle.service.ingest([line])
        except (SimulatedCrash, ReproError) as exc:
            self.on_crash(handle, tick, reason=exc)
            return False
        handle.acked += 1
        handle.inflight = None
        return True

    def on_crash(
        self, handle: ShardHandle, tick: int, *, reason: BaseException
    ) -> None:
        """Mark a shard down and schedule its restart.

        Raises :class:`ClusterError` when the shard's consecutive
        crash count exhausts the retry budget.
        """
        # Capture the fsync watermark before the dead service is
        # dropped: under the group/budget/async WAL policies it tells
        # the failover record how much of the acknowledged window was
        # already power-loss durable at the moment of the crash.
        durable = None
        if handle.service is not None:
            try:
                durable = int(handle.service.durable_seq)
            except Exception:
                durable = None
        handle.state = DOWN
        handle.service = None
        handle.crashes += 1
        handle.consecutive += 1
        attempt = handle.consecutive - 1
        if not self._policy.retryable(attempt):
            handle.state = FAILED
            raise ClusterError(
                f"shard {handle.index} crashed {handle.consecutive} "
                "times without recovering; retry budget "
                f"(max_retries={self._policy.max_retries}) exhausted: "
                f"{reason}",
                shard=handle.index,
            )
        delay = self._policy.delay(attempt, key=handle.index)
        ticks = max(1, math.ceil(delay))
        handle.restart_due = tick + ticks
        self._emit(
            {
                "kind": "failover",
                "shard": handle.index,
                "event": "crash",
                "tick": tick,
                "attempt": handle.consecutive,
                "restart_due": handle.restart_due,
                "reason": type(reason).__name__,
                "detail": str(reason),
                "durable_seq": durable,
            }
        )

    # ------------------------------------------------------------------
    def poll(self, tick: int) -> None:
        """Heartbeat check: restart every shard whose backoff elapsed."""
        for handle in self._handles:
            if (
                handle.state == DOWN
                and handle.restart_due is not None
                and tick >= handle.restart_due
            ):
                self.restart(handle, tick)

    def restart(
        self, handle: ShardHandle, tick: int, *, force: bool = False
    ) -> bool:
        """Recover a downed shard and readmit it to traffic.

        Recovery replays the shard's WAL to bit-identical state,
        reconciles the interrupted delivery, then drains the
        degraded-mode buffer (those deliveries may crash again — the
        shard goes back down with a new backoff and ``restart``
        returns ``False``).  ``force=True`` ignores the backoff
        schedule (cluster drain).  Returns ``True`` when the shard is
        running with an empty buffer.
        """
        if handle.state != DOWN:
            raise ClusterError(
                f"cannot restart shard {handle.index} in state "
                f"{handle.state!r}",
                shard=handle.index,
            )
        if (
            not force
            and handle.restart_due is not None
            and tick < handle.restart_due
        ):
            return False
        # Disk-integrity gate: scrub the shard's directory before
        # readmission.  Corrupt-but-snapshot-covered segments are
        # quarantined and repaired in place; corruption past coverage
        # means acknowledged events are gone — the shard is failed with
        # the exact unrecoverable ranges, never readmitted on bad data.
        try:
            scrubbed = scrub_directory(
                Path(handle.directory), repair=True, io=handle.io
            )
            scrubbed.raise_if_unrecoverable()
        except UnrecoverableRangeError as exc:
            handle.state = FAILED
            described = ", ".join(
                f"{first}..{last}" for first, last in exc.ranges
            )
            raise ClusterError(
                f"refusing to readmit shard {handle.index}: scrub found "
                f"unrecoverable entries (seqs {described}) that no valid "
                "snapshot covers; acknowledged events would be lost",
                shard=handle.index,
            ) from exc
        if not scrubbed.clean:
            record = scrubbed.to_record()
            record["shard"] = handle.index
            self._emit(record)
        service, report = DurableOnlineService.open(
            Path(handle.directory),
            mode="recover",
            sink=handle.sink,
            crash=handle.crash,
            io=handle.io,
        )
        self._reconcile(handle, service.applied_seq)
        handle.attach(service)
        handle.restarts += 1
        self._emit(
            {
                "kind": "failover",
                "shard": handle.index,
                "event": "restart",
                "tick": tick,
                "applied_seq": service.applied_seq,
                "replayed": report.replayed,
                "snapshot_seq": report.snapshot_seq,
                "buffered": len(handle.buffer),
            }
        )
        if not self._flush(handle, tick):
            return False
        # Fully readmitted: consecutive-crash accounting starts over.
        handle.consecutive = 0
        return True

    def _reconcile(self, handle: ShardHandle, applied: int) -> None:
        """Resolve the in-flight delivery against the replayed WAL."""
        if applied == handle.acked + 1 and handle.inflight is not None:
            # The crash struck after the WAL append: replay recovered
            # the line, so it is delivered — exactly once.
            handle.acked = applied
            handle.inflight = None
            return
        if applied == handle.acked:
            # Pre-append kill: the line never touched the log.
            # Re-deliver it ahead of everything buffered since.
            if handle.inflight is not None:
                handle.buffer.appendleft(handle.inflight)
                handle.inflight = None
            return
        raise ClusterError(
            f"shard {handle.index} recovered applied_seq={applied} but "
            f"{handle.acked} deliveries were acknowledged"
            + (
                " with one in flight"
                if handle.inflight is not None
                else ""
            )
            + "; the WAL lost acknowledged events or replayed phantom "
            "entries",
            shard=handle.index,
        )

    def _flush(self, handle: ShardHandle, tick: int) -> bool:
        """Drain the degraded-mode buffer through normal delivery."""
        while handle.buffer:
            seq, line = handle.buffer.popleft()
            if not self.deliver(handle, tick, line):
                return False
        return True
