"""The sharded serving fleet: routing, supervision, and drain in one loop.

:class:`ShardedOnlineCluster` splits one JSONL ingest stream across
``N`` durable shards (each an independent
:class:`repro.online.durability.service.DurableOnlineService` with its
own WAL directory ``shard-NNN/``), keeps the fleet alive through a
:class:`repro.online.cluster.supervisor.ShardSupervisor`, and merges
every shard's output — tagged ``"shard": i`` — into one sink.

The cluster root is self-describing, mirroring the single-shard
layout: a checksummed ``cluster.json`` records the shard count and the
full serving configuration, so ``repro cluster-recover`` needs nothing
but the directory.  Construct via
:meth:`ShardedOnlineCluster.open` with ``mode="create"`` /
``"recover"`` / ``"attach"``.

Failure semantics
-----------------
While a shard is down its traffic is *buffered* (bounded, with
high/low-watermark shedding — typed ``shed`` records carry the shard
index) and replayed on readmission, so a recovered cluster's per-shard
state is ``np.array_equal`` to an uninterrupted run over
:meth:`repro.online.cluster.routing.ShardRouter.partition` of the same
lines.  The degraded-mode buffers live in memory: a *process*-level
kill of the whole cluster loses them, but never loses acknowledged
lines — those are in the shards' WALs, and recovery resurrects exactly
the acknowledged prefix of each shard's substream.

Shutdown is graceful: the drain first force-restarts any shard that is
still down, flushes its buffer, then drains every engine and emits the
per-shard summaries plus one final ``cluster-summary`` record.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.errors import ClusterError, RecoveryError, ValidationError
from repro.online.cluster.routing import ShardRouter
from repro.online.cluster.shard import (
    DOWN,
    RUNNING,
    STOPPED,
    ShardHandle,
    shard_directory,
)
from repro.online.cluster.supervisor import ShardSupervisor
from repro.online.durability.service import (
    DurableOnlineService,
    RecoveryReport,
)
from repro.online.durability.snapshot import _decode, _encode
from repro.online.durability.wal import _fsync_dir
from repro.online.engine import OnlineResult
from repro.online.factory import check_open_mode, check_recover_overrides
from repro.online.records import RecordSink, TaggedSink, as_record_sink
from repro.utils.retry import RetryPolicy

__all__ = [
    "ClusterResult",
    "ShardedOnlineCluster",
    "create_cluster",
    "recover_cluster",
    "open_cluster",
]

_CLUSTER_META = "cluster.json"
_CLUSTER_FORMAT = 1

#: Cluster-level configuration persisted in ``cluster.json`` alongside
#: the per-shard serving config (any
#: :data:`repro.online.durability.service._CONFIG_DEFAULTS` key).
_CLUSTER_DEFAULTS: dict[str, Any] = {
    "num_shards": None,  # required at creation
    "rate": None,  # required at creation
    "buffer_limit": 100_000,
    "buffer_resume": None,
    "cluster_heartbeat_every": None,
    "max_retries": 8,
    "backoff_base": 2.0,
    "backoff_cap": 64.0,
}

#: Upper bound on force-restart rounds during a drain; a chaos
#: injector fires each fault once, so a healthy cluster converges long
#: before this.
_DRAIN_ROUNDS = 10_000


def _write_cluster_meta(root: Path, config: dict[str, Any]) -> None:
    document = {"format": _CLUSTER_FORMAT, "config": config}
    encoded = _encode(document)
    root.mkdir(parents=True, exist_ok=True)
    tmp = root / (_CLUSTER_META + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(encoded)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, root / _CLUSTER_META)
    _fsync_dir(root)


def _read_cluster_meta(root: Path) -> dict[str, Any]:
    path = root / _CLUSTER_META
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise RecoveryError(
            f"cannot read cluster metadata {path}: {exc}"
        ) from exc
    document = _decode(raw)
    if document is None or document.get("format") != _CLUSTER_FORMAT:
        raise RecoveryError(
            f"cluster metadata {path} is corrupt or has an unsupported "
            "format; refusing to guess the fleet configuration"
        )
    config = dict(document.get("config", {}))
    for key, default in _CLUSTER_DEFAULTS.items():
        config.setdefault(key, default)
    if config["num_shards"] is None or config["rate"] is None:
        raise RecoveryError(
            f"cluster metadata {path} does not declare num_shards/rate"
        )
    return config


@dataclass(frozen=True)
class ClusterResult:
    """Everything a finished cluster run hands back.

    ``results[i]`` is shard ``i``'s final
    :class:`repro.online.engine.OnlineResult`; ``shards`` the final
    health statuses (crash/restart/shed counters included).
    """

    results: tuple[OnlineResult, ...]
    shards: tuple[dict[str, Any], ...]

    def summary(self) -> dict[str, Any]:
        """Fleet-level roll-up of the per-shard summaries."""
        per_shard = [result.summary() for result in self.results]
        return {
            "num_shards": len(self.results),
            "events_processed": sum(
                s["events_processed"] for s in per_shard
            ),
            "crashes": sum(s["crashes"] for s in self.shards),
            "restarts": sum(s["restarts"] for s in self.shards),
            "shed": sum(s["shed"] for s in self.shards),
            "shards": per_shard,
        }


class ShardedOnlineCluster:
    """Route, supervise, and drain a fleet of durable shards.

    Construct via :meth:`ShardedOnlineCluster.open`; the constructor
    wires already-built handles (the old ``create_cluster`` /
    ``recover_cluster`` / ``open_cluster`` triple remains as
    deprecated shims).
    """

    @classmethod
    def open(
        cls,
        root: str | Path,
        *,
        mode: str = "attach",
        num_shards: int | None = None,
        rate: float | None = None,
        sink: "RecordSink | IO[str] | None" = None,
        crash_factory: Any = None,
        io_factory: Any = None,
        **config_overrides: Any,
    ) -> tuple["ShardedOnlineCluster", tuple[RecoveryReport, ...]]:
        """Open a cluster root as a running fleet.

        The single entry point replacing the old ``create`` /
        ``recover`` / ``open`` function triple; every mode returns
        ``(cluster, reports)`` with one
        :class:`~repro.online.durability.service.RecoveryReport` per
        shard.

        ``mode="create"``
            Initialize a fresh root (``num_shards`` and ``rate``
            required).  ``config_overrides`` may set any cluster key
            (``buffer_limit``, ``max_retries``, ``backoff_base``, ...)
            or any per-shard serving key (``snapshot_every``,
            ``fsync``, ``admission``, ...); ``crash_factory`` maps a
            shard index to a
            :class:`repro.faults.injection.CrashInjector` (or
            ``None``) — the chaos harness's hook, carried across that
            shard's restarts.  ``io_factory`` is the disk-fault
            analogue: it maps a shard index to a
            :class:`repro.faults.io.FaultyFS` (or ``None``) wrapping
            that shard's WAL/snapshot file operations.  An
            already-initialized root raises
            :class:`repro.errors.RecoveryError`.
        ``mode="recover"``
            Rebuild the fleet from the root alone: every shard's WAL
            is recovered to bit-identical state and acknowledged
            counters re-anchored at its ``applied_seq``.
            ``num_shards``/``rate`` act as cross-checks; overrides are
            rejected.
        ``mode="attach"`` (default)
            Create-or-recover, the idempotent path behind
            ``repro serve --shards``.
        """
        if mode == "create":
            if num_shards is None or rate is None:
                raise ValidationError(
                    "mode='create' requires num_shards= and rate="
                )
            cluster = _create_cluster(
                Path(root),
                num_shards=num_shards,
                rate=rate,
                sink=as_record_sink(sink),
                crash_factory=crash_factory,
                io_factory=io_factory,
                **config_overrides,
            )
            return cluster, _fresh_reports(cluster.num_shards)
        return _open_cluster(
            root,
            mode=mode,
            num_shards=num_shards,
            rate=rate,
            sink=sink,
            crash_factory=crash_factory,
            io_factory=io_factory,
            **config_overrides,
        )

    def __init__(
        self,
        root: Path,
        handles: list[ShardHandle],
        *,
        sink: RecordSink | IO[str] | None = None,
        cluster_heartbeat_every: int | None = None,
        policy: RetryPolicy | None = None,
    ) -> None:
        if not handles:
            raise ValidationError("a cluster needs at least one shard")
        if cluster_heartbeat_every is not None and (
            cluster_heartbeat_every < 1
        ):
            raise ValidationError(
                "cluster_heartbeat_every must be >= 1, got "
                f"{cluster_heartbeat_every}"
            )
        self._root = Path(root)
        self._handles = handles
        self._router = ShardRouter(len(handles))
        self._sink = as_record_sink(sink)
        self._heartbeat_every = cluster_heartbeat_every
        self._supervisor = ShardSupervisor(
            handles, policy=policy, emit=self._emit
        )
        self._global_seq = 0

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self._handles)

    @property
    def router(self) -> ShardRouter:
        """The (pure) session-key router."""
        return self._router

    @property
    def supervisor(self) -> ShardSupervisor:
        """The shard lifecycle supervisor."""
        return self._supervisor

    @property
    def handles(self) -> list[ShardHandle]:
        """The per-shard bookkeeping handles."""
        return self._handles

    @property
    def global_seq(self) -> int:
        """Global sequence number of the last routed line."""
        return self._global_seq

    def _emit(self, record: dict[str, Any]) -> None:
        self._sink.emit(record)

    def _heartbeat(self, tick: int) -> None:
        if (
            self._heartbeat_every is None
            or tick % self._heartbeat_every != 0
        ):
            return
        self._emit(
            {
                "kind": "cluster-heartbeat",
                "tick": tick,
                "shards": [h.status() for h in self._handles],
            }
        )

    # ------------------------------------------------------------------
    def ingest(self, lines: Iterable[str]) -> None:
        """Route a line stream across the fleet without draining.

        Global sequence numbering continues across calls.  A shard
        crash inside a delivery marks that shard down and schedules
        its restart; subsequent lines for it buffer (or shed) until
        the supervisor readmits it.
        """
        for line in lines:
            self._global_seq += 1
            tick = self._global_seq
            self._supervisor.poll(tick)
            for index in self._router.route(line):
                handle = self._handles[index]
                if handle.state == RUNNING:
                    self._supervisor.deliver(handle, tick, line)
                elif handle.state == DOWN:
                    if not handle.enqueue(tick, line):
                        self._emit(
                            {
                                "kind": "shed",
                                "shard": handle.index,
                                "line": tick,
                                "buffered": len(handle.buffer),
                                "degraded": True,
                            }
                        )
                else:
                    raise ClusterError(
                        f"shard {handle.index} is {handle.state!r}; "
                        "the fleet cannot accept traffic",
                        shard=handle.index,
                    )
            self._heartbeat(tick)

    def serve(self, lines: Iterable[str]) -> ClusterResult:
        """Ingest until the stream ends (or Ctrl-C), then drain."""
        try:
            self.ingest(lines)
        except KeyboardInterrupt:
            pass
        return self.shutdown()

    def shutdown(self) -> ClusterResult:
        """Graceful cluster drain.

        Force-restarts every downed shard (ignoring backoff), flushes
        the degraded-mode buffers, then drains each engine and emits
        per-shard summaries plus a final ``cluster-summary`` record.
        """
        tick = self._global_seq
        for _ in range(_DRAIN_ROUNDS):
            pending = [
                h
                for h in self._handles
                if h.state == DOWN or h.buffer or h.inflight
            ]
            if not pending:
                break
            for handle in pending:
                if handle.state == DOWN:
                    self._supervisor.restart(handle, tick, force=True)
        else:
            raise ClusterError(
                f"cluster drain did not converge after {_DRAIN_ROUNDS} "
                "restart rounds; a shard keeps crashing"
            )
        results = []
        statuses = []
        for handle in self._handles:
            if handle.service is None:
                raise ClusterError(
                    f"shard {handle.index} has no live service at "
                    "drain time",
                    shard=handle.index,
                )
            results.append(handle.service.shutdown())
            handle.state = STOPPED
            statuses.append(handle.status())
        result = ClusterResult(
            results=tuple(results), shards=tuple(statuses)
        )
        self._emit(
            {"kind": "cluster-summary", "summary": result.summary()}
        )
        self._sink.flush()
        return result


# ----------------------------------------------------------------------
# construction / recovery entry points
# ----------------------------------------------------------------------
def _split_config(
    overrides: dict[str, Any]
) -> tuple[dict[str, Any], dict[str, Any]]:
    cluster = {
        key: overrides.pop(key)
        for key in list(overrides)
        if key in _CLUSTER_DEFAULTS
    }
    return cluster, overrides


def _build_handles(
    root: Path,
    config: dict[str, Any],
    *,
    sink: RecordSink,
    crash_factory: Any,
    io_factory: Any = None,
) -> list[ShardHandle]:
    handles = []
    for index in range(int(config["num_shards"])):
        handles.append(
            ShardHandle(
                index,
                shard_directory(root, index),
                buffer_limit=int(config["buffer_limit"]),
                buffer_resume=config["buffer_resume"],
                crash=(
                    crash_factory(index)
                    if crash_factory is not None
                    else None
                ),
                sink=TaggedSink(sink, shard=index),
                io=(
                    io_factory(index)
                    if io_factory is not None
                    else None
                ),
            )
        )
    return handles


def _build_cluster(
    root: Path,
    config: dict[str, Any],
    handles: list[ShardHandle],
    *,
    sink: RecordSink,
) -> ShardedOnlineCluster:
    policy = RetryPolicy(
        max_retries=int(config["max_retries"]),
        base=float(config["backoff_base"]),
        cap=float(config["backoff_cap"]),
    )
    return ShardedOnlineCluster(
        root,
        handles,
        sink=sink,
        cluster_heartbeat_every=config["cluster_heartbeat_every"],
        policy=policy,
    )


def _fresh_reports(count: int) -> tuple[RecoveryReport, ...]:
    return tuple(
        RecoveryReport(
            fresh=True,
            applied_seq=0,
            snapshot_seq=None,
            replayed=0,
            truncated_bytes=0,
        )
        for _ in range(count)
    )


def _create_cluster(
    root: Path,
    *,
    num_shards: int,
    rate: float,
    sink: RecordSink,
    crash_factory: Any,
    io_factory: Any = None,
    **config_overrides: Any,
) -> ShardedOnlineCluster:
    if num_shards < 1:
        raise ValidationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    if (root / _CLUSTER_META).exists():
        raise RecoveryError(
            f"{root} already contains a cluster; open it with "
            "mode='recover' (or `repro cluster-recover`) instead of "
            "re-creating it"
        )
    cluster_overrides, shard_overrides = _split_config(
        dict(config_overrides)
    )
    config = dict(_CLUSTER_DEFAULTS)
    config.update(cluster_overrides)
    config["num_shards"] = int(num_shards)
    config["rate"] = float(rate)
    config["shard_config"] = dict(shard_overrides)
    _write_cluster_meta(root, config)
    handles = _build_handles(
        root,
        config,
        sink=sink,
        crash_factory=crash_factory,
        io_factory=io_factory,
    )
    for handle in handles:
        service, _ = DurableOnlineService.open(
            handle.directory,
            mode="create",
            rate=float(config["rate"]),
            sink=handle.sink,
            crash=handle.crash,
            io=handle.io,
            **shard_overrides,
        )
        handle.attach(service)
    return _build_cluster(root, config, handles, sink=sink)


def _recover_cluster(
    root: Path,
    *,
    sink: RecordSink,
    crash_factory: Any,
    io_factory: Any = None,
) -> tuple[ShardedOnlineCluster, tuple[RecoveryReport, ...]]:
    config = _read_cluster_meta(root)
    handles = _build_handles(
        root,
        config,
        sink=sink,
        crash_factory=crash_factory,
        io_factory=io_factory,
    )
    reports = []
    for handle in handles:
        service, report = DurableOnlineService.open(
            handle.directory,
            mode="recover",
            sink=handle.sink,
            crash=handle.crash,
            io=handle.io,
        )
        handle.acked = service.applied_seq
        handle.attach(service)
        reports.append(report)
    cluster = _build_cluster(root, config, handles, sink=sink)
    return cluster, tuple(reports)


def _check_recorded_fleet(
    root: Path, num_shards: int | None, rate: float | None
) -> None:
    config = _read_cluster_meta(root)
    if num_shards is not None and int(num_shards) != int(
        config["num_shards"]
    ):
        raise RecoveryError(
            f"requested {num_shards} shards but {root} records "
            f"{config['num_shards']}; resharding is not supported "
            "— recover with the recorded shard count"
        )
    if rate is not None and float(rate) != float(config["rate"]):
        raise RecoveryError(
            f"requested rate {float(rate):g} contradicts the "
            f"recorded rate {float(config['rate']):g} in {root}"
        )


def _open_cluster(
    root: str | Path,
    *,
    mode: str = "attach",
    num_shards: int | None = None,
    rate: float | None = None,
    sink: RecordSink | IO[str] | None = None,
    crash_factory: Any = None,
    io_factory: Any = None,
    **config_overrides: Any,
) -> tuple[ShardedOnlineCluster, tuple[RecoveryReport, ...]]:
    check_open_mode(mode)
    root = Path(root)
    base = as_record_sink(sink)
    if mode == "recover":
        check_recover_overrides(config_overrides)
    if mode == "recover" or (
        mode == "attach" and (root / _CLUSTER_META).exists()
    ):
        # Attach tolerates creation-time overrides — they apply only
        # on the creation branch — but still cross-checks the fleet
        # shape against the recorded configuration.
        _check_recorded_fleet(root, num_shards, rate)
        return _recover_cluster(
            root,
            sink=base,
            crash_factory=crash_factory,
            io_factory=io_factory,
        )
    if num_shards is None or rate is None:
        raise RecoveryError(
            f"{root} holds no cluster and no num_shards=/rate= were "
            "given to create one"
        )
    cluster = _create_cluster(
        root,
        num_shards=num_shards,
        rate=rate,
        sink=base,
        crash_factory=crash_factory,
        io_factory=io_factory,
        **config_overrides,
    )
    return cluster, _fresh_reports(cluster.num_shards)


# ----------------------------------------------------------------------
# deprecated pre-unification entry points
# ----------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def create_cluster(
    root: str | Path,
    *,
    num_shards: int,
    rate: float,
    sink: RecordSink | IO[str] | None = None,
    crash_factory: Any = None,
    **config_overrides: Any,
) -> ShardedOnlineCluster:
    """Deprecated: use ``ShardedOnlineCluster.open(root, mode="create")``.

    Kept as a thin shim for one release; returns the bare cluster
    (the unified factory also returns the fresh per-shard
    :class:`RecoveryReport` tuple).
    """
    _deprecated(
        "create_cluster",
        "ShardedOnlineCluster.open(root, mode='create', ...)",
    )
    return _create_cluster(
        Path(root),
        num_shards=num_shards,
        rate=rate,
        sink=as_record_sink(sink),
        crash_factory=crash_factory,
        **config_overrides,
    )


def recover_cluster(
    root: str | Path,
    *,
    sink: RecordSink | IO[str] | None = None,
    crash_factory: Any = None,
) -> tuple[ShardedOnlineCluster, tuple[RecoveryReport, ...]]:
    """Deprecated: use ``ShardedOnlineCluster.open(root, mode="recover")``."""
    _deprecated(
        "recover_cluster",
        "ShardedOnlineCluster.open(root, mode='recover', ...)",
    )
    return _recover_cluster(
        Path(root), sink=as_record_sink(sink), crash_factory=crash_factory
    )


def open_cluster(
    root: str | Path,
    *,
    num_shards: int | None = None,
    rate: float | None = None,
    sink: RecordSink | IO[str] | None = None,
    crash_factory: Any = None,
    **config_overrides: Any,
) -> tuple[ShardedOnlineCluster, tuple[RecoveryReport, ...]]:
    """Deprecated: use ``ShardedOnlineCluster.open(root, mode="attach")``."""
    _deprecated(
        "open_cluster",
        "ShardedOnlineCluster.open(root, mode='attach', ...)",
    )
    return _open_cluster(
        root,
        mode="attach",
        num_shards=num_shards,
        rate=rate,
        sink=sink,
        crash_factory=crash_factory,
        **config_overrides,
    )
