"""Fault-tolerant sharded serving.

One ingest stream, ``N`` independent durable GPS shards: pure CRC32
session-key routing (:mod:`~repro.online.cluster.routing`), per-shard
failover bookkeeping (:mod:`~repro.online.cluster.shard`), a
supervisor that restarts crashed shards with deterministic backoff and
exactly-once reconciliation (:mod:`~repro.online.cluster.supervisor`),
the cluster orchestrator with self-describing on-disk metadata
(:mod:`~repro.online.cluster.cluster`), and real OS-process workers
with deadness/hangness health checks
(:mod:`~repro.online.cluster.process`,
:mod:`~repro.online.cluster.worker`).
"""

from repro.online.cluster.cluster import (
    ClusterResult,
    ShardedOnlineCluster,
    create_cluster,
    open_cluster,
    recover_cluster,
)
from repro.online.cluster.process import (
    ProcessShardSupervisor,
    ShardProcess,
)
from repro.online.cluster.routing import ShardRouter, shard_for
from repro.online.cluster.shard import (
    ShardHandle,
    ShardRecordSink,
    shard_directory,
)
from repro.online.cluster.supervisor import ShardSupervisor

__all__ = [
    "ClusterResult",
    "ProcessShardSupervisor",
    "ShardedOnlineCluster",
    "ShardHandle",
    "ShardProcess",
    "ShardRecordSink",
    "ShardRouter",
    "ShardSupervisor",
    "create_cluster",
    "open_cluster",
    "recover_cluster",
    "shard_directory",
    "shard_for",
]
