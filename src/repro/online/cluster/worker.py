"""Process-mode shard worker: ``python -m repro.online.cluster.worker``.

Runs one durable shard in its own OS process.  The worker opens (or
recovers) the WAL directory, emits the recovery report as its first
output record, then ingests JSONL lines from stdin one at a time —
flushing the output file after every line, so the file's mtime is the
shard's **heartbeat**: a supervisor that sees the mtime go stale while
traffic is flowing knows the worker is hung, not merely idle.  On
stdin EOF the worker drains gracefully and emits the final summary.

The ``--hang-after N`` flag is the chaos harness's hung-shard hook:
after ingesting N lines the worker stops reading and sleeps forever
(heartbeat frozen, process alive) — exactly the failure mode that
liveness checks exist to catch, since ``wait()``/``poll()`` style
deadness checks never fire for it.

Exit codes: ``0`` clean drain, ``2`` usage error, ``3`` recovery
failure.  A SIGKILL mid-ingest needs no cooperation from this code at
all — that is the point of the WAL.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.online.durability.scrub import scrub_directory
from repro.online.durability.service import DurableOnlineService

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-shard-worker",
        description="run one durable GPS shard over stdin JSONL",
    )
    parser.add_argument(
        "--dir", required=True, help="shard WAL directory"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="server rate (required when creating a fresh directory)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output record file (default: stdout); its mtime is the "
        "worker heartbeat",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="snapshot cadence override for fresh directories",
    )
    parser.add_argument(
        "--fsync",
        default=None,
        help="WAL fsync policy override for fresh directories "
        "(always/batch/never/group[:Nms]/budget[:Nms]/async); "
        "recovery always follows the directory's recorded policy",
    )
    parser.add_argument(
        "--hang-after",
        type=int,
        default=None,
        help="test hook: stop reading and sleep forever after N lines",
    )
    parser.add_argument(
        "--scrub",
        action="store_true",
        help="verify and repair WAL/snapshot integrity before "
        "attaching; unrecoverable corruption refuses to start",
    )
    args = parser.parse_args(argv)

    if args.out is not None:
        sink = open(args.out, "a", encoding="utf-8")
    else:
        sink = sys.stdout

    if args.scrub:
        try:
            scrubbed = scrub_directory(Path(args.dir), repair=True)
            scrubbed.raise_if_unrecoverable()
        except ReproError as exc:
            print(f"shard worker: {exc}", file=sys.stderr)
            return 3
        except OSError as exc:
            print(f"shard worker: scrub failed: {exc}", file=sys.stderr)
            return 3
        if not scrubbed.clean:
            sink.write(json.dumps(scrubbed.to_record()) + "\n")
            sink.flush()

    overrides = {}
    if args.snapshot_every is not None:
        overrides["snapshot_every"] = args.snapshot_every
    if args.fsync is not None:
        overrides["fsync"] = args.fsync
    try:
        service, report = DurableOnlineService.open(
            Path(args.dir),
            mode="attach",
            rate=args.rate,
            sink=sink,
            **overrides,
        )
    except ReproError as exc:
        print(f"shard worker: {exc}", file=sys.stderr)
        return 3
    sink.write(json.dumps(report.to_record()) + "\n")
    sink.flush()

    ingested = 0
    for line in sys.stdin:
        service.ingest([line.rstrip("\n")])
        sink.flush()
        ingested += 1
        if args.hang_after is not None and ingested >= args.hang_after:
            # Simulated hang: alive but frozen — the heartbeat (out
            # file mtime) stops advancing and never recovers.
            while True:
                time.sleep(3600)
    service.shutdown()
    sink.flush()
    if sink is not sys.stdout:
        sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
