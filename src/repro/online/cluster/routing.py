"""Deterministic session-key routing for the sharded serving fleet.

The cluster splits one ingest stream across ``N`` independent GPS
shards.  Routing must be a *pure function* of the raw line and the
shard count — nothing else — because the fault-tolerance proof depends
on it: the per-shard substream of any input stream is then fixed, so a
shard that crashes and recovers can be compared ``np.array_equal``
against a fresh uninterrupted run over :func:`ShardRouter.partition`
of the same lines.

Rules, in order:

* an *empty* line (heartbeat tick) broadcasts to every shard — ticks
  advance each service's line clock exactly as they would a single
  server's;
* a ``capacity`` event broadcasts — each shard is an independent GPS
  server and a fleet-wide capacity change applies to each of them;
* any record carrying a session key (``session`` for arrivals,
  ``name`` for join/renegotiate/leave) routes to
  ``crc32(key) % num_shards`` — CRC32 is stable across platforms and
  Python versions, so a cluster restarted elsewhere routes
  identically;
* anything else — unparsable JSON, a record with no session key —
  routes to ``crc32(raw line) % num_shards``: exactly one shard emits
  the ``error`` record and charges its error budget, mirroring the
  single-server behavior.
"""

from __future__ import annotations

import json
import zlib
from typing import Iterable

from repro.errors import ValidationError

__all__ = ["shard_for", "ShardRouter"]


def shard_for(key: str, num_shards: int) -> int:
    """The shard index session ``key`` hashes to (stable CRC32)."""
    if num_shards < 1:
        raise ValidationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    return (zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF) % num_shards


class ShardRouter:
    """Map raw JSONL ingest lines onto shard indices.

    Stateless apart from the shard count; :meth:`route` returns the
    target indices for one line and :meth:`partition` materializes the
    per-shard substreams of a whole stream (the baseline the chaos
    harness compares recovered shards against).
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self._num_shards = int(num_shards)
        self._all = tuple(range(self._num_shards))

    @property
    def num_shards(self) -> int:
        """Number of shards lines are routed across."""
        return self._num_shards

    def session_key(self, line: str) -> str | None:
        """The session key a line routes by, or ``None`` for broadcast
        / keyless lines.

        Raises nothing: a malformed line simply has no key.
        """
        stripped = line.strip()
        if not stripped:
            return None
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        key = record.get("session", record.get("name"))
        if isinstance(key, str):
            return key
        return None

    def route(self, line: str) -> tuple[int, ...]:
        """Target shard indices for one raw line (1 shard, or all)."""
        stripped = line.strip()
        if not stripped:
            return self._all
        key = self.session_key(line)
        if key is not None:
            return (shard_for(key, self._num_shards),)
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            record = None
        if isinstance(record, dict) and record.get("kind") == "capacity":
            return self._all
        # Keyless / malformed: exactly one shard owns the error record.
        return (shard_for(stripped, self._num_shards),)

    def partition(
        self, lines: Iterable[str]
    ) -> tuple[list[str], ...]:
        """Split a stream into its per-shard substreams.

        Pure: ``partition(lines)[i]`` is exactly the sequence of lines
        shard ``i`` ingests when the cluster routes ``lines``, so a
        fresh single service over it is the equivalence baseline for
        shard ``i``.
        """
        out: tuple[list[str], ...] = tuple(
            [] for _ in range(self._num_shards)
        )
        for line in lines:
            for index in self.route(line):
                out[index].append(line)
        return out

    def assignments(
        self, lines: Iterable[str]
    ) -> list[tuple[int, tuple[int, ...]]]:
        """``(global_seq, shard_targets)`` for every line, 1-based.

        The cross-shard accounting oracle: the chaos harness checks
        that the union of applied ``(shard, local_seq)`` pairs covers
        every global sequence number exactly once per target, with no
        gaps or duplicates.
        """
        return [
            (seq, self.route(line))
            for seq, line in enumerate(lines, start=1)
        ]
