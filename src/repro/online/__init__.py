"""Online streaming GPS engine with live E.B.B. admission control.

The offline simulators materialize a fixed population over a fixed
horizon; this package is the *online* counterpart the paper's
call-admission story asks for:

* :mod:`repro.online.events` — the five-kind event model (capacity,
  join, renegotiate, arrival, leave), a stable heap-based
  :class:`~repro.online.events.EventQueue`, and lossless JSONL trace
  record/replay;
* :mod:`repro.online.session` — the O(active sessions) session
  registry with churn;
* :mod:`repro.online.engine` — the event-driven
  :class:`~repro.online.engine.StreamingGPSServer`, sharing the exact
  water-filling kernel with :mod:`repro.sim.fluid` so replayed traces
  match offline runs bit for bit, and the
  :class:`~repro.online.engine.OnlineResult` summary;
* :mod:`repro.online.admission` — the stateful
  :class:`~repro.online.admission.AdmissionController` re-running the
  feasible ordering and the Theorem 10/11 tail bounds on every
  join/renegotiate request;
* :mod:`repro.online.service` — the long-running JSONL ingestion loop
  behind ``repro serve``, with graceful drain on shutdown, a bounded
  error budget, backlog-watermark load shedding and periodic
  heartbeat records;
* :mod:`repro.online.records` — the typed
  :class:`~repro.online.records.RecordSink` protocol every component
  reports through (JSONL terminal sink, tag-stamping adapter, null
  sink), with the record schema documented in ``docs/ONLINE.md``;
* :mod:`repro.online.durability` — crash safety: the checksummed
  segmented write-ahead log, atomic verified snapshots, and the
  recovery path behind ``repro serve --wal`` / ``repro recover``;
* :mod:`repro.online.cluster` — fault-tolerant sharded serving: pure
  CRC32 session-key routing across N durable shards, a shard
  supervisor with health checks, bounded-backoff failover and
  exactly-once reconciliation, degraded-mode buffering with watermark
  shedding, and real OS-process workers behind
  ``repro serve --shards`` / ``repro cluster-recover``.

Bridge in from a scenario with
:meth:`repro.scenario.Scenario.to_event_stream`.
"""

from repro.online.admission import AdmissionController, AdmissionDecision
from repro.online.cluster import (
    ClusterResult,
    ShardedOnlineCluster,
    ShardRouter,
    ShardSupervisor,
    create_cluster,
    open_cluster,
    recover_cluster,
    shard_for,
)
from repro.online.durability import (
    DurableOnlineService,
    RecoveryReport,
    SnapshotStore,
    WriteAheadLog,
    create_durable_service,
    open_durable_service,
    recover_durable_service,
)
from repro.online.engine import OnlineResult, StreamingGPSServer
from repro.online.records import (
    JsonlSink,
    NullSink,
    RecordSink,
    TaggedSink,
    as_record_sink,
)
from repro.online.events import (
    ArrivalEvent,
    CapacityEvent,
    Event,
    EventQueue,
    Renegotiate,
    SessionJoin,
    SessionLeave,
    event_from_record,
    event_to_record,
    read_event_stream,
    write_event_stream,
)
from repro.online.service import OnlineService
from repro.online.session import SessionInfo, SessionRegistry

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "OnlineResult",
    "StreamingGPSServer",
    "ArrivalEvent",
    "CapacityEvent",
    "Event",
    "EventQueue",
    "Renegotiate",
    "SessionJoin",
    "SessionLeave",
    "event_from_record",
    "event_to_record",
    "read_event_stream",
    "write_event_stream",
    "OnlineService",
    "SessionInfo",
    "SessionRegistry",
    "RecordSink",
    "JsonlSink",
    "NullSink",
    "TaggedSink",
    "as_record_sink",
    "DurableOnlineService",
    "RecoveryReport",
    "SnapshotStore",
    "WriteAheadLog",
    "create_durable_service",
    "open_durable_service",
    "recover_durable_service",
    "ClusterResult",
    "ShardedOnlineCluster",
    "ShardRouter",
    "ShardSupervisor",
    "create_cluster",
    "open_cluster",
    "recover_cluster",
    "shard_for",
]
