"""Event-driven streaming fluid GPS server.

The offline engines (:mod:`repro.sim.fluid`, :mod:`repro.sim.batch`)
materialize a fixed population over a fixed horizon as full ``(N, T)``
/ ``(B, N, T)`` arrays.  :class:`StreamingGPSServer` is the online
counterpart: it consumes an ordered stream of
:mod:`repro.online.events` — session churn, arrivals, capacity changes
— and keeps only O(active sessions) state (the
:class:`repro.online.session.SessionRegistry` vectors).  Horizons are
unbounded; memory does not grow with time unless per-slot recording is
explicitly requested.

Each slot is served by the *same* water-filling kernel as the offline
engines (``repro.sim.fluid._batch_water_fill`` through the identical
``work = backlog + arrivals`` / ``clip(work - served, 0, None)``
sequence of ``FluidGPSServer._step_fast``), so replaying an event
stream produced by :meth:`repro.scenario.Scenario.to_event_stream`
reproduces the offline backlog/served trajectories *bit for bit* —
``np.array_equal``, not ``allclose`` — which the equivalence suite in
``tests/online/test_engine.py`` asserts.

Slot semantics match the offline convention: arrivals stamped inside
slot ``t`` are available at the start of the slot; the slot is served
when the clock advances past it (an event stamped in a later slot,
:meth:`StreamingGPSServer.advance_to`, or :meth:`~StreamingGPSServer.drain`).
With an :class:`repro.online.admission.AdmissionController` attached,
join/renegotiate events are gated and every decision is recorded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import AdmissionError, ValidationError
from repro.online.admission import AdmissionController
from repro.online.events import (
    ArrivalEvent,
    CapacityEvent,
    Event,
    Renegotiate,
    SessionJoin,
    SessionLeave,
)
from repro.online.session import SessionRegistry
from repro.sim.fluid import busy_gps_slot_allocation
from repro.utils.validation import check_positive

__all__ = ["StreamingGPSServer", "OnlineResult"]

_EPS = 1e-12


@dataclass(frozen=True)
class OnlineResult:
    """Summary of one streaming run (the ``repro.sim.results.SimResult``
    protocol).

    Unlike the offline results this holds no dense per-session traces —
    only the per-slot *total* backlog, the admission decisions and the
    per-session cumulative stats.  When the engine was constructed with
    ``record_traces=True`` the per-slot per-session snapshots are
    attached too (testing/small runs only; they grow with the horizon).
    """

    rate: float
    num_slots: int
    events_processed: int
    event_counts: dict[str, int]
    decisions: tuple[dict[str, Any], ...]
    accepted: int
    rejected: int
    total_backlog_trace: np.ndarray
    total_arrived: float
    total_served: float
    dropped_residual: float
    session_stats: dict[str, dict[str, Any]]
    active_sessions: tuple[str, ...]
    peak_active_sessions: int
    drained: bool | None = None
    backlog_snapshots: tuple[np.ndarray, ...] | None = field(
        default=None, repr=False
    )
    served_snapshots: tuple[np.ndarray, ...] | None = field(
        default=None, repr=False
    )

    @property
    def num_sessions(self) -> int:
        """Number of sessions active at the end of the run."""
        return len(self.active_sessions)

    def final_total_backlog(self) -> float:
        """System backlog at the end of the run."""
        if self.total_backlog_trace.size == 0:
            return 0.0
        return float(self.total_backlog_trace[-1])

    def _snapshot_matrix(
        self, snapshots: tuple[np.ndarray, ...] | None, label: str
    ) -> np.ndarray:
        if snapshots is None:
            raise ValidationError(
                f"no per-session {label} snapshots were recorded; "
                "construct the engine with record_traces=True"
            )
        sizes = {snap.size for snap in snapshots}
        if len(sizes) > 1:
            raise ValidationError(
                f"{label} snapshots are ragged (session churn during "
                "the run); per-slot snapshots cannot form a matrix"
            )
        return np.stack(snapshots).T if snapshots else np.zeros((0, 0))

    def backlog_matrix(self) -> np.ndarray:
        """The offline-style ``(N, T)`` backlog trajectory.

        Requires ``record_traces=True`` and a churn-free population;
        compares bit-for-bit with
        :attr:`repro.sim.fluid.GPSSimResult.backlog` on a replayed
        :meth:`~repro.scenario.Scenario.to_event_stream` trace.
        """
        return self._snapshot_matrix(self.backlog_snapshots, "backlog")

    def served_matrix(self) -> np.ndarray:
        """The offline-style ``(N, T)`` service trajectory (see
        :meth:`backlog_matrix`)."""
        return self._snapshot_matrix(self.served_snapshots, "served")

    # ------------------------------------------------------------------
    # unified result protocol (repro.sim.results.SimResult)
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-serializable scalar summary of the run."""
        return {
            "kind": "online_gps",
            "rate": self.rate,
            "num_slots": self.num_slots,
            "events_processed": self.events_processed,
            "event_counts": dict(self.event_counts),
            "admission_accepted": self.accepted,
            "admission_rejected": self.rejected,
            "num_sessions": self.num_sessions,
            "peak_active_sessions": self.peak_active_sessions,
            "total_arrived": self.total_arrived,
            "total_served": self.total_served,
            "dropped_residual": self.dropped_residual,
            "final_total_backlog": self.final_total_backlog(),
            "max_total_backlog": (
                float(self.total_backlog_trace.max())
                if self.total_backlog_trace.size
                else 0.0
            ),
            "drained": self.drained,
        }

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-serializable dump: summary plus traces/records."""
        payload = self.summary()
        payload["total_backlog_trace"] = self.total_backlog_trace.tolist()
        payload["decisions"] = [dict(d) for d in self.decisions]
        payload["session_stats"] = {
            name: dict(stats)
            for name, stats in self.session_stats.items()
        }
        payload["active_sessions"] = list(self.active_sessions)
        if self.backlog_snapshots is not None:
            payload["backlog_snapshots"] = [
                snap.tolist() for snap in self.backlog_snapshots
            ]
        if self.served_snapshots is not None:
            payload["served_snapshots"] = [
                snap.tolist() for snap in self.served_snapshots
            ]
        return payload


class StreamingGPSServer:
    """Event-driven fluid GPS server with O(active sessions) state.

    Parameters
    ----------
    rate:
        Nominal server capacity per slot (overridable per window by
        :class:`repro.online.events.CapacityEvent`).
    admission:
        Optional :class:`repro.online.admission.AdmissionController`.
        When attached, join/renegotiate events are gated: rejected
        joins never enter the registry, rejected renegotiations keep
        the old contract.  Without it every join is accepted.
    record_traces:
        Record per-slot per-session backlog/served snapshots (memory
        grows with the horizon; for tests and small runs).

    Events must be fed in non-decreasing slot order (route out-of-order
    streams through :class:`repro.online.events.EventQueue` first).
    """

    def __init__(
        self,
        *,
        rate: float,
        admission: AdmissionController | None = None,
        record_traces: bool = False,
    ) -> None:
        check_positive("rate", rate)
        if admission is not None and admission.rate != float(rate):
            raise ValidationError(
                f"admission controller rate {admission.rate} does not "
                f"match engine rate {float(rate)}"
            )
        self._nominal_rate = float(rate)
        self._capacity = float(rate)
        self._registry = SessionRegistry()
        self._admission = admission
        self._clock = 0
        self._events_processed = 0
        self._event_counts: dict[str, int] = {}
        self._decisions: list[dict[str, Any]] = []
        self._accepted = 0
        self._rejected = 0
        self._total_backlog_trace: list[float] = []
        self._dropped_residual = 0.0
        self._record_traces = bool(record_traces)
        self._backlog_snapshots: list[np.ndarray] = []
        self._served_snapshots: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """The next slot to be served (slots ``0..clock-1`` are closed)."""
        return self._clock

    @property
    def rate(self) -> float:
        """Nominal server capacity per slot."""
        return self._nominal_rate

    @property
    def capacity(self) -> float:
        """Capacity currently in force (differs from :attr:`rate` inside
        a degraded window)."""
        return self._capacity

    @property
    def events_processed(self) -> int:
        """Number of events applied so far."""
        return self._events_processed

    @property
    def num_active(self) -> int:
        """Number of active sessions."""
        return self._registry.num_active

    @property
    def active_sessions(self) -> tuple[str, ...]:
        """Active session names, in join order."""
        return self._registry.names

    @property
    def admission(self) -> AdmissionController | None:
        """The attached admission controller, if any."""
        return self._admission

    def total_backlog(self) -> float:
        """Current system backlog (excluding the open slot's pending
        arrivals).  O(1) — a cached registry scalar."""
        return self._registry.total_backlog()

    def session_backlog(self, name: str) -> float:
        """Current backlog of one active session."""
        return float(
            self._registry.backlog[self._registry.index_of(name)]
        )

    def unfinished_work(self) -> float:
        """Backlog plus the open slot's pending arrivals (drain target).
        O(1) — cached registry scalars."""
        return (
            self._registry.total_backlog()
            + self._registry.total_pending()
        )

    # ------------------------------------------------------------------
    # slot machinery
    # ------------------------------------------------------------------
    def _serve_slot(self) -> None:
        """Close the current slot: water-fill pending work, advance.

        O(busy), not O(active): only the busy slice is gathered and
        water-filled.  Idle sessions hold exactly zero work, and the
        kernel's sequential reductions are invariant to exact zeros
        (:func:`repro.sim.fluid.busy_gps_slot_allocation`), so the
        gathered allocation is bit-for-bit the dense one — idle
        sessions' φ mass never enters the sharing denominator, exactly
        as eq. 1's work-conserving redistribution prescribes.
        """
        registry = self._registry
        busy = registry.busy_indices()
        if self._record_traces:
            # commit_slot rewrites the busy index buffer in place; the
            # trace block below still needs this slot's gather order.
            busy = busy.copy()
        if busy.size:
            # Mirrors FluidGPSServer._step_fast operation for
            # operation; same kernel, same clip — the bit-for-bit
            # equivalence guarantee rests on this block.
            work = registry.backlog[busy] + registry.pending[busy]
            served = busy_gps_slot_allocation(
                work, registry.phis[busy], self._capacity
            )
            new_backlog = np.clip(work - served, 0.0, None)
            total = registry.commit_slot(busy, new_backlog, served)
        else:
            served = np.zeros(0)
            total = registry.commit_slot(busy, served, served)
        self._total_backlog_trace.append(total)
        if self._record_traces:
            self._backlog_snapshots.append(registry.backlog.copy())
            dense_served = np.zeros(registry.num_active)
            dense_served[busy] = served
            self._served_snapshots.append(dense_served)
        self._clock += 1

    def advance_to(self, slot: int) -> None:
        """Serve every slot up to (excluding) ``slot``.

        After the call, ``clock == slot`` and all arrivals stamped
        before ``slot`` have been offered service.
        """
        if slot < self._clock:
            raise ValidationError(
                f"cannot advance to slot {slot}: clock is already at "
                f"{self._clock} (events must be slot-monotone)"
            )
        while self._clock < slot:
            self._serve_slot()

    def drain(self, *, max_slots: int = 100_000) -> tuple[int, bool]:
        """Serve empty slots until the system empties (graceful drain).

        Returns ``(slots_used, drained)``; ``drained`` is False when
        ``max_slots`` elapsed with backlog still standing (a capacity-0
        window, for example).
        """
        check_positive("max_slots", max_slots)
        used = 0
        while used < max_slots:
            if self.unfinished_work() <= _EPS:
                return used, True
            self._serve_slot()
            used += 1
        return used, self.unfinished_work() <= _EPS

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------
    def process(self, event: Event) -> dict[str, Any]:
        """Apply one event; returns its JSON-serializable outcome record.

        The record always carries ``kind``, ``time``, ``slot``,
        ``clock`` (after any implied slot advance) and
        ``total_backlog``; joins/renegotiations add the admission
        ``decision``, leaves add the dropped ``residual``.
        """
        slot = self._event_slot(event)
        self.advance_to(slot)
        kind = event.kind
        self._events_processed += 1
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        record: dict[str, Any] = {
            "kind": kind,
            "time": event.time,
            "slot": slot,
        }
        if isinstance(event, CapacityEvent):
            self._capacity = float(event.capacity)
            record["capacity"] = self._capacity
        elif isinstance(event, SessionJoin):
            record.update(self._process_join(event, slot))
        elif isinstance(event, Renegotiate):
            record.update(self._process_renegotiate(event))
        elif isinstance(event, ArrivalEvent):
            self._registry.add_arrival(event.session, event.amount)
            record["session"] = event.session
            record["amount"] = event.amount
        elif isinstance(event, SessionLeave):
            record.update(self._process_leave(event, slot))
        else:
            raise ValidationError(
                f"unsupported event type: {type(event).__name__}"
            )
        record["clock"] = self._clock
        record["total_backlog"] = self.total_backlog()
        return record

    def _event_slot(self, event: Event) -> int:
        time = event.time
        if not math.isfinite(time) or time < 0.0:
            raise ValidationError(
                f"event time must be finite and >= 0, got {time}"
            )
        return int(math.floor(time))

    def _process_join(
        self, event: SessionJoin, slot: int
    ) -> dict[str, Any]:
        out: dict[str, Any] = {"session": event.name}
        if event.name in self._registry:
            raise AdmissionError(
                f"session {event.name!r} is already active"
            )
        if self._admission is not None:
            decision = self._admission.request_join(
                event.name,
                ebb=event.ebb,
                phi=event.phi,
                target=event.target,
            )
            decision_record = decision.to_record()
            decision_record["slot"] = slot
            self._decisions.append(decision_record)
            out["accepted"] = decision.accepted
            out["decision"] = decision_record
            if decision.accepted:
                self._accepted += 1
            else:
                self._rejected += 1
                return out
        else:
            out["accepted"] = True
            self._accepted += 1
        self._registry.join(
            event.name,
            event.phi,
            ebb=event.ebb,
            target=event.target,
            at=slot,
        )
        return out

    def _process_renegotiate(self, event: Renegotiate) -> dict[str, Any]:
        out: dict[str, Any] = {"session": event.name}
        self._registry.index_of(event.name)  # raises on unknown names
        if self._admission is not None:
            decision = self._admission.request_renegotiate(
                event.name,
                phi=event.phi,
                ebb=event.ebb,
                target=event.target,
            )
            decision_record = decision.to_record()
            decision_record["slot"] = self._clock
            self._decisions.append(decision_record)
            out["accepted"] = decision.accepted
            out["decision"] = decision_record
            if decision.accepted:
                self._accepted += 1
            else:
                self._rejected += 1
                return out
        else:
            out["accepted"] = True
            self._accepted += 1
        self._registry.renegotiate(
            event.name, phi=event.phi, ebb=event.ebb, target=event.target
        )
        return out

    def _process_leave(
        self, event: SessionLeave, slot: int
    ) -> dict[str, Any]:
        info = self._registry.leave(event.name, at=slot)
        if self._admission is not None and (
            event.name in self._admission.admitted_names
        ):
            self._admission.leave(event.name)
        self._dropped_residual += info.residual
        return {
            "session": event.name,
            "residual": info.residual,
            "arrived": info.arrived,
            "served": info.served,
        }

    # ------------------------------------------------------------------
    # durable state export/import
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the complete serving state.

        Everything a restart needs to continue the run bit-for-bit:
        the clock/capacity, every counter and trace backing
        :meth:`result`, the registry vectors, and (when attached) the
        admission controller with its
        :class:`repro.analysis.context.AnalysisContext` version
        counters and exact accumulators.  ``from_state(export_state())``
        followed by any event sequence produces trajectories
        ``np.array_equal`` to the uninterrupted engine's.
        """
        from repro.sim.results import to_jsonable

        return {
            "rate": self._nominal_rate,
            "capacity": self._capacity,
            "clock": self._clock,
            "events_processed": self._events_processed,
            "event_counts": dict(self._event_counts),
            "decisions": to_jsonable(self._decisions),
            "accepted": self._accepted,
            "rejected": self._rejected,
            "total_backlog_trace": [
                float(v) for v in self._total_backlog_trace
            ],
            "dropped_residual": self._dropped_residual,
            "record_traces": self._record_traces,
            "backlog_snapshots": [
                snap.tolist() for snap in self._backlog_snapshots
            ],
            "served_snapshots": [
                snap.tolist() for snap in self._served_snapshots
            ],
            "registry": self._registry.export_state(),
            "admission": (
                None
                if self._admission is None
                else self._admission.export_state()
            ),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StreamingGPSServer":
        """Rebuild an engine from an :meth:`export_state` snapshot."""
        admission = (
            None
            if state["admission"] is None
            else AdmissionController.from_state(state["admission"])
        )
        out = cls(
            rate=float(state["rate"]),
            admission=admission,
            record_traces=bool(state["record_traces"]),
        )
        out._capacity = float(state["capacity"])
        out._clock = int(state["clock"])
        out._events_processed = int(state["events_processed"])
        out._event_counts = {
            str(k): int(v) for k, v in state["event_counts"].items()
        }
        out._decisions = [dict(d) for d in state["decisions"]]
        out._accepted = int(state["accepted"])
        out._rejected = int(state["rejected"])
        out._total_backlog_trace = [
            float(v) for v in state["total_backlog_trace"]
        ]
        out._dropped_residual = float(state["dropped_residual"])
        out._backlog_snapshots = [
            np.asarray(snap, dtype=float)
            for snap in state["backlog_snapshots"]
        ]
        out._served_snapshots = [
            np.asarray(snap, dtype=float)
            for snap in state["served_snapshots"]
        ]
        out._registry = SessionRegistry.from_state(state["registry"])
        return out

    # ------------------------------------------------------------------
    # whole-stream conveniences
    # ------------------------------------------------------------------
    def replay(
        self,
        events,
        *,
        horizon: int | None = None,
        drain: bool = False,
        max_drain_slots: int = 100_000,
    ) -> OnlineResult:
        """Process an iterable of events, then finish the run.

        ``horizon`` serves every slot up to it after the stream ends
        (matching an offline run of that length); ``drain`` then
        serves further empty slots until the backlog clears.
        """
        for event in events:
            self.process(event)
        drained: bool | None = None
        if horizon is not None:
            self.advance_to(horizon)
        elif not drain:
            # Close the last open slot so stamped arrivals are served.
            if self._registry.total_pending() > _EPS:
                self._serve_slot()
        if drain:
            _, drained = self.drain(max_slots=max_drain_slots)
        return self.result(drained=drained)

    def result(self, *, drained: bool | None = None) -> OnlineResult:
        """Snapshot the run as an :class:`OnlineResult`."""
        registry = self._registry
        stats = registry.stats()
        return OnlineResult(
            rate=self._nominal_rate,
            num_slots=self._clock,
            events_processed=self._events_processed,
            event_counts=dict(self._event_counts),
            decisions=tuple(self._decisions),
            accepted=self._accepted,
            rejected=self._rejected,
            total_backlog_trace=np.asarray(
                self._total_backlog_trace, dtype=float
            ),
            total_arrived=float(registry.arrived.sum())
            + sum(
                info["arrived"]
                for info in stats.values()
                if info["left_at"] is not None
            ),
            total_served=float(registry.served.sum())
            + sum(
                info["served"]
                for info in stats.values()
                if info["left_at"] is not None
            ),
            dropped_residual=self._dropped_residual,
            session_stats=stats,
            active_sessions=registry.names,
            peak_active_sessions=registry.peak_active,
            drained=drained,
            backlog_snapshots=(
                tuple(self._backlog_snapshots)
                if self._record_traces
                else None
            ),
            served_snapshots=(
                tuple(self._served_snapshots)
                if self._record_traces
                else None
            ),
        )
