"""Live E.B.B. admission control for the streaming GPS engine.

The paper motivates its statistical bounds with exactly this use case:
a session arrives declaring an E.B.B. characterization and a
``(d_max, epsilon)`` QoS target, and the server must decide *now*
whether the whole population still meets every target.  The
:class:`AdmissionController` is a thin, counter-keeping façade over a
long-lived :class:`repro.analysis.context.AnalysisContext`, which owns
the admitted declarations and runs the decision machinery:

* the accept/reject *gate* is condition for condition
  :func:`repro.analysis.admission.admissible` (stability, then each
  session's RPPS share against its Theorem 10/15 delay bound).  In the
  default incremental mode the context answers each request in
  ``O(log N)`` — it patches the ratio ordering and the exact
  aggregate-rate accumulator per membership event and compares the
  common RPPS share multiplier against cached per-session critical
  rates — with decisions byte-identical to the from-scratch scan
  (``incremental=False``);
* the *diagnostics* re-derive the feasible ordering (eq. 4) and the
  feasible partition with the joining session's Theorem 11 tail bound
  (the sharper partition-based bound of Section 5), attached to every
  decision so an operator can see which bound was violated and by how
  much.

Decisions are returned as typed
:class:`repro.analysis.admission.AdmissionDecision` records
(JSON-serializable via ``AdmissionDecision.to_record``) rather than
booleans; a rejected decision can be raised as
:class:`repro.errors.AdmissionError` via
``AdmissionDecision.raise_if_rejected``.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.admission import AdmissionDecision, QoSTarget
from repro.analysis.context import AnalysisContext
from repro.core.ebb import EBB
from repro.errors import AdmissionError, ValidationError
from repro.utils.validation import check_positive

__all__ = ["AdmissionDecision", "AdmissionController"]


class AdmissionController:
    """Stateful call-admission control over one GPS server.

    Parameters
    ----------
    rate:
        The server rate the declarations share.
    discrete:
        Evaluate the discrete-time variants of the bounds (matches the
        slotted simulators); forwarded to
        :func:`repro.analysis.admission.meets_target`.
    diagnostics:
        Attach feasible-ordering / feasible-partition / Theorem 11
        details to every decision.  Costs one partition build plus one
        bound optimization per request; switch off for very large
        populations where only the gate matters.
    incremental:
        Maintain the context's ``O(log N)`` incremental gate state
        (default).  ``False`` re-runs the full stability + Theorem
        10/15 scan from scratch on every request — the reference path
        the parity tests compare against.
    """

    def __init__(
        self,
        *,
        rate: float,
        discrete: bool = True,
        diagnostics: bool = True,
        incremental: bool = True,
    ) -> None:
        check_positive("rate", rate)
        self._context = AnalysisContext(
            rate, discrete=discrete, incremental=incremental
        )
        self._diagnostics = bool(diagnostics)
        self._decisions = 0
        self._accepted = 0

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """The server rate."""
        return self._context.rate

    @property
    def num_admitted(self) -> int:
        """Number of currently admitted sessions."""
        return len(self._context)

    @property
    def admitted_names(self) -> tuple[str, ...]:
        """Names of the admitted sessions, in admission order."""
        return self._context.names

    @property
    def total_rho(self) -> float:
        """Aggregate declared upper rate of the admitted set."""
        return self._context.total_rho

    @property
    def context(self) -> AnalysisContext:
        """The underlying analysis context (shared bound caches)."""
        return self._context

    def declarations(self) -> list[tuple[str, EBB, float, QoSTarget]]:
        """``(name, ebb, phi, target)`` per admitted session, in order."""
        out: list[tuple[str, EBB, float, QoSTarget]] = []
        for declaration in self._context.declarations():
            assert declaration.target is not None
            out.append(
                (
                    declaration.name,
                    declaration.ebb,
                    declaration.phi,
                    declaration.target,
                )
            )
        return out

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def _record(self, decision: AdmissionDecision) -> AdmissionDecision:
        self._decisions += 1
        if decision.accepted:
            self._accepted += 1
        return decision

    def _missing(
        self, action: str, name: str, ebb: EBB | None, target: QoSTarget | None
    ) -> AdmissionDecision:
        missing = [
            label
            for label, value in (("ebb", ebb), ("target", target))
            if value is None
        ]
        return self._record(
            AdmissionDecision(
                accepted=False,
                session=name,
                action=action,
                reason=(
                    "admission control requires an E.B.B. characterization "
                    f"and a QoS target; missing: {', '.join(missing)}"
                ),
                violated="missing_declaration",
            )
        )

    def request_join(
        self,
        name: str,
        *,
        ebb: EBB | None,
        phi: float,
        target: QoSTarget | None,
    ) -> AdmissionDecision:
        """Decide a join request; commits the session when accepted."""
        if not name:
            raise ValidationError("session name must be non-empty")
        if name in self._context:
            raise AdmissionError(
                f"session {name!r} is already admitted"
            )
        check_positive("phi", phi)
        if ebb is None or target is None:
            return self._missing("join", name, ebb, target)
        return self._record(
            self._context.decide_join(
                name,
                ebb,
                float(phi),
                target,
                diagnostics=self._diagnostics,
            )
        )

    def request_renegotiate(
        self,
        name: str,
        *,
        phi: float | None = None,
        ebb: EBB | None = None,
        target: QoSTarget | None = None,
    ) -> AdmissionDecision:
        """Decide a renegotiation; commits the new contract when accepted.

        Unset fields keep the session's current declaration.  A
        rejected renegotiation leaves the previous contract in force.
        """
        if name not in self._context:
            raise AdmissionError(
                f"cannot renegotiate unknown session {name!r}"
            )
        return self._record(
            self._context.decide_update(
                name,
                ebb=ebb,
                phi=float(phi) if phi is not None else None,
                target=target,
                diagnostics=self._diagnostics,
            )
        )

    def leave(self, name: str) -> None:
        """Forget a departed session (frees its rate for future joins)."""
        self._context.remove(name)

    # ------------------------------------------------------------------
    # durable state export/import
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the controller + its context."""
        return {
            "diagnostics": self._diagnostics,
            "decisions": self._decisions,
            "accepted": self._accepted,
            "context": self._context.export_state(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "AdmissionController":
        """Rebuild a controller from an :meth:`export_state` snapshot.

        The restored controller issues byte-identical decisions: the
        context import preserves the exact aggregate-rate partials,
        the cached per-session critical rates, and the version
        counters its caches are keyed on.
        """
        out = cls.__new__(cls)
        out._context = AnalysisContext.from_state(state["context"])
        out._diagnostics = bool(state["diagnostics"])
        out._decisions = int(state["decisions"])
        out._accepted = int(state["accepted"])
        return out

    def summary(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the controller state."""
        return {
            "kind": "admission_controller",
            "server_rate": self.rate,
            "num_admitted": self.num_admitted,
            "total_rho": self.total_rho,
            "offered_load": self.total_rho / self.rate,
            "decisions": self._decisions,
            "accepted": self._accepted,
            "rejected": self._decisions - self._accepted,
        }
