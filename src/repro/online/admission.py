"""Live E.B.B. admission control for the streaming GPS engine.

The paper motivates its statistical bounds with exactly this use case:
a session arrives declaring an E.B.B. characterization and a
``(d_max, epsilon)`` QoS target, and the server must decide *now*
whether the whole population still meets every target.  The
:class:`AdmissionController` keeps the admitted declarations as state
and, on every join/renegotiate request, re-runs the offline decision
machinery over the candidate population:

* the accept/reject *gate* mirrors :func:`repro.core.admission.admissible`
  condition for condition (stability, then each session's RPPS share
  against its Theorem 10/15 delay bound), so controller decisions are
  provably consistent with the offline procedure on the same state;
* the *diagnostics* re-derive the feasible ordering (eq. 4) and the
  feasible partition with the joining session's Theorem 11 tail bound
  (the sharper partition-based bound of Section 5), attached to every
  decision so an operator can see which bound was violated and by how
  much.

Decisions are returned as typed :class:`AdmissionDecision` records
(JSON-serializable via :meth:`AdmissionDecision.to_record`) rather than
booleans; a rejected decision can be raised as
:class:`repro.errors.AdmissionError` via
:meth:`AdmissionDecision.raise_if_rejected`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.admission import QoSTarget, meets_target
from repro.core.ebb import EBB
from repro.core.feasible import (
    FeasibleOrderingError,
    feasible_partition,
    find_feasible_ordering,
)
from repro.errors import AdmissionError, ReproError, ValidationError
from repro.utils.validation import check_positive

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one admission request.

    Attributes
    ----------
    accepted:
        Whether the request was admitted (and committed).
    session:
        The requesting session's name.
    action:
        ``"join"`` or ``"renegotiate"``.
    reason:
        One human-readable sentence.
    violated:
        ``None`` when accepted; otherwise which check failed:
        ``"missing_declaration"``, ``"stability"`` or ``"delay_bound"``.
    details:
        JSON-serializable diagnostics: offered load, the feasible
        ordering/partition of the candidate set, the violating
        session's granted rate and bound value, and the joining
        session's Theorem 11 tail-bound evaluation when available.
    """

    accepted: bool
    session: str
    action: str
    reason: str
    violated: str | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the decision."""
        return {
            "accepted": self.accepted,
            "session": self.session,
            "action": self.action,
            "reason": self.reason,
            "violated": self.violated,
            "details": dict(self.details),
        }

    def raise_if_rejected(self) -> "AdmissionDecision":
        """Return self when accepted; raise :class:`AdmissionError` when not."""
        if not self.accepted:
            raise AdmissionError(
                f"admission rejected for session {self.session!r}: "
                f"{self.reason}",
                decision=self,
            )
        return self


@dataclass(frozen=True)
class _Declaration:
    name: str
    ebb: EBB
    phi: float
    target: QoSTarget


class AdmissionController:
    """Stateful call-admission control over one GPS server.

    Parameters
    ----------
    rate:
        The server rate the declarations share.
    discrete:
        Evaluate the discrete-time variants of the bounds (matches the
        slotted simulators); forwarded to
        :func:`repro.core.admission.meets_target`.
    diagnostics:
        Attach feasible-ordering / feasible-partition / Theorem 11
        details to every decision.  Costs one partition build plus one
        bound optimization per request; switch off for very large
        populations where only the gate matters.
    """

    def __init__(
        self,
        *,
        rate: float,
        discrete: bool = True,
        diagnostics: bool = True,
    ) -> None:
        check_positive("rate", rate)
        self._rate = float(rate)
        self._discrete = bool(discrete)
        self._diagnostics = bool(diagnostics)
        self._admitted: dict[str, _Declaration] = {}
        self._decisions = 0
        self._accepted = 0

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """The server rate."""
        return self._rate

    @property
    def num_admitted(self) -> int:
        """Number of currently admitted sessions."""
        return len(self._admitted)

    @property
    def admitted_names(self) -> tuple[str, ...]:
        """Names of the admitted sessions, in admission order."""
        return tuple(self._admitted)

    @property
    def total_rho(self) -> float:
        """Aggregate declared upper rate of the admitted set."""
        return sum(d.ebb.rho for d in self._admitted.values())

    def declarations(self) -> list[tuple[str, EBB, float, QoSTarget]]:
        """``(name, ebb, phi, target)`` per admitted session, in order."""
        return [
            (d.name, d.ebb, d.phi, d.target)
            for d in self._admitted.values()
        ]

    # ------------------------------------------------------------------
    # the gate (mirrors repro.core.admission.admissible)
    # ------------------------------------------------------------------
    def _gate(
        self, candidate: list[_Declaration], request: _Declaration
    ) -> tuple[str | None, str, dict[str, Any]]:
        """Run the RPPS admission gate over the candidate population.

        Returns ``(violated, reason, details)`` with ``violated=None``
        on acceptance.  Condition for condition this is
        :func:`repro.core.admission.admissible` on the candidate
        ``(ebbs, targets)`` — the consistency the test suite asserts.
        """
        total_rho = sum(d.ebb.rho for d in candidate)
        details: dict[str, Any] = {
            "server_rate": self._rate,
            "total_rho": total_rho,
            "offered_load": total_rho / self._rate,
            "num_sessions": len(candidate),
        }
        if total_rho >= self._rate:
            return (
                "stability",
                f"aggregate rate {total_rho:.6g} would reach the server "
                f"rate {self._rate:.6g} (eq. 4 stability)",
                details,
            )
        for declaration in candidate:
            granted = declaration.ebb.rho / total_rho * self._rate
            if not meets_target(
                declaration.ebb,
                granted,
                declaration.target,
                discrete=self._discrete,
            ):
                details["violating_session"] = declaration.name
                details["granted_rate"] = granted
                details["d_max"] = declaration.target.d_max
                details["epsilon"] = declaration.target.epsilon
                details["bound_probability"] = self._bound_at(
                    declaration, granted
                )
                blame = (
                    "its own"
                    if declaration.name == request.name
                    else f"session {declaration.name!r}'s"
                )
                return (
                    "delay_bound",
                    f"admitting {request.name!r} would violate {blame} "
                    f"Theorem 10 delay target Pr{{D >= "
                    f"{declaration.target.d_max:g}}} <= "
                    f"{declaration.target.epsilon:g} at RPPS rate "
                    f"{granted:.6g}",
                    details,
                )
        return None, "all delay targets met at the RPPS shares", details

    def _bound_at(
        self, declaration: _Declaration, granted: float
    ) -> float | None:
        """Theorem 10/15 delay-bound value at the session's ``d_max``."""
        from repro.core.rpps import guaranteed_rate_bounds

        if granted <= declaration.ebb.rho:
            return None
        try:
            bounds = guaranteed_rate_bounds(
                declaration.name,
                declaration.ebb,
                granted,
                discrete=self._discrete,
            )
            return float(bounds.delay.evaluate(declaration.target.d_max))
        except ReproError:
            return None

    def _diagnose(
        self, candidate: list[_Declaration], request: _Declaration
    ) -> dict[str, Any]:
        """Feasible ordering / partition / Theorem 11 diagnostics."""
        out: dict[str, Any] = {}
        names = [d.name for d in candidate]
        rhos = [d.ebb.rho for d in candidate]
        phis = [d.phi for d in candidate]
        try:
            order = find_feasible_ordering(
                rhos, phis, server_rate=self._rate, strict=True
            )
            out["feasible_ordering"] = [names[i] for i in order]
        except FeasibleOrderingError as exc:
            out["feasible_ordering"] = None
            out["feasible_ordering_error"] = str(exc)
            return out
        partition = feasible_partition(
            rhos, phis, server_rate=self._rate
        )
        out["feasible_partition"] = [
            [names[i] for i in members] for members in partition.classes
        ]
        out["partition_level"] = partition.level(names.index(request.name))
        out["theorem11_probability"] = self._theorem11_probability(
            candidate, request
        )
        return out

    def _theorem11_probability(
        self, candidate: list[_Declaration], request: _Declaration
    ) -> float | None:
        """The joining session's optimized Theorem 11 delay tail at its
        ``d_max`` — the sharper partition-based bound, for diagnostics."""
        from repro.core.gps import GPSConfig, Session
        from repro.core.single_node import theorem11_family

        try:
            config = GPSConfig(
                self._rate,
                [
                    Session(d.name, d.ebb, d.phi)
                    for d in candidate
                ],
            )
            family = theorem11_family(
                config,
                [d.name for d in candidate].index(request.name),
                discrete=self._discrete,
            )
            bound = family.optimized_delay(request.target.d_max)
            return float(bound.evaluate(request.target.d_max))
        except ReproError:
            return None

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def _decide(
        self,
        action: str,
        candidate: list[_Declaration],
        request: _Declaration,
    ) -> AdmissionDecision:
        violated, reason, details = self._gate(candidate, request)
        if self._diagnostics and violated != "stability":
            details.update(self._diagnose(candidate, request))
        self._decisions += 1
        accepted = violated is None
        if accepted:
            self._accepted += 1
        return AdmissionDecision(
            accepted=accepted,
            session=request.name,
            action=action,
            reason=reason,
            violated=violated,
            details=details,
        )

    def _missing(
        self, action: str, name: str, ebb: EBB | None, target: QoSTarget | None
    ) -> AdmissionDecision:
        missing = [
            label
            for label, value in (("ebb", ebb), ("target", target))
            if value is None
        ]
        self._decisions += 1
        return AdmissionDecision(
            accepted=False,
            session=name,
            action=action,
            reason=(
                "admission control requires an E.B.B. characterization "
                f"and a QoS target; missing: {', '.join(missing)}"
            ),
            violated="missing_declaration",
        )

    def request_join(
        self,
        name: str,
        *,
        ebb: EBB | None,
        phi: float,
        target: QoSTarget | None,
    ) -> AdmissionDecision:
        """Decide a join request; commits the session when accepted."""
        if not name:
            raise ValidationError("session name must be non-empty")
        if name in self._admitted:
            raise AdmissionError(
                f"session {name!r} is already admitted"
            )
        check_positive("phi", phi)
        if ebb is None or target is None:
            return self._missing("join", name, ebb, target)
        request = _Declaration(name, ebb, float(phi), target)
        candidate = list(self._admitted.values()) + [request]
        decision = self._decide("join", candidate, request)
        if decision.accepted:
            self._admitted[name] = request
        return decision

    def request_renegotiate(
        self,
        name: str,
        *,
        phi: float | None = None,
        ebb: EBB | None = None,
        target: QoSTarget | None = None,
    ) -> AdmissionDecision:
        """Decide a renegotiation; commits the new contract when accepted.

        Unset fields keep the session's current declaration.  A
        rejected renegotiation leaves the previous contract in force.
        """
        if name not in self._admitted:
            raise AdmissionError(
                f"cannot renegotiate unknown session {name!r}"
            )
        current = self._admitted[name]
        request = _Declaration(
            name,
            ebb if ebb is not None else current.ebb,
            float(phi) if phi is not None else current.phi,
            target if target is not None else current.target,
        )
        candidate = [
            request if d.name == name else d
            for d in self._admitted.values()
        ]
        decision = self._decide("renegotiate", candidate, request)
        if decision.accepted:
            self._admitted[name] = request
        return decision

    def leave(self, name: str) -> None:
        """Forget a departed session (frees its rate for future joins)."""
        if name not in self._admitted:
            raise AdmissionError(
                f"cannot remove unknown session {name!r}"
            )
        del self._admitted[name]

    def summary(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the controller state."""
        return {
            "kind": "admission_controller",
            "server_rate": self._rate,
            "num_admitted": self.num_admitted,
            "total_rho": self.total_rho,
            "offered_load": self.total_rho / self._rate,
            "decisions": self._decisions,
            "accepted": self._accepted,
            "rejected": self._decisions - self._accepted,
        }
