"""Session registry of the streaming GPS engine.

The registry is the O(active sessions) replacement for the offline
engines' fixed ``(N, T)`` arrays: the only dense state it keeps is one
float64 vector per per-session quantity (weight, backlog, pending
arrivals, cumulative totals), all aligned with a stable insertion
order.  Joins append (amortized O(1)), leaves compact the vectors
(O(active)), and the per-slot water-filling reads the vectors directly
— no per-session Python objects are touched on the hot path.

For a population that joined in scenario order and never churned, the
registry's vectors are element-for-element the rows of the offline
engines' arrays, which is what makes the online/offline bit-for-bit
equivalence possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.admission import QoSTarget
from repro.core.ebb import EBB
from repro.errors import AdmissionError, ValidationError
from repro.utils.validation import check_positive

__all__ = ["SessionInfo", "SessionRegistry"]


@dataclass
class SessionInfo:
    """Bookkeeping for one session, live or departed.

    Cumulative totals (``arrived``/``served``/``residual``) are synced
    from the registry vectors when the session leaves and on demand via
    :meth:`SessionRegistry.stats`.
    """

    name: str
    phi: float
    ebb: EBB | None = None
    target: QoSTarget | None = None
    joined_at: int = 0
    left_at: int | None = None
    arrived: float = 0.0
    served: float = 0.0
    residual: float = 0.0
    renegotiations: int = 0

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable summary of the session."""
        return {
            "name": self.name,
            "phi": self.phi,
            "joined_at": self.joined_at,
            "left_at": self.left_at,
            "arrived": self.arrived,
            "served": self.served,
            "residual": self.residual,
            "renegotiations": self.renegotiations,
        }


_GROW = 1024


class SessionRegistry:
    """Active-session state vectors with churn.

    All public vectors (:attr:`phis`, :attr:`backlog`, :attr:`pending`,
    ...) are *views* of length :attr:`num_active` into larger backing
    buffers; the engine mutates them in place between churn events.
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        self._info: dict[str, SessionInfo] = {}
        self._departed: list[SessionInfo] = []
        self._capacity = _GROW
        self._phis = np.zeros(self._capacity)
        self._backlog = np.zeros(self._capacity)
        self._pending = np.zeros(self._capacity)
        self._arrived = np.zeros(self._capacity)
        self._served = np.zeros(self._capacity)
        self._peak_active = 0

    # ------------------------------------------------------------------
    # vector views (length == num_active)
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Number of active sessions."""
        return len(self._names)

    @property
    def peak_active(self) -> int:
        """Largest number of simultaneously active sessions seen."""
        return self._peak_active

    @property
    def names(self) -> tuple[str, ...]:
        """Active session names, in join order."""
        return tuple(self._names)

    @property
    def phis(self) -> np.ndarray:
        """Active GPS weights (view; do not resize)."""
        return self._phis[: self.num_active]

    @property
    def backlog(self) -> np.ndarray:
        """Active per-session backlog (view)."""
        return self._backlog[: self.num_active]

    @property
    def pending(self) -> np.ndarray:
        """Arrivals accumulated for the current slot (view)."""
        return self._pending[: self.num_active]

    @property
    def arrived(self) -> np.ndarray:
        """Cumulative per-session arrivals (view)."""
        return self._arrived[: self.num_active]

    @property
    def served(self) -> np.ndarray:
        """Cumulative per-session service (view)."""
        return self._served[: self.num_active]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return self.num_active

    def index_of(self, name: str) -> int:
        """Current vector index of an active session."""
        try:
            return self._index[name]
        except KeyError:
            raise AdmissionError(f"no active session named {name!r}") from None

    def info(self, name: str) -> SessionInfo:
        """The :class:`SessionInfo` of an active session."""
        self.index_of(name)
        return self._info[name]

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        while self._capacity < needed:
            self._capacity *= 2
        for attr in ("_phis", "_backlog", "_pending", "_arrived", "_served"):
            old = getattr(self, attr)
            grown = np.zeros(self._capacity)
            grown[: old.size] = old
            setattr(self, attr, grown)

    def join(
        self,
        name: str,
        phi: float,
        *,
        ebb: EBB | None = None,
        target: QoSTarget | None = None,
        at: int = 0,
    ) -> SessionInfo:
        """Register a new session; raises :class:`AdmissionError` on a
        duplicate name."""
        check_positive("phi", phi)
        if name in self._index:
            raise AdmissionError(
                f"session {name!r} is already active (joined at slot "
                f"{self._info[name].joined_at})"
            )
        index = self.num_active
        self._ensure_capacity(index + 1)
        self._names.append(name)
        self._index[name] = index
        self._phis[index] = float(phi)
        self._backlog[index] = 0.0
        self._pending[index] = 0.0
        self._arrived[index] = 0.0
        self._served[index] = 0.0
        info = SessionInfo(
            name=name, phi=float(phi), ebb=ebb, target=target, joined_at=at
        )
        self._info[name] = info
        self._peak_active = max(self._peak_active, self.num_active)
        return info

    def leave(self, name: str, *, at: int = 0) -> SessionInfo:
        """Deregister a session; returns its final :class:`SessionInfo`.

        Residual backlog (plus any arrivals still pending for the
        current slot) is dropped and recorded on the info record.
        """
        index = self.index_of(name)
        info = self._info.pop(name)
        info.left_at = at
        info.arrived = float(self._arrived[index])
        info.served = float(self._served[index])
        info.residual = float(self._backlog[index] + self._pending[index])
        last = self.num_active - 1
        if index != last:
            # Compact by shifting the tail down one slot; O(active).
            for attr in (
                "_phis",
                "_backlog",
                "_pending",
                "_arrived",
                "_served",
            ):
                vec = getattr(self, attr)
                vec[index:last] = vec[index + 1 : last + 1]
            for shifted in self._names[index + 1 :]:
                self._index[shifted] -= 1
        del self._names[index]
        del self._index[name]
        self._departed.append(info)
        return info

    def renegotiate(
        self,
        name: str,
        *,
        phi: float | None = None,
        ebb: EBB | None = None,
        target: QoSTarget | None = None,
    ) -> SessionInfo:
        """Update an active session's weight / QoS declaration in place."""
        index = self.index_of(name)
        info = self._info[name]
        if phi is not None:
            check_positive("phi", phi)
            info.phi = float(phi)
            self._phis[index] = float(phi)
        if ebb is not None:
            info.ebb = ebb
        if target is not None:
            info.target = target
        info.renegotiations += 1
        return info

    def add_arrival(self, name: str, amount: float) -> None:
        """Accumulate work for the current slot (O(1))."""
        self._pending[self.index_of(name)] += amount

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def sync_totals(self) -> None:
        """Copy the cumulative vectors back onto the active info records."""
        for index, name in enumerate(self._names):
            info = self._info[name]
            info.arrived = float(self._arrived[index])
            info.served = float(self._served[index])
            info.residual = float(self._backlog[index])

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-session summaries, active sessions first then departed.

        A name may recur when a departed session rejoins; the active
        incarnation keeps the bare name and departed ones are keyed
        ``name@left_at`` (with a counter on further collisions).
        """
        self.sync_totals()
        out = {name: self._info[name].to_record() for name in self._names}
        for info in self._departed:
            key = info.name
            if key in out:
                key = f"{info.name}@{info.left_at}"
            suffix = 2
            while key in out:
                key = f"{info.name}@{info.left_at}#{suffix}"
                suffix += 1
            out[key] = info.to_record()
        return out

    # ------------------------------------------------------------------
    # durable state export/import
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the registry (active + departed).

        The backing vectors are trimmed to the active prefix; the
        restored registry reallocates them, and since JSON round-trips
        finite floats exactly the restored vectors are element-for-
        element ``np.array_equal`` with the originals.
        """
        from repro.online.events import _ebb_record, _target_record

        self.sync_totals()

        def info_state(info: SessionInfo) -> dict[str, Any]:
            return {
                "name": info.name,
                "phi": info.phi,
                "ebb": _ebb_record(info.ebb),
                "target": _target_record(info.target),
                "joined_at": info.joined_at,
                "left_at": info.left_at,
                "arrived": info.arrived,
                "served": info.served,
                "residual": info.residual,
                "renegotiations": info.renegotiations,
            }

        return {
            "names": list(self._names),
            "active": [info_state(self._info[n]) for n in self._names],
            "departed": [info_state(info) for info in self._departed],
            "peak_active": self._peak_active,
            "vectors": {
                "phis": self.phis.tolist(),
                "backlog": self.backlog.tolist(),
                "pending": self.pending.tolist(),
                "arrived": self.arrived.tolist(),
                "served": self.served.tolist(),
            },
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "SessionRegistry":
        """Rebuild a registry from an :meth:`export_state` snapshot."""
        from repro.online.events import _ebb_from, _target_from

        def info_from(record: dict[str, Any]) -> SessionInfo:
            return SessionInfo(
                name=str(record["name"]),
                phi=float(record["phi"]),
                ebb=_ebb_from(record["ebb"]),
                target=_target_from(record["target"]),
                joined_at=int(record["joined_at"]),
                left_at=(
                    None
                    if record["left_at"] is None
                    else int(record["left_at"])
                ),
                arrived=float(record["arrived"]),
                served=float(record["served"]),
                residual=float(record["residual"]),
                renegotiations=int(record["renegotiations"]),
            )

        out = cls()
        names = [str(name) for name in state["names"]]
        out._ensure_capacity(len(names))
        out._names = names
        out._index = {name: k for k, name in enumerate(names)}
        out._info = {
            record["name"]: info_from(record)
            for record in state["active"]
        }
        out._departed = [info_from(r) for r in state["departed"]]
        vectors = state["vectors"]
        for attr, key in (
            ("_phis", "phis"),
            ("_backlog", "backlog"),
            ("_pending", "pending"),
            ("_arrived", "arrived"),
            ("_served", "served"),
        ):
            values = [float(v) for v in vectors[key]]
            if len(values) != len(names):
                raise ValidationError(
                    f"registry state vector {key!r} has {len(values)} "
                    f"entries for {len(names)} active sessions"
                )
            getattr(out, attr)[: len(values)] = values
        out._peak_active = int(state["peak_active"])
        return out

    def admitted_declarations(
        self,
    ) -> list[tuple[str, EBB | None, float, QoSTarget | None]]:
        """``(name, ebb, phi, target)`` of every active session, in order."""
        return [
            (
                name,
                self._info[name].ebb,
                self._info[name].phi,
                self._info[name].target,
            )
            for name in self._names
        ]
