"""Session registry of the streaming GPS engine.

The registry keeps one float64 vector per per-session quantity
(weight, backlog, pending arrivals, cumulative totals), all aligned
with a stable insertion order.  Joins append (amortized O(1)), leaves
compact the vectors (O(active)), and the per-slot water-filling reads
the vectors directly — no per-session Python objects are touched on
the hot path.

On top of the dense vectors the registry maintains an explicit **busy
set**: the compact int index array of sessions with non-zero backlog
or non-zero pending arrivals.  GPS is work-conserving — a session with
zero work receives nothing and changes nothing in a slot — so the
engine's per-slot cost is O(busy), not O(active): a million idle
sessions cost nothing per event.  The index is maintained
incrementally (O(1) on :meth:`add_arrival`, O(busy) pruning on
:meth:`commit_slot`, O(busy) fix-up on :meth:`leave`) and the invariant
is one-sided: the busy set always *contains* every session with
non-zero work, and may transiently hold sessions whose work is exactly
zero — harmless, because the water-filling kernel's sequential
reductions are invariant to exact-zero entries
(:func:`repro.sim.fluid.busy_gps_slot_allocation`).

Idle-session bookkeeping is **epoch-lazy**: cumulative totals are
copied back onto the Python-side :class:`SessionInfo` records only for
sessions touched since the last sync (a dirty mask pruned per slot),
and the system-wide backlog/pending totals are cached scalars updated
incrementally, so none of the reporting paths scan the full active
set per event.

For a population that joined in scenario order and never churned, the
registry's vectors are element-for-element the rows of the offline
engines' arrays, which is what makes the online/offline bit-for-bit
equivalence possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.admission import QoSTarget
from repro.core.ebb import EBB
from repro.errors import AdmissionError, ValidationError
from repro.utils.validation import check_positive

__all__ = ["SessionInfo", "SessionRegistry"]


@dataclass
class SessionInfo:
    """Bookkeeping for one session, live or departed.

    Cumulative totals (``arrived``/``served``/``residual``) are synced
    from the registry vectors when the session leaves and on demand via
    :meth:`SessionRegistry.stats`.
    """

    name: str
    phi: float
    ebb: EBB | None = None
    target: QoSTarget | None = None
    joined_at: int = 0
    left_at: int | None = None
    arrived: float = 0.0
    served: float = 0.0
    residual: float = 0.0
    renegotiations: int = 0

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable summary of the session."""
        return {
            "name": self.name,
            "phi": self.phi,
            "joined_at": self.joined_at,
            "left_at": self.left_at,
            "arrived": self.arrived,
            "served": self.served,
            "residual": self.residual,
            "renegotiations": self.renegotiations,
        }


_GROW = 1024


class SessionRegistry:
    """Active-session state vectors with churn.

    All public vectors (:attr:`phis`, :attr:`backlog`, :attr:`pending`,
    ...) are *views* of length :attr:`num_active` into larger backing
    buffers; the engine mutates them in place between churn events.
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        self._info: dict[str, SessionInfo] = {}
        self._departed: list[SessionInfo] = []
        self._capacity = _GROW
        self._phis = np.zeros(self._capacity)
        self._backlog = np.zeros(self._capacity)
        self._pending = np.zeros(self._capacity)
        self._arrived = np.zeros(self._capacity)
        self._served = np.zeros(self._capacity)
        self._peak_active = 0
        # Busy-set index: _busy_idx[:_busy_count] are the (unordered)
        # indices of sessions with backlog != 0 or pending != 0;
        # _busy_mask is the membership bitmap keeping appends O(1).
        self._busy_mask = np.zeros(self._capacity, dtype=bool)
        self._busy_capacity = _GROW
        self._busy_idx = np.zeros(self._busy_capacity, dtype=np.int64)
        self._busy_count = 0
        # Epoch-lazy bookkeeping: cached system totals plus the dirty
        # mask of sessions whose cumulative vectors changed since the
        # last sync_totals().  _epoch counts committed slots.
        self._total_backlog = 0.0
        self._total_pending = 0.0
        self._epoch = 0
        self._synced_epoch = 0
        self._dirty_mask = np.zeros(self._capacity, dtype=bool)

    # ------------------------------------------------------------------
    # vector views (length == num_active)
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        """Number of active sessions."""
        return len(self._names)

    @property
    def peak_active(self) -> int:
        """Largest number of simultaneously active sessions seen."""
        return self._peak_active

    @property
    def names(self) -> tuple[str, ...]:
        """Active session names, in join order."""
        return tuple(self._names)

    @property
    def phis(self) -> np.ndarray:
        """Active GPS weights (view; do not resize)."""
        return self._phis[: self.num_active]

    @property
    def backlog(self) -> np.ndarray:
        """Active per-session backlog (view)."""
        return self._backlog[: self.num_active]

    @property
    def pending(self) -> np.ndarray:
        """Arrivals accumulated for the current slot (view)."""
        return self._pending[: self.num_active]

    @property
    def arrived(self) -> np.ndarray:
        """Cumulative per-session arrivals (view)."""
        return self._arrived[: self.num_active]

    @property
    def served(self) -> np.ndarray:
        """Cumulative per-session service (view)."""
        return self._served[: self.num_active]

    # ------------------------------------------------------------------
    # busy-set index and cached totals
    # ------------------------------------------------------------------
    @property
    def num_busy(self) -> int:
        """Number of sessions currently in the busy set."""
        return self._busy_count

    @property
    def epoch(self) -> int:
        """Number of slots committed so far (the lazy-sync clock)."""
        return self._epoch

    def busy_indices(self) -> np.ndarray:
        """Busy-session indices, sorted ascending (a view; do not keep).

        Ascending session order is load-bearing: it makes the gathered
        work/weight slices subsequences of the dense vectors, which is
        what the sequential-sum kernel needs for bit-identity with the
        dense path — and it makes the array canonical, so it round-trips
        through snapshots byte-for-byte.
        """
        view = self._busy_idx[: self._busy_count]
        view.sort()
        return view

    def total_backlog(self) -> float:
        """System backlog (cached scalar; O(1))."""
        return self._total_backlog

    def total_pending(self) -> float:
        """Pending arrivals for the open slot (cached scalar; O(1))."""
        return self._total_pending

    def _mark_busy(self, index: int) -> None:
        if self._busy_mask[index]:
            return
        if self._busy_count >= self._busy_capacity:
            self._busy_capacity *= 2
            grown = np.zeros(self._busy_capacity, dtype=np.int64)
            grown[: self._busy_count] = self._busy_idx[: self._busy_count]
            self._busy_idx = grown
        self._busy_idx[self._busy_count] = index
        self._busy_count += 1
        self._busy_mask[index] = True

    def commit_slot(
        self,
        busy: np.ndarray,
        new_backlog: np.ndarray,
        served: np.ndarray,
    ) -> float:
        """Apply one served slot's gathered results to the busy slice.

        ``busy`` must be the array :meth:`busy_indices` returned for
        this slot; ``new_backlog``/``served`` the post-water-fill
        gathered values.  Folds pending arrivals into the cumulative
        vectors, prunes sessions that emptied out of the busy set,
        refreshes the cached totals from the slice (a sequential sum,
        bit-identical to the dense total) and advances the epoch.
        Returns the new system backlog.  O(busy).
        """
        if busy.size:
            self._arrived[busy] += self._pending[busy]
            self._served[busy] += served
            self._backlog[busy] = new_backlog
            self._pending[busy] = 0.0
            self._dirty_mask[busy] = True
            kept = busy[new_backlog > 0.0]
            self._busy_mask[busy] = False
            self._busy_mask[kept] = True
            self._busy_idx[: kept.size] = kept
            self._busy_count = int(kept.size)
            backlog_kept = self._backlog[kept]
            self._total_backlog = (
                float(np.cumsum(backlog_kept)[-1]) if kept.size else 0.0
            )
        else:
            self._total_backlog = 0.0
        self._total_pending = 0.0
        self._epoch += 1
        return self._total_backlog

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return self.num_active

    def index_of(self, name: str) -> int:
        """Current vector index of an active session."""
        try:
            return self._index[name]
        except KeyError:
            raise AdmissionError(f"no active session named {name!r}") from None

    def info(self, name: str) -> SessionInfo:
        """The :class:`SessionInfo` of an active session."""
        self.index_of(name)
        return self._info[name]

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        while self._capacity < needed:
            self._capacity *= 2
        for attr in (
            "_phis",
            "_backlog",
            "_pending",
            "_arrived",
            "_served",
            "_busy_mask",
            "_dirty_mask",
        ):
            old = getattr(self, attr)
            grown = np.zeros(self._capacity, dtype=old.dtype)
            grown[: old.size] = old
            setattr(self, attr, grown)

    def join(
        self,
        name: str,
        phi: float,
        *,
        ebb: EBB | None = None,
        target: QoSTarget | None = None,
        at: int = 0,
    ) -> SessionInfo:
        """Register a new session; raises :class:`AdmissionError` on a
        duplicate name."""
        check_positive("phi", phi)
        if name in self._index:
            raise AdmissionError(
                f"session {name!r} is already active (joined at slot "
                f"{self._info[name].joined_at})"
            )
        index = self.num_active
        self._ensure_capacity(index + 1)
        self._names.append(name)
        self._index[name] = index
        self._phis[index] = float(phi)
        self._backlog[index] = 0.0
        self._pending[index] = 0.0
        self._arrived[index] = 0.0
        self._served[index] = 0.0
        self._busy_mask[index] = False
        self._dirty_mask[index] = False
        info = SessionInfo(
            name=name, phi=float(phi), ebb=ebb, target=target, joined_at=at
        )
        self._info[name] = info
        self._peak_active = max(self._peak_active, self.num_active)
        return info

    def leave(self, name: str, *, at: int = 0) -> SessionInfo:
        """Deregister a session; returns its final :class:`SessionInfo`.

        Residual backlog (plus any arrivals still pending for the
        current slot) is dropped and recorded on the info record.
        """
        index = self.index_of(name)
        info = self._info.pop(name)
        info.left_at = at
        info.arrived = float(self._arrived[index])
        info.served = float(self._served[index])
        info.residual = float(self._backlog[index] + self._pending[index])
        # Busy-set fix-up (O(busy)): drop the leaver, then shift every
        # busy index past the compaction point down one slot.  The
        # cached totals lose the leaver's contribution; they are
        # recomputed exactly from the busy slice at the next commit.
        busy = self._busy_idx[: self._busy_count]
        if self._busy_mask[index]:
            pos = int(np.flatnonzero(busy == index)[0])
            busy[pos] = busy[self._busy_count - 1]
            self._busy_count -= 1
            busy = self._busy_idx[: self._busy_count]
        busy[busy > index] -= 1
        if self._busy_count == 0:
            # Empty busy set means every remaining backlog/pending is
            # exactly zero; pin the cached totals so incremental
            # subtraction dust cannot accumulate.
            self._total_backlog = 0.0
            self._total_pending = 0.0
        else:
            self._total_backlog -= float(self._backlog[index])
            self._total_pending -= float(self._pending[index])
        last = self.num_active - 1
        if index != last:
            # Compact by shifting the tail down one slot; O(active).
            for attr in (
                "_phis",
                "_backlog",
                "_pending",
                "_arrived",
                "_served",
                "_busy_mask",
                "_dirty_mask",
            ):
                vec = getattr(self, attr)
                vec[index:last] = vec[index + 1 : last + 1]
            for shifted in self._names[index + 1 :]:
                self._index[shifted] -= 1
        self._busy_mask[last] = False
        self._dirty_mask[last] = False
        del self._names[index]
        del self._index[name]
        self._departed.append(info)
        return info

    def renegotiate(
        self,
        name: str,
        *,
        phi: float | None = None,
        ebb: EBB | None = None,
        target: QoSTarget | None = None,
    ) -> SessionInfo:
        """Update an active session's weight / QoS declaration in place."""
        index = self.index_of(name)
        info = self._info[name]
        if phi is not None:
            check_positive("phi", phi)
            info.phi = float(phi)
            self._phis[index] = float(phi)
        if ebb is not None:
            info.ebb = ebb
        if target is not None:
            info.target = target
        info.renegotiations += 1
        return info

    def add_arrival(self, name: str, amount: float) -> None:
        """Accumulate work for the current slot (O(1)).

        Marks the session busy, so the next slot's water-fill gathers
        it; the cached pending total tracks incrementally.
        """
        index = self.index_of(name)
        self._pending[index] += amount
        self._total_pending += amount
        if self._pending[index] != 0.0 or self._backlog[index] != 0.0:
            self._mark_busy(index)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def sync_totals(self) -> None:
        """Copy the cumulative vectors back onto the active info records.

        Epoch-lazy: only sessions dirtied by a slot commit since the
        last sync are touched, so a large idle population costs one
        vectorized mask scan, not a Python loop over every session.
        """
        if self._epoch == self._synced_epoch:
            return
        for index in np.flatnonzero(
            self._dirty_mask[: self.num_active]
        ).tolist():
            info = self._info[self._names[index]]
            info.arrived = float(self._arrived[index])
            info.served = float(self._served[index])
            info.residual = float(self._backlog[index])
        self._dirty_mask[: self.num_active] = False
        self._synced_epoch = self._epoch

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-session summaries, active sessions first then departed.

        A name may recur when a departed session rejoins; the active
        incarnation keeps the bare name and departed ones are keyed
        ``name@left_at`` (with a counter on further collisions).
        """
        self.sync_totals()
        out = {name: self._info[name].to_record() for name in self._names}
        for info in self._departed:
            key = info.name
            if key in out:
                key = f"{info.name}@{info.left_at}"
            suffix = 2
            while key in out:
                key = f"{info.name}@{info.left_at}#{suffix}"
                suffix += 1
            out[key] = info.to_record()
        return out

    # ------------------------------------------------------------------
    # durable state export/import
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the registry (active + departed).

        The backing vectors are trimmed to the active prefix; the
        restored registry reallocates them, and since JSON round-trips
        finite floats exactly the restored vectors are element-for-
        element ``np.array_equal`` with the originals.
        """
        from repro.online.events import _ebb_record, _target_record

        self.sync_totals()

        def info_state(info: SessionInfo) -> dict[str, Any]:
            return {
                "name": info.name,
                "phi": info.phi,
                "ebb": _ebb_record(info.ebb),
                "target": _target_record(info.target),
                "joined_at": info.joined_at,
                "left_at": info.left_at,
                "arrived": info.arrived,
                "served": info.served,
                "residual": info.residual,
                "renegotiations": info.renegotiations,
            }

        return {
            "names": list(self._names),
            "active": [info_state(self._info[n]) for n in self._names],
            "departed": [info_state(info) for info in self._departed],
            "peak_active": self._peak_active,
            "vectors": {
                "phis": self.phis.tolist(),
                "backlog": self.backlog.tolist(),
                "pending": self.pending.tolist(),
                "arrived": self.arrived.tolist(),
                "served": self.served.tolist(),
            },
            # Busy-set/epoch state: exported explicitly (not derived)
            # so a recovered registry reproduces the live one bit for
            # bit — including transient zero-work members and the
            # incremental rounding of the cached totals.
            "busy": self.busy_indices().tolist(),
            "epoch": self._epoch,
            "total_backlog": self._total_backlog,
            "total_pending": self._total_pending,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "SessionRegistry":
        """Rebuild a registry from an :meth:`export_state` snapshot."""
        from repro.online.events import _ebb_from, _target_from

        def info_from(record: dict[str, Any]) -> SessionInfo:
            return SessionInfo(
                name=str(record["name"]),
                phi=float(record["phi"]),
                ebb=_ebb_from(record["ebb"]),
                target=_target_from(record["target"]),
                joined_at=int(record["joined_at"]),
                left_at=(
                    None
                    if record["left_at"] is None
                    else int(record["left_at"])
                ),
                arrived=float(record["arrived"]),
                served=float(record["served"]),
                residual=float(record["residual"]),
                renegotiations=int(record["renegotiations"]),
            )

        out = cls()
        names = [str(name) for name in state["names"]]
        out._ensure_capacity(len(names))
        out._names = names
        out._index = {name: k for k, name in enumerate(names)}
        out._info = {
            record["name"]: info_from(record)
            for record in state["active"]
        }
        out._departed = [info_from(r) for r in state["departed"]]
        vectors = state["vectors"]
        for attr, key in (
            ("_phis", "phis"),
            ("_backlog", "backlog"),
            ("_pending", "pending"),
            ("_arrived", "arrived"),
            ("_served", "served"),
        ):
            values = [float(v) for v in vectors[key]]
            if len(values) != len(names):
                raise ValidationError(
                    f"registry state vector {key!r} has {len(values)} "
                    f"entries for {len(names)} active sessions"
                )
            getattr(out, attr)[: len(values)] = values
        out._peak_active = int(state["peak_active"])
        if "busy" in state:
            busy = [int(k) for k in state["busy"]]
            if any(k < 0 or k >= len(names) for k in busy):
                raise ValidationError(
                    f"registry busy index out of range for {len(names)} "
                    "active sessions"
                )
            out._total_backlog = float(state["total_backlog"])
            out._total_pending = float(state["total_pending"])
            out._epoch = int(state["epoch"])
        else:
            # Pre-busy-set snapshot: derive the index and totals from
            # the vectors (sequential sums over the sorted busy slice,
            # the same computation commit_slot performs).
            busy = np.flatnonzero(
                (out.backlog != 0.0) | (out.pending != 0.0)
            ).tolist()
            backlog_busy = out._backlog[busy]
            pending_busy = out._pending[busy]
            out._total_backlog = (
                float(np.cumsum(backlog_busy)[-1]) if busy else 0.0
            )
            out._total_pending = (
                float(np.cumsum(pending_busy)[-1]) if busy else 0.0
            )
            out._epoch = 0
        out._synced_epoch = out._epoch
        count = len(busy)
        while out._busy_capacity < max(count, 1):
            out._busy_capacity *= 2
        out._busy_idx = np.zeros(out._busy_capacity, dtype=np.int64)
        out._busy_idx[:count] = busy
        out._busy_count = count
        out._busy_mask[busy] = True
        return out

    def admitted_declarations(
        self,
    ) -> list[tuple[str, EBB | None, float, QoSTarget | None]]:
        """``(name, ebb, phi, target)`` of every active session, in order."""
        return [
            (
                name,
                self._info[name].ebb,
                self._info[name].phi,
                self._info[name].target,
            )
            for name in self._names
        ]
