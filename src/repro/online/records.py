"""Typed record sinks: one protocol for every online output stream.

Every component of the online stack — the resilient service loop, the
durable shards, the cluster supervisor — reports through the same
channel: a stream of JSON-serializable dict *records* (``kind`` keyed;
the full schema table lives in ``docs/ONLINE.md``).  Historically each
component hand-rolled ``sink.write(json.dumps(record) + "\\n")`` against
a raw text file, and the cluster re-parsed its shards' serialized
lines just to stamp a ``"shard"`` index on them.

:class:`RecordSink` replaces that with a typed protocol: records stay
structured dicts until the terminal sink serializes them once.

* :class:`JsonlSink` — the terminal adapter: serializes each record
  (through :func:`repro.sim.results.to_jsonable`) as one JSONL line on
  an open text file, matching the historical wire format exactly.
* :class:`TaggedSink` — stamps fixed key/value pairs (e.g.
  ``shard=3``) onto every record before forwarding to an inner sink;
  no serialize/re-parse round-trip.
* :class:`NullSink` — discards everything (the ``sink=None`` path,
  reified so callers can skip ``is None`` checks).
* :func:`as_record_sink` — coercion helper: accepts ``None``, an
  existing :class:`RecordSink`, or a bare ``IO[str]``-style object
  (anything with ``write``) for backward compatibility, and returns a
  proper sink.
"""

from __future__ import annotations

import json
from typing import IO, Any, Protocol, runtime_checkable

from repro.errors import ValidationError
from repro.sim.results import to_jsonable

__all__ = [
    "JsonlSink",
    "NullSink",
    "RecordSink",
    "TaggedSink",
    "as_record_sink",
]


@runtime_checkable
class RecordSink(Protocol):
    """Where online components send their output records.

    Implementations must accept any JSON-serializable dict; ``emit``
    must not mutate the caller's record (copy before annotating).
    """

    def emit(self, record: dict[str, Any]) -> None:
        """Deliver one record."""
        ...  # pragma: no cover - protocol

    def flush(self) -> None:
        """Push buffered records to the underlying transport."""
        ...  # pragma: no cover - protocol


class NullSink:
    """A :class:`RecordSink` that discards every record."""

    def emit(self, record: dict[str, Any]) -> None:
        """Discard the record."""

    def flush(self) -> None:
        """Nothing to flush."""


class JsonlSink:
    """Serialize records as JSON lines onto an open text stream.

    The terminal sink of the stack: one ``json.dumps`` per record (via
    :func:`repro.sim.results.to_jsonable`, so numpy scalars/arrays
    serialize), one ``"\\n"``, byte-for-byte the format the service
    loop historically wrote.
    """

    def __init__(self, stream: IO[str]) -> None:
        if not hasattr(stream, "write"):
            raise ValidationError(
                f"JsonlSink needs a writable text stream, got "
                f"{type(stream).__name__}"
            )
        self._stream = stream

    @property
    def stream(self) -> IO[str]:
        """The underlying text stream."""
        return self._stream

    def emit(self, record: dict[str, Any]) -> None:
        """Write the record as one JSONL line."""
        self._stream.write(json.dumps(to_jsonable(record)))
        self._stream.write("\n")

    def flush(self) -> None:
        """Flush the underlying stream."""
        self._stream.flush()


class TaggedSink:
    """Stamp fixed annotations onto every record before forwarding.

    The cluster funnels all shards into one output stream; each
    shard's sink is ``TaggedSink(shared, shard=i)``, so every record a
    shard emits carries its origin without the serialize/re-parse
    round-trip the old ``ShardRecordSink`` paid.  The incoming record
    is copied, never mutated; tags do not overwrite keys the record
    already carries (a record's own ``kind`` always wins).
    """

    def __init__(self, inner: RecordSink, **tags: Any) -> None:
        if not tags:
            raise ValidationError(
                "TaggedSink needs at least one tag key, got none"
            )
        self._inner = inner
        self._tags = dict(tags)

    @property
    def tags(self) -> dict[str, Any]:
        """The annotations stamped on every record (a copy)."""
        return dict(self._tags)

    def emit(self, record: dict[str, Any]) -> None:
        """Forward a copy of the record with the tags applied."""
        tagged = dict(self._tags)
        tagged.update(record)
        self._inner.emit(tagged)

    def flush(self) -> None:
        """Flush the inner sink."""
        self._inner.flush()


def as_record_sink(sink: Any) -> RecordSink:
    """Coerce any accepted sink argument to a :class:`RecordSink`.

    ``None`` becomes a :class:`NullSink`; an object already satisfying
    the protocol passes through; a bare text stream (anything with
    ``write``) is wrapped in a :class:`JsonlSink` — the historical
    ``sink=open(path, "w")`` call sites keep working unchanged.
    """
    if sink is None:
        return NullSink()
    if isinstance(sink, RecordSink):
        return sink
    if hasattr(sink, "write"):
        return JsonlSink(sink)
    raise ValidationError(
        "sink must be None, a RecordSink, or a writable text stream; "
        f"got {type(sink).__name__}"
    )
