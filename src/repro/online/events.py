"""Event model of the streaming GPS engine.

The online engine consumes a totally ordered stream of five event
kinds, all stamped with a slot-valued ``time``:

* :class:`CapacityEvent` — the server capacity becomes ``capacity``
  from slot ``floor(time)`` onward (fault injection maps
  :class:`repro.faults.RateFault` windows onto pairs of these);
* :class:`SessionJoin` — a session asks to join with weight ``phi``
  and, optionally, an E.B.B. characterization plus a
  :class:`repro.core.admission.QoSTarget` for admission control;
* :class:`Renegotiate` — an active session changes its weight and/or
  QoS declaration (re-admitted like a join);
* :class:`ArrivalEvent` — ``amount`` units of work arrive for one
  session inside slot ``floor(time)``;
* :class:`SessionLeave` — a session departs; residual backlog is
  dropped and reported.

Within one slot, events apply in the order capacity < join <
renegotiate < arrival < leave (:data:`EVENT_ORDER`), matching the
offline convention that slot ``t`` arrivals are available at the start
of the slot and the population serving slot ``t`` is the one registered
when the slot closes.  :class:`EventQueue` is a stable binary heap over
``(time, order, sequence)``; the JSONL helpers
(:func:`write_event_stream` / :func:`read_event_stream`) record and
replay traces losslessly — ``json`` floats round-trip exactly, so a
replayed trace reproduces a live run bit for bit.
"""

from __future__ import annotations

import heapq
import json
import math
from dataclasses import dataclass
from typing import IO, Any, ClassVar, Iterable, Iterator, Union

from repro.analysis.admission import QoSTarget
from repro.core.ebb import EBB
from repro.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "CapacityEvent",
    "SessionJoin",
    "Renegotiate",
    "ArrivalEvent",
    "SessionLeave",
    "Event",
    "EVENT_ORDER",
    "EventQueue",
    "event_to_record",
    "event_from_record",
    "write_event_stream",
    "read_event_stream",
]


def _check_time(time: float) -> None:
    if not math.isfinite(time) or time < 0.0:
        raise ValidationError(
            f"event time must be finite and >= 0, got {time}"
        )


def _check_name(name: str) -> None:
    if not name:
        raise ValidationError("session name must be non-empty")


@dataclass(frozen=True)
class CapacityEvent:
    """Server capacity becomes ``capacity`` from slot ``floor(time)`` on."""

    time: float
    capacity: float
    kind: ClassVar[str] = "capacity"

    def __post_init__(self) -> None:
        _check_time(self.time)
        if not math.isfinite(self.capacity) or self.capacity < 0.0:
            raise ValidationError(
                f"capacity must be finite and >= 0, got {self.capacity}"
            )

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the event."""
        return {
            "kind": self.kind,
            "time": self.time,
            "capacity": self.capacity,
        }


@dataclass(frozen=True)
class SessionJoin:
    """A session asks to join with weight ``phi``.

    ``ebb`` and ``target`` carry the session's QoS declaration; both
    are required for the join to pass through an
    :class:`repro.online.admission.AdmissionController` and optional
    on an engine running without admission control.
    """

    time: float
    name: str
    phi: float
    ebb: EBB | None = None
    target: QoSTarget | None = None
    kind: ClassVar[str] = "join"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_name(self.name)
        check_positive("phi", self.phi)

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the event."""
        return {
            "kind": self.kind,
            "time": self.time,
            "name": self.name,
            "phi": self.phi,
            "ebb": _ebb_record(self.ebb),
            "target": _target_record(self.target),
        }


@dataclass(frozen=True)
class Renegotiate:
    """An active session changes its weight and/or QoS declaration.

    Unset fields keep their current values; at least one field must be
    set.  Under admission control the *changed* declaration is
    re-evaluated exactly like a join; a rejected renegotiation leaves
    the previous contract in force.
    """

    time: float
    name: str
    phi: float | None = None
    ebb: EBB | None = None
    target: QoSTarget | None = None
    kind: ClassVar[str] = "renegotiate"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_name(self.name)
        if self.phi is None and self.ebb is None and self.target is None:
            raise ValidationError(
                "a Renegotiate event must change phi, ebb or target"
            )
        if self.phi is not None:
            check_positive("phi", self.phi)

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the event."""
        return {
            "kind": self.kind,
            "time": self.time,
            "name": self.name,
            "phi": self.phi,
            "ebb": _ebb_record(self.ebb),
            "target": _target_record(self.target),
        }


@dataclass(frozen=True)
class ArrivalEvent:
    """``amount`` units of work arrive for ``session`` in slot ``floor(time)``."""

    time: float
    session: str
    amount: float
    kind: ClassVar[str] = "arrival"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_name(self.session)
        if not math.isfinite(self.amount) or self.amount < 0.0:
            raise ValidationError(
                f"arrival amount must be finite and >= 0, got {self.amount}"
            )

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the event."""
        return {
            "kind": self.kind,
            "time": self.time,
            "session": self.session,
            "amount": self.amount,
        }


@dataclass(frozen=True)
class SessionLeave:
    """Session ``name`` departs; residual backlog is dropped and reported."""

    time: float
    name: str
    kind: ClassVar[str] = "leave"

    def __post_init__(self) -> None:
        _check_time(self.time)
        _check_name(self.name)

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the event."""
        return {"kind": self.kind, "time": self.time, "name": self.name}


Event = Union[
    CapacityEvent, SessionJoin, Renegotiate, ArrivalEvent, SessionLeave
]

#: Intra-slot application order (see module docstring).
EVENT_ORDER: dict[str, int] = {
    CapacityEvent.kind: 0,
    SessionJoin.kind: 1,
    Renegotiate.kind: 2,
    ArrivalEvent.kind: 3,
    SessionLeave.kind: 4,
}

_EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        CapacityEvent,
        SessionJoin,
        Renegotiate,
        ArrivalEvent,
        SessionLeave,
    )
}


class EventQueue:
    """A stable min-heap of events ordered by ``(time, kind order)``.

    Ties on both keys preserve insertion order, so a trace pushed in
    emission order replays deterministically.
    """

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        for event in events:
            self.push(event)

    def push(self, event: Event) -> None:
        """Insert an event."""
        order = EVENT_ORDER.get(getattr(event, "kind", ""), None)
        if order is None:
            raise ValidationError(
                f"unsupported event type: {type(event).__name__}"
            )
        heapq.heappush(
            self._heap, (event.time, order, self._sequence, event)
        )
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise ValidationError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Event:
        """The earliest event, without removing it."""
        if not self._heap:
            raise ValidationError("peek at an empty EventQueue")
        return self._heap[0][3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Drain the queue in order (consumes it)."""
        while self._heap:
            yield self.pop()


# ----------------------------------------------------------------------
# JSONL record/replay
# ----------------------------------------------------------------------
def _ebb_record(ebb: EBB | None) -> dict[str, float] | None:
    if ebb is None:
        return None
    return {
        "rho": ebb.rho,
        "prefactor": ebb.prefactor,
        "decay_rate": ebb.decay_rate,
    }


def _target_record(target: QoSTarget | None) -> dict[str, float] | None:
    if target is None:
        return None
    return {"d_max": target.d_max, "epsilon": target.epsilon}


def _ebb_from(record: dict[str, float] | None) -> EBB | None:
    if record is None:
        return None
    return EBB(
        rho=record["rho"],
        prefactor=record["prefactor"],
        decay_rate=record["decay_rate"],
    )


def _target_from(record: dict[str, float] | None) -> QoSTarget | None:
    if record is None:
        return None
    return QoSTarget(d_max=record["d_max"], epsilon=record["epsilon"])


def event_to_record(event: Event) -> dict[str, Any]:
    """The JSON-serializable record of any event."""
    if getattr(event, "kind", None) not in _EVENT_TYPES:
        raise ValidationError(
            f"unsupported event type: {type(event).__name__}"
        )
    return event.to_record()


def event_from_record(record: dict[str, Any]) -> Event:
    """Rebuild an event from its :func:`event_to_record` record."""
    if not isinstance(record, dict):
        raise ValidationError(
            f"event record must be a JSON object, got {type(record).__name__}"
        )
    kind = record.get("kind")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValidationError(f"unknown event kind: {kind!r}")
    try:
        if cls is CapacityEvent:
            return CapacityEvent(
                time=record["time"], capacity=record["capacity"]
            )
        if cls is SessionJoin:
            return SessionJoin(
                time=record["time"],
                name=record["name"],
                phi=record["phi"],
                ebb=_ebb_from(record.get("ebb")),
                target=_target_from(record.get("target")),
            )
        if cls is Renegotiate:
            return Renegotiate(
                time=record["time"],
                name=record["name"],
                phi=record.get("phi"),
                ebb=_ebb_from(record.get("ebb")),
                target=_target_from(record.get("target")),
            )
        if cls is ArrivalEvent:
            return ArrivalEvent(
                time=record["time"],
                session=record["session"],
                amount=record["amount"],
            )
        return SessionLeave(time=record["time"], name=record["name"])
    except KeyError as exc:
        raise ValidationError(
            f"event record for kind {kind!r} is missing field {exc}"
        ) from None


def write_event_stream(
    destination: str | IO[str], events: Iterable[Event]
) -> int:
    """Write events as JSON Lines; returns the number written.

    ``destination`` is a path or an open text file.  One record per
    line, in iteration order — the replay order for slot-monotone
    traces (pre-sort or route through :class:`EventQueue` otherwise).
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_event_stream(handle, events)
    count = 0
    for event in events:
        destination.write(json.dumps(event_to_record(event)))
        destination.write("\n")
        count += 1
    return count


def read_event_stream(source: str | IO[str]) -> Iterator[Event]:
    """Yield events from a JSON Lines trace (path or open text file).

    Blank lines are skipped; malformed lines raise
    :class:`repro.errors.ValidationError` with the line number.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_event_stream(handle)
        return
    for lineno, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"line {lineno} is not valid JSON: {exc}"
            ) from None
        yield event_from_record(record)
