"""Crash-safe serving: the durable ingestion loop and its recovery path.

:class:`DurableOnlineService` extends the resilient
:class:`repro.online.service.OnlineService` loop with write-ahead
logging and periodic snapshots.  The ingest cycle for line ``seq`` is::

    [pre-append crash point]
    WAL.append(seq, line)          # framed, CRC'd, flushed
    [post-append crash point]
    apply line to the engine       # identical OnlineService logic
    every snapshot_every lines:
        snapshot (tmp → fsync → rename; [mid-snapshot crash point])

Because the *raw line* is logged before anything observes it, a kill
anywhere in the cycle is recoverable:
``DurableOnlineService.open(directory, mode="recover")``
loads the newest valid snapshot, truncates a torn WAL tail, replays
the remaining entries by sequence number (idempotently — entries at or
below the snapshot's ``applied_seq`` are skipped), and hands back a
service whose engine state, admission context and ingest-protection
counters are exactly those of an uninterrupted run over the same
acknowledged lines.  The chaos suite asserts this equivalence with
``np.array_equal`` on the backlog trajectories for kills at every
crash-point class.

The WAL directory is self-describing: a checksummed ``meta.json``
records the serving configuration (rate, admission flags, protection
limits, WAL policy) so ``repro recover`` needs nothing but the
directory.  Replayed per-event records are re-emitted to the sink —
output is at-least-once downstream of the last snapshot; consumers
needing exactly-once must deduplicate on the ``line`` sequence number.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.errors import DiskPressureError, RecoveryError, ValidationError
from repro.online.admission import AdmissionController
from repro.online.durability.scrub import ScrubReport, scrub_directory
from repro.online.durability.snapshot import SnapshotStore, _decode, _encode
from repro.online.durability.wal import WalEntry, WriteAheadLog, _fsync_dir
from repro.online.durability.writers import parse_fsync_policy
from repro.online.engine import StreamingGPSServer
from repro.online.factory import check_open_mode, check_recover_overrides
from repro.online.records import RecordSink
from repro.online.service import OnlineService

__all__ = [
    "DurableOnlineService",
    "RecoveryReport",
    "open_durable_service",
    "create_durable_service",
    "recover_durable_service",
]

_META_NAME = "meta.json"
_META_FORMAT = 1

#: Configuration keys persisted in ``meta.json`` (everything a bare
#: directory needs to rebuild the service).
_CONFIG_DEFAULTS: dict[str, Any] = {
    "rate": None,  # required at creation
    "packet": False,
    "admission": False,
    "diagnostics": True,
    "incremental": True,
    "record_traces": False,
    "strict": False,
    "drain_slots": 100_000,
    "max_errors": None,
    "heartbeat_every": None,
    "shed_backlog": None,
    "shed_resume": None,
    "snapshot_every": 1_000,
    "fsync": "batch",
    "segment_events": 10_000,
    "batch_events": 256,
}


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover_durable_service` reconstructed and from where."""

    fresh: bool
    applied_seq: int
    snapshot_seq: int | None
    replayed: int
    truncated_bytes: int

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record (emitted first by ``repro recover``)."""
        return {
            "kind": "recovery",
            "fresh": self.fresh,
            "applied_seq": self.applied_seq,
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "truncated_bytes": self.truncated_bytes,
        }


def _write_meta(directory: Path, config: dict[str, Any]) -> None:
    document = {"format": _META_FORMAT, "config": config}
    encoded = _encode(document)
    directory.mkdir(parents=True, exist_ok=True)
    tmp = directory / (_META_NAME + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(encoded)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / _META_NAME)
    _fsync_dir(directory)


def _read_meta(directory: Path) -> dict[str, Any]:
    path = directory / _META_NAME
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise RecoveryError(
            f"cannot read WAL metadata {path}: {exc}"
        ) from exc
    document = _decode(raw)
    if document is None or document.get("format") != _META_FORMAT:
        raise RecoveryError(
            f"WAL metadata {path} is corrupt or has an unsupported "
            "format; refusing to guess the serving configuration"
        )
    config = dict(_CONFIG_DEFAULTS)
    config.update(document.get("config", {}))
    if config["rate"] is None:
        raise RecoveryError(
            f"WAL metadata {path} does not declare a server rate"
        )
    return config


class DurableOnlineService(OnlineService):
    """An :class:`OnlineService` whose ingest survives process kills.

    Construct via :meth:`DurableOnlineService.open` rather than
    directly — it wires the WAL, the snapshot store and the on-disk
    metadata consistently (the old ``create_durable_service`` /
    ``recover_durable_service`` / ``open_durable_service`` triple
    remains as deprecated shims).

    Parameters (beyond :class:`OnlineService`)
    ------------------------------------------
    wal:
        The recovered :class:`~repro.online.durability.wal.WriteAheadLog`
        every line is appended to before being applied.
    snapshots:
        The :class:`~repro.online.durability.snapshot.SnapshotStore`
        for periodic full-state serialization.
    snapshot_every:
        Take a snapshot after every N applied lines (``None``/0
        disables automatic snapshots; :meth:`snapshot` stays available).
    crash:
        Optional :class:`repro.faults.injection.CrashInjector`; fired
        at the ``pre-append`` / ``post-append`` / ``mid-snapshot``
        points by the chaos harness.
    applied_seq:
        Sequence number already applied to the engine (recovery sets
        this to the snapshot's coverage before replay).
    """

    def __init__(
        self,
        engine: StreamingGPSServer,
        *,
        wal: WriteAheadLog,
        snapshots: SnapshotStore,
        snapshot_every: int | None = 1_000,
        crash: Any = None,
        applied_seq: int = 0,
        io: Any = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(engine, **kwargs)
        if snapshot_every is not None and snapshot_every < 0:
            raise ValidationError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self._wal = wal
        self._snapshots = snapshots
        self._snapshot_every = (
            None if not snapshot_every else int(snapshot_every)
        )
        self._crash = crash
        self._io = io
        self._applied_seq = int(applied_seq)
        self._lineno = int(applied_seq)
        self._replaying = False
        self._disk_pressure = False
        self._disk_dropped = 0

    # ------------------------------------------------------------------
    @property
    def applied_seq(self) -> int:
        """Highest ingest sequence number applied to the engine."""
        return self._applied_seq

    @property
    def wal(self) -> WriteAheadLog:
        """The write-ahead log behind this service."""
        return self._wal

    @property
    def durable_seq(self) -> int:
        """Highest ingest sequence number covered by a completed fsync.

        Every applied line is OS-flushed (process-crash safe); this is
        the stronger power-loss-safe watermark, relevant under the
        ``group``/``budget``/``async`` fsync policies where the fsync
        trails the append.
        """
        return self._wal.durable_seq

    def wait_durable(self, seq: int, timeout: float | None = None) -> bool:
        """Block until ingest sequence ``seq`` is fsync-covered."""
        return self._wal.wait_durable(seq, timeout)

    @property
    def disk_pressure(self) -> bool:
        """Whether the service is currently shedding to disk pressure."""
        return self._disk_pressure

    @property
    def disk_dropped(self) -> int:
        """Lines dropped (never acknowledged) under disk pressure."""
        return self._disk_dropped

    def scrub(self, *, repair: bool = True) -> ScrubReport:
        """Verify CRC frames and snapshot checksums; quarantine/repair.

        Runs the offline scrubber (see
        :mod:`repro.online.durability.scrub`) against this service's
        directory between ingest batches, skipping the segment
        currently accepting appends.  The WAL is synced first so the
        scan sees a consistent tail.
        """
        self._wal.sync()
        return scrub_directory(
            self._wal.directory,
            repair=repair,
            io=self._io,
            active_segment=self._wal.active_segment,
        )

    # ------------------------------------------------------------------
    # the unified factory
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        mode: str = "attach",
        rate: float | None = None,
        sink: RecordSink | IO[str] | None = None,
        crash: Any = None,
        io: Any = None,
        **config_overrides: Any,
    ) -> tuple["DurableOnlineService", RecoveryReport]:
        """Open a WAL directory as a durable service.

        The single entry point replacing the old ``create`` /
        ``recover`` / ``open`` function triple; every mode returns
        ``(service, report)``.

        ``mode="create"``
            Initialize a fresh directory (``rate`` required;
            ``config_overrides`` may set any
            :data:`meta configuration <_CONFIG_DEFAULTS>` key —
            ``admission``, ``snapshot_every``, ``fsync``, ...).  An
            already-initialized directory raises
            :class:`repro.errors.RecoveryError`; the report is the
            trivial ``fresh=True`` one.
        ``mode="recover"``
            Rebuild from the directory's metadata, newest valid
            snapshot and WAL replay — state bit-identical to the
            uninterrupted run.  ``rate`` is an optional cross-check
            against the recorded configuration; overrides are
            rejected (:class:`repro.errors.ValidationError`).
        ``mode="attach"`` (default)
            Create-or-recover, the idempotent path behind
            ``repro serve --wal``: a bare directory is created, an
            initialized one recovered (with the same ``rate``
            cross-check).
        """
        if mode == "create":
            if rate is None:
                raise ValidationError(
                    "mode='create' requires rate= to size the server"
                )
            service = _create(
                Path(directory),
                rate=rate,
                sink=sink,
                crash=crash,
                io=io,
                **config_overrides,
            )
            return service, _fresh_report()
        return _open_durable(
            directory,
            mode=mode,
            rate=rate,
            sink=sink,
            crash=crash,
            io=io,
            **config_overrides,
        )

    # ------------------------------------------------------------------
    # service-state capture (snapshot payload alongside the engine)
    # ------------------------------------------------------------------
    def _service_state(self) -> dict[str, Any]:
        return {
            "errors": self._errors,
            "shed": self._shed,
            "heartbeats": self._heartbeats,
            "shedding": self._shedding,
            "lineno": self._lineno,
            "drain_truncated": self._drain_truncated,
            "disk_dropped": self._disk_dropped,
        }

    def _restore_service_state(self, state: dict[str, Any]) -> None:
        self._errors = int(state["errors"])
        self._shed = int(state["shed"])
        self._heartbeats = int(state["heartbeats"])
        self._shedding = bool(state["shedding"])
        self._lineno = int(state["lineno"])
        self._drain_truncated = bool(state["drain_truncated"])
        # Introduced after the first snapshot format shipped: default,
        # don't index, so old snapshots keep restoring.
        self._disk_dropped = int(state.get("disk_dropped", 0))

    # ------------------------------------------------------------------
    # the durable ingest cycle
    # ------------------------------------------------------------------
    def _handle_line(self, lineno: int, line: str) -> None:
        if self._crash is not None:
            self._crash.fire("pre-append", lineno)
        try:
            self._wal.append(lineno, line)
        except DiskPressureError as exc:
            # The partial frame was rolled back; prune everything the
            # retained snapshots cover and retry once before degrading.
            oldest = self._snapshots.oldest_seq()
            pruned = self._wal.prune(oldest) if oldest is not None else 0
            try:
                self._wal.append(lineno, line)
            except DiskPressureError as still:
                self._disk_pressure = True
                self._disk_dropped += 1
                # The line was never logged or acknowledged; hand its
                # sequence number to the next line so the WAL stays
                # contiguous.
                self._lineno = lineno - 1
                self._emit(
                    {
                        "kind": "disk-pressure",
                        "line": lineno,
                        "resumed": False,
                        "dropped": self._disk_dropped,
                        "pruned_segments": pruned,
                        "path": still.path,
                    }
                )
                return
        if self._disk_pressure:
            self._disk_pressure = False
            self._emit(
                {
                    "kind": "disk-pressure",
                    "line": lineno,
                    "resumed": True,
                    "dropped": self._disk_dropped,
                }
            )
        if self._crash is not None:
            self._crash.fire("post-append", lineno)
        super()._handle_line(lineno, line)
        self._applied_seq = lineno
        if (
            self._snapshot_every is not None
            and lineno % self._snapshot_every == 0
        ):
            try:
                self.snapshot()
            except OSError as exc:
                # A failed automatic snapshot must not kill serving:
                # the WAL already holds every acknowledged line, so
                # recovery just replays more of it.  Explicit
                # snapshot() calls still raise.
                self._emit(
                    {
                        "kind": "snapshot-failed",
                        "line": lineno,
                        "error": str(exc),
                    }
                )

    def snapshot(self) -> Path:
        """Commit a snapshot of the current state; prune covered WAL.

        Returns the committed snapshot path.  The write is atomic and
        round-trip-verified (see
        :class:`~repro.online.durability.snapshot.SnapshotStore`);
        WAL segments entirely covered by the oldest *retained*
        snapshot are deleted afterwards.
        """
        path = self._snapshots.write(
            self._applied_seq,
            self._engine.export_state(),
            self._service_state(),
            crash_hook=self._crash,
        )
        oldest = self._snapshots.oldest_seq()
        if oldest is not None:
            self._wal.prune(oldest)
        return path

    def replay(self, entries: Iterable[WalEntry]) -> int:
        """Re-apply recovered WAL entries past the snapshot coverage.

        Entries at or below :attr:`applied_seq` are skipped (idempotent
        replay); a sequence gap raises
        :class:`repro.errors.RecoveryError`.  Replay runs the plain
        (non-appending) service logic — the entries are already in the
        log — and suppresses automatic snapshots.  Returns the number
        of entries applied.
        """
        replayed = 0
        self._replaying = True
        try:
            for entry in entries:
                if entry.seq <= self._applied_seq:
                    continue
                if entry.seq != self._applied_seq + 1:
                    raise RecoveryError(
                        f"WAL replay gap: entry {entry.seq} follows "
                        f"applied seq {self._applied_seq} — entries "
                        f"{self._applied_seq + 1}..{entry.seq - 1} are "
                        "missing; the log lost acknowledged events"
                    )
                OnlineService._handle_line(self, entry.seq, entry.line)
                self._applied_seq = entry.seq
                self._lineno = entry.seq
                replayed += 1
        finally:
            self._replaying = False
        return replayed

    def _extra_summary(self) -> dict[str, Any]:
        # Only a degraded run adds the counter: a clean durable run's
        # output stays byte-identical to the plain service's.
        if not self._disk_dropped:
            return {}
        return {"disk_dropped": self._disk_dropped}

    def shutdown(self) -> Any:
        """Drain, emit the summary, and sync/close the WAL."""
        try:
            return super().shutdown()
        finally:
            self._wal.close()


# ----------------------------------------------------------------------
# construction / recovery entry points
# ----------------------------------------------------------------------
def _build_engine(config: dict[str, Any]) -> Any:
    if config.get("packet"):
        # Imported lazily: repro.packet.serving imports this module.
        from repro.packet.serving import PacketStreamEngine

        return PacketStreamEngine(rate=float(config["rate"]))
    admission = None
    if config["admission"]:
        admission = AdmissionController(
            rate=float(config["rate"]),
            diagnostics=bool(config["diagnostics"]),
            incremental=bool(config["incremental"]),
        )
    return StreamingGPSServer(
        rate=float(config["rate"]),
        admission=admission,
        record_traces=bool(config["record_traces"]),
    )


def _build_service(
    config: dict[str, Any],
    engine: Any,
    wal: WriteAheadLog,
    snapshots: SnapshotStore,
    *,
    sink: IO[str] | None,
    crash: Any,
    applied_seq: int,
    io: Any = None,
) -> DurableOnlineService:
    cls: type[DurableOnlineService] = DurableOnlineService
    if config.get("packet"):
        from repro.packet.serving import DurablePacketService

        cls = DurablePacketService
    return cls(
        engine,
        wal=wal,
        snapshots=snapshots,
        snapshot_every=config["snapshot_every"],
        crash=crash,
        io=io,
        applied_seq=applied_seq,
        sink=sink,
        strict=bool(config["strict"]),
        drain_slots=int(config["drain_slots"]),
        max_errors=config["max_errors"],
        heartbeat_every=config["heartbeat_every"],
        shed_backlog=config["shed_backlog"],
        shed_resume=config["shed_resume"],
    )


def _fresh_report() -> RecoveryReport:
    return RecoveryReport(
        fresh=True,
        applied_seq=0,
        snapshot_seq=None,
        replayed=0,
        truncated_bytes=0,
    )


def _create(
    directory: Path,
    *,
    rate: float,
    sink: RecordSink | IO[str] | None,
    crash: Any,
    io: Any = None,
    **config_overrides: Any,
) -> DurableOnlineService:
    if (directory / _META_NAME).exists():
        raise RecoveryError(
            f"{directory} already contains a durable serving session; "
            "open it with mode='recover' (or `repro recover`) instead "
            "of re-creating it"
        )
    unknown = set(config_overrides) - set(_CONFIG_DEFAULTS)
    if unknown:
        raise ValidationError(
            f"unknown durable-service configuration keys: {sorted(unknown)}"
        )
    config = dict(_CONFIG_DEFAULTS)
    config.update(config_overrides)
    config["rate"] = float(rate)
    if config["packet"] and config["admission"]:
        raise ValidationError(
            "packet serving has no join/leave admission path; "
            "packet=True cannot be combined with admission=True"
        )
    if config["packet"] and config["shed_backlog"] is not None:
        raise ValidationError(
            "packet serving has no slot backlog to shed; packet=True "
            "cannot be combined with shed_backlog"
        )
    # Validate the fsync spec before meta.json is written, so a typo'd
    # policy cannot leave a half-initialized directory behind.
    parse_fsync_policy(str(config["fsync"]))
    _write_meta(directory, config)
    wal = WriteAheadLog(
        directory,
        segment_events=int(config["segment_events"]),
        fsync=str(config["fsync"]),
        batch_events=int(config["batch_events"]),
        io=io,
    )
    entries = wal.recover()
    if entries:
        raise RecoveryError(
            f"{directory} holds {len(entries)} WAL entries but no "
            "metadata; refusing to adopt an unlabelled log"
        )
    snapshots = SnapshotStore(directory, io=io)
    engine = _build_engine(config)
    return _build_service(
        config, engine, wal, snapshots,
        sink=sink, crash=crash, applied_seq=0, io=io,
    )


def _recover(
    directory: Path,
    *,
    sink: RecordSink | IO[str] | None,
    crash: Any,
    expected_rate: float | None,
    io: Any = None,
) -> tuple[DurableOnlineService, RecoveryReport]:
    config = _read_meta(directory)
    if expected_rate is not None and float(expected_rate) != float(
        config["rate"]
    ):
        raise RecoveryError(
            f"requested rate {float(expected_rate):g} contradicts the "
            f"recorded rate {float(config['rate']):g} in {directory}; "
            "refusing to resume with a different server"
        )
    wal = WriteAheadLog(
        directory,
        segment_events=int(config["segment_events"]),
        fsync=str(config["fsync"]),
        batch_events=int(config["batch_events"]),
        io=io,
    )
    entries = wal.recover()
    snapshots = SnapshotStore(directory, io=io)
    document = snapshots.load_newest()
    if document is not None:
        if config.get("packet"):
            from repro.packet.serving import PacketStreamEngine

            engine: Any = PacketStreamEngine.from_state(
                document["engine"]
            )
        else:
            engine = StreamingGPSServer.from_state(document["engine"])
        applied_seq = int(document["applied_seq"])
        snapshot_seq: int | None = applied_seq
    else:
        engine = _build_engine(config)
        applied_seq = 0
        snapshot_seq = None
    service = _build_service(
        config, engine, wal, snapshots,
        sink=sink, crash=crash, applied_seq=applied_seq, io=io,
    )
    if document is not None:
        service._restore_service_state(document["service"])
    replayed = service.replay(entries)
    # Position the log so the next append continues the sequence even
    # when every segment was pruned (snapshot-only recovery).
    wal.position(service.applied_seq)
    report = RecoveryReport(
        fresh=document is None and not entries,
        applied_seq=service.applied_seq,
        snapshot_seq=snapshot_seq,
        replayed=replayed,
        truncated_bytes=wal.truncated_bytes,
    )
    return service, report


def _open_durable(
    directory: str | Path,
    *,
    mode: str = "attach",
    rate: float | None = None,
    sink: RecordSink | IO[str] | None = None,
    crash: Any = None,
    io: Any = None,
    **config_overrides: Any,
) -> tuple[DurableOnlineService, RecoveryReport]:
    check_open_mode(mode)
    directory = Path(directory)
    if mode == "recover":
        check_recover_overrides(config_overrides)
        return _recover(
            directory, sink=sink, crash=crash, expected_rate=rate, io=io
        )
    if mode == "attach" and (directory / _META_NAME).exists():
        # Attach tolerates creation-time overrides: they apply only on
        # the creation branch (restart loops pass the same command
        # line whether the directory is fresh or not).
        return _recover(
            directory, sink=sink, crash=crash, expected_rate=rate, io=io
        )
    if rate is None:
        raise RecoveryError(
            f"{directory} holds no serving session and no rate= was "
            "given to create one"
        )
    service = _create(
        directory, rate=rate, sink=sink, crash=crash, io=io,
        **config_overrides,
    )
    return service, _fresh_report()


# ----------------------------------------------------------------------
# deprecated pre-unification entry points
# ----------------------------------------------------------------------
def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def create_durable_service(
    directory: str | Path,
    *,
    rate: float,
    sink: RecordSink | IO[str] | None = None,
    crash: Any = None,
    **config_overrides: Any,
) -> DurableOnlineService:
    """Deprecated: use ``DurableOnlineService.open(dir, mode="create")``.

    Kept as a thin shim for one release; returns the bare service
    (the unified factory also returns the fresh
    :class:`RecoveryReport`).
    """
    _deprecated(
        "create_durable_service",
        "DurableOnlineService.open(directory, mode='create', ...)",
    )
    return _create(
        Path(directory),
        rate=rate,
        sink=sink,
        crash=crash,
        **config_overrides,
    )


def recover_durable_service(
    directory: str | Path,
    *,
    sink: RecordSink | IO[str] | None = None,
    crash: Any = None,
    expected_rate: float | None = None,
) -> tuple[DurableOnlineService, RecoveryReport]:
    """Deprecated: use ``DurableOnlineService.open(dir, mode="recover")``.

    The old ``expected_rate`` cross-check is the unified factory's
    ``rate`` parameter.
    """
    _deprecated(
        "recover_durable_service",
        "DurableOnlineService.open(directory, mode='recover', ...)",
    )
    return _recover(
        Path(directory), sink=sink, crash=crash, expected_rate=expected_rate
    )


def open_durable_service(
    directory: str | Path,
    *,
    rate: float | None = None,
    sink: RecordSink | IO[str] | None = None,
    crash: Any = None,
    **config_overrides: Any,
) -> tuple[DurableOnlineService, RecoveryReport]:
    """Deprecated: use ``DurableOnlineService.open(dir, mode="attach")``."""
    _deprecated(
        "open_durable_service",
        "DurableOnlineService.open(directory, mode='attach', ...)",
    )
    return _open_durable(
        directory,
        mode="attach",
        rate=rate,
        sink=sink,
        crash=crash,
        **config_overrides,
    )
