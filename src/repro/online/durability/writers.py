"""Pluggable fsync scheduling for the write-ahead log.

:class:`~repro.online.durability.wal.WriteAheadLog` owns the on-disk
format — framing, segments, recovery, rotation — and writes + flushes
every frame to the operating system before ``append`` returns (so an
in-process crash never loses an appended frame, regardless of policy).
*When the bytes are forced to stable storage* is delegated to a
:class:`WalWriter`:

* :class:`SyncWalWriter` — the reference implementation: the exact
  ``always`` / ``batch`` / ``never`` syscall sequence the log shipped
  with, kept bit-identical (same fsync points, same counters);
* :class:`GroupCommitWalWriter` (``fsync="group"`` /
  ``"group:<window>ms"``) — coalesces appends arriving within a short
  window into one ``fdatasync``, amortizing the syscall across
  high-rate ingest and cluster shards;
* :class:`LatencyBudgetWalWriter` (``fsync="budget"`` /
  ``"budget:<budget>ms"``) — bounds how *stale* the oldest unsynced
  append may get: an append finding unsynced work older than the
  budget forces the fsync that covers it.  Sits between ``batch``
  (count-bounded exposure) and ``always`` (zero exposure);
* :class:`AsyncWalWriter` (``fsync="async"``) — a double-buffered
  writer thread: appends flush to the OS inline and return immediately
  while a daemon thread runs ``fdatasync`` on a duplicated file
  descriptor behind them, publishing :attr:`WalWriter.durable_seq` as
  each sync completes.  The unsynced window is bounded
  (``max_unsynced``); an append that would exceed it blocks until the
  sync thread catches up (backpressure), so memory and the power-loss
  exposure window stay bounded.

Two acknowledgement levels fall out of this split, and both are
observable:

* *append returned* — the frame is flushed to the OS page cache:
  process-crash safe (the chaos harness's ``SimulatedCrash``, an OOM
  kill) under **every** policy;
* *fsync-covered* — ``durable_seq`` has reached the frame's sequence
  number: power-loss safe.  :meth:`WalWriter.wait_durable` blocks until
  a given sequence number is covered, which is how a caller releases
  durability-acks under the async writer.

Recovery never consults the writer — the policy only schedules
syscalls, it never changes the bytes — so a directory written under
any policy recovers identically (policy-agnostic recovery).
"""

from __future__ import annotations

import os
import threading
import time
from typing import IO, Callable

from repro.errors import ValidationError, WalSyncError

__all__ = [
    "WalWriter",
    "SyncWalWriter",
    "GroupCommitWalWriter",
    "LatencyBudgetWalWriter",
    "AsyncWalWriter",
    "parse_fsync_policy",
    "make_wal_writer",
    "FSYNC_POLICY_BASES",
]

#: Base names of the accepted ``fsync`` policy specs.  ``group`` and
#: ``budget`` accept an optional ``:<value>ms`` parameter
#: (``"group:2ms"``, ``"budget:5ms"``).
FSYNC_POLICY_BASES: tuple[str, ...] = (
    "always",
    "batch",
    "never",
    "group",
    "budget",
    "async",
)

#: Default group-commit coalescing window (seconds).
DEFAULT_GROUP_WINDOW = 0.002
#: Default latency budget (seconds) — ``fsync="budget"`` == ``"budget:5ms"``.
DEFAULT_LATENCY_BUDGET = 0.005
#: Default bound on the async writer's unsynced append window.
DEFAULT_MAX_UNSYNCED = 1024

# fdatasync skips flushing file metadata (size changes excepted) and is
# the right call for append-only segments; fall back to fsync where the
# platform does not expose it.
_fdatasync: Callable[[int], None] = getattr(os, "fdatasync", os.fsync)


def parse_fsync_policy(spec: str) -> tuple[str, float | None]:
    """Parse an fsync policy spec into ``(base, parameter_seconds)``.

    Accepted forms: the bare bases in :data:`FSYNC_POLICY_BASES` plus
    ``"group:<window>ms"`` and ``"budget:<budget>ms"`` (a bare number
    is read as milliseconds; an ``s`` suffix as seconds).  Raises
    :class:`repro.errors.ValidationError` on anything else.
    """
    if not isinstance(spec, str):
        raise ValidationError(
            f"fsync policy must be a string, got {type(spec).__name__}"
        )
    base, _, param = spec.partition(":")
    if base not in FSYNC_POLICY_BASES:
        raise ValidationError(
            f"fsync policy must be one of {FSYNC_POLICY_BASES} "
            f"(optionally 'group:<ms>ms' / 'budget:<ms>ms'), got {spec!r}"
        )
    if not param:
        if ":" in spec:
            raise ValidationError(
                f"fsync policy {spec!r} has an empty parameter"
            )
        return base, None
    if base not in ("group", "budget"):
        raise ValidationError(
            f"fsync policy {base!r} takes no parameter, got {spec!r}"
        )
    text = param.strip().lower()
    scale = 1e-3  # bare numbers are milliseconds
    if text.endswith("ms"):
        text = text[:-2]
    elif text.endswith("s"):
        text = text[:-1]
        scale = 1.0
    try:
        value = float(text)
    except ValueError:
        raise ValidationError(
            f"fsync policy parameter must be a duration like '5ms', "
            f"got {spec!r}"
        ) from None
    if value <= 0:
        raise ValidationError(
            f"fsync policy parameter must be positive, got {spec!r}"
        )
    return base, value * scale


class WalWriter:
    """Durability scheduler for one :class:`WriteAheadLog`.

    The log calls :meth:`attach` with the open segment handle,
    :meth:`on_append` after each frame is written + flushed,
    :meth:`sync` for an explicit durability barrier, :meth:`detach`
    before rotating/closing a segment, and :meth:`close` when the log
    closes.  Implementations decide when ``fsync``/``fdatasync``
    actually runs and publish :attr:`durable_seq` accordingly.
    """

    #: The policy base name (``"batch"``, ``"group"``, ...).
    policy: str = ""

    def attach(self, handle: IO[bytes]) -> None:
        """Adopt a freshly opened segment handle."""
        raise NotImplementedError

    def on_append(self, seq: int) -> None:
        """One frame for ``seq`` has been written and flushed to the OS."""
        raise NotImplementedError

    def sync(self) -> None:
        """Durability barrier: force everything appended so far to disk.

        ``"never"`` is exempt (it flushes but does not fsync); every
        other policy returns only once all appended frames are covered.
        """
        raise NotImplementedError

    def detach(self) -> None:
        """Release the current handle (segment rotation / close).

        Must barrier first: after ``detach`` returns, every append made
        through the detached handle is as durable as :meth:`sync`
        makes it.
        """
        raise NotImplementedError

    def abandon(self) -> None:
        """Drop the current handle WITHOUT a durability barrier.

        The log's fsync-failure repair path calls this: after a failed
        sync the descriptor is poisoned (retrying the fsync on it can
        falsely succeed — the kernel may already have dropped the dirty
        pages), so the writer must forget the handle and any
        pending-sync bookkeeping while the log seals the segment and
        rewrites the in-doubt frames through a fresh descriptor.
        ``durable_seq`` is left untouched: nothing became durable.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Tear down (stop threads, close duplicated descriptors)."""
        raise NotImplementedError

    @property
    def durable_seq(self) -> int:
        """Highest sequence number known covered by a completed fsync.

        Conservative by construction: under ``"never"`` it stays 0; the
        synchronous policies advance it at each policy-triggered fsync.
        """
        raise NotImplementedError

    def wait_durable(self, seq: int, timeout: float | None = None) -> bool:
        """Block until ``durable_seq >= seq``; return whether it did.

        Synchronous writers are already there or get there on the next
        :meth:`sync`; the async writer genuinely waits on its sync
        thread.  ``timeout=None`` waits indefinitely.
        """
        raise NotImplementedError


class _SingleThreadedWriter(WalWriter):
    """Shared plumbing for the writers that fsync on the caller's thread."""

    #: The syscall forcing bytes to disk; the reference writer pins
    #: ``os.fsync`` to stay bit-identical to the pre-protocol code.
    _sync_fn: Callable[[int], None] = staticmethod(_fdatasync)

    def __init__(self) -> None:
        self._handle: IO[bytes] | None = None
        self._tail_seq = 0
        self._durable_seq = 0

    def attach(self, handle: IO[bytes]) -> None:
        self._handle = handle

    def _fsync_handle(self) -> None:
        """Flush + sync the attached handle; publish durability.

        A handle that exposes its own ``fsync`` method (the fault
        harness's ``FaultyFile``) is synced through it so injected
        failures and durability tracking are observed; plain file
        objects get the writer's pinned syscall.
        """
        if self._handle is None:
            return
        handle_fsync = getattr(self._handle, "fsync", None)
        if handle_fsync is not None:
            handle_fsync()
        else:
            self._handle.flush()
            self._sync_fn(self._handle.fileno())
        self._durable_seq = self._tail_seq

    def detach(self) -> None:
        self.sync()
        self._handle = None

    def abandon(self) -> None:
        self._handle = None

    def close(self) -> None:
        self._handle = None

    @property
    def durable_seq(self) -> int:
        return self._durable_seq

    def wait_durable(self, seq: int, timeout: float | None = None) -> bool:
        if self._durable_seq >= seq:
            return True
        self.sync()
        return self._durable_seq >= seq


class SyncWalWriter(_SingleThreadedWriter):
    """The reference writer: classic ``always`` / ``batch`` / ``never``.

    Reproduces the pre-protocol syscall sequence bit-identically:
    ``always`` fsyncs after every append, ``batch`` after every
    ``batch_events`` appends and on every explicit sync/rotation,
    ``never`` only flushes — same syscall (``os.fsync``), same trigger
    points, same counters as the original inline code.
    """

    _sync_fn = staticmethod(os.fsync)

    def __init__(self, mode: str, *, batch_events: int = 256) -> None:
        if mode not in ("always", "batch", "never"):
            raise ValidationError(
                f"SyncWalWriter mode must be always/batch/never, "
                f"got {mode!r}"
            )
        if batch_events < 1:
            raise ValidationError(
                f"batch_events must be >= 1, got {batch_events}"
            )
        super().__init__()
        self.policy = mode
        self._batch_events = int(batch_events)
        self._unsynced = 0

    def on_append(self, seq: int) -> None:
        self._tail_seq = seq
        self._unsynced += 1
        if self.policy == "always" or (
            self.policy == "batch" and self._unsynced >= self._batch_events
        ):
            self.sync()

    def sync(self) -> None:
        if self._handle is None:
            return
        if self.policy == "never":
            self._handle.flush()
        else:
            self._fsync_handle()
        self._unsynced = 0


class GroupCommitWalWriter(_SingleThreadedWriter):
    """Coalesce appends within a time window into one ``fdatasync``.

    The first unsynced append opens a commit window; the append that
    finds the window expired (or the pending count at ``max_pending``)
    runs the group's single fsync.  Exposure to power loss is at most
    one window of acknowledged appends — like ``batch``, but bounded in
    *time* instead of only in count, so a rate burst cannot stretch the
    window and an idle trickle cannot hold frames unsynced forever.
    """

    def __init__(
        self,
        *,
        window: float = DEFAULT_GROUP_WINDOW,
        max_pending: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window <= 0:
            raise ValidationError(
                f"group-commit window must be positive, got {window}"
            )
        if max_pending < 1:
            raise ValidationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        super().__init__()
        self.policy = "group"
        self._window = float(window)
        self._max_pending = int(max_pending)
        self._clock = clock
        self._pending = 0
        self._window_opened: float | None = None

    @property
    def window(self) -> float:
        """The coalescing window in seconds."""
        return self._window

    @property
    def pending(self) -> int:
        """Appends accumulated in the currently open commit window."""
        return self._pending

    def on_append(self, seq: int) -> None:
        self._tail_seq = seq
        self._pending += 1
        now = self._clock()
        if self._window_opened is None:
            self._window_opened = now
        if (
            self._pending >= self._max_pending
            or now - self._window_opened >= self._window
        ):
            self.sync()

    def sync(self) -> None:
        if self._handle is None:
            return
        self._fsync_handle()
        self._pending = 0
        self._window_opened = None


class LatencyBudgetWalWriter(_SingleThreadedWriter):
    """Bound the age of the oldest unsynced append to a latency budget.

    ``fsync="budget:5ms"`` guarantees that when an append returns, no
    *previously appended* frame has been sitting unsynced for more than
    ~5ms: the append that finds the oldest pending frame past its
    budget performs the fsync covering everything up to and including
    itself.  At high rates this behaves like group commit with the
    budget as the window; at low rates each append's predecessor is
    already old, so it degrades gracefully toward ``always``.
    """

    def __init__(
        self,
        *,
        budget: float = DEFAULT_LATENCY_BUDGET,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget <= 0:
            raise ValidationError(
                f"latency budget must be positive, got {budget}"
            )
        super().__init__()
        self.policy = "budget"
        self._budget = float(budget)
        self._clock = clock
        self._oldest_pending: float | None = None

    @property
    def budget(self) -> float:
        """The latency budget in seconds."""
        return self._budget

    def on_append(self, seq: int) -> None:
        self._tail_seq = seq
        now = self._clock()
        if self._oldest_pending is None:
            self._oldest_pending = now
        if now - self._oldest_pending >= self._budget:
            self.sync()

    def sync(self) -> None:
        if self._handle is None:
            return
        self._fsync_handle()
        self._oldest_pending = None


class AsyncWalWriter(WalWriter):
    """Double-buffered async fsync: a daemon thread syncs behind appends.

    ``on_append`` records the new tail and returns immediately; the
    sync thread runs ``fdatasync`` on a *duplicated* file descriptor
    (syncing a dup forces the same file's data, so the ingest thread's
    handle is never touched concurrently) and publishes
    :attr:`durable_seq` when each sync completes.  The two "buffers"
    are the sequence window ``(durable_seq, tail_seq]`` being filled by
    the ingest thread and the window the sync thread is flushing; an
    append that would grow the unsynced window past ``max_unsynced``
    blocks until the thread catches up (bounded queue + backpressure).

    Crash semantics: an append's *return* still only promises OS-flush
    (process-crash safe, like every policy); a durability ack must wait
    for :meth:`wait_durable` / ``durable_seq`` — acks are released only
    after the covering fsync.  :meth:`sync` and :meth:`detach` are full
    barriers.  A sync failure (ENOSPC, EIO) is captured and re-raised
    on the ingest thread at the next call, so errors are not lost to
    the daemon thread.
    """

    def __init__(self, *, max_unsynced: int = DEFAULT_MAX_UNSYNCED) -> None:
        if max_unsynced < 1:
            raise ValidationError(
                f"max_unsynced must be >= 1, got {max_unsynced}"
            )
        self.policy = "async"
        self._max_unsynced = int(max_unsynced)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)   # signals the thread
        self._advanced = threading.Condition(self._lock)  # signals waiters
        self._fd: int | None = None
        self._handle_fsync: Callable[[], None] | None = None
        self._tail_seq = 0
        self._durable = 0
        self._stop = False
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, handle: IO[bytes]) -> None:
        with self._lock:
            self._raise_pending_locked()
            if self._fd is not None:
                raise ValidationError(
                    "AsyncWalWriter.attach with a handle already attached; "
                    "detach the previous segment first"
                )
            self._fd = os.dup(handle.fileno())
            # A fault-injecting handle exposes its own fsync; route the
            # sync thread through it so injected failures and durable
            # tracking are observed.  Python buffered handles serialize
            # flush/write internally, so this is thread-safe.
            self._handle_fsync = getattr(handle, "fsync", None)
            self._wake.notify_all()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="wal-async-fsync", daemon=True
            )
            self._thread.start()

    def detach(self) -> None:
        self.sync()
        with self._lock:
            fd, self._fd = self._fd, None
            self._handle_fsync = None
            self._wake.notify_all()
        if fd is not None:
            os.close(fd)

    def close(self) -> None:
        thread = self._thread
        with self._lock:
            self._stop = True
            self._wake.notify_all()
            self._advanced.notify_all()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        with self._lock:
            fd, self._fd = self._fd, None
            self._handle_fsync = None
        if fd is not None:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already-closed race
                pass
        self._thread = None

    def abandon(self) -> None:
        # The sync thread either died raising the error being repaired
        # or must be stopped before its descriptor goes away; join it,
        # drop the poisoned window's error (the caller holds it), and
        # reset so a subsequent attach() restarts cleanly.
        thread = self._thread
        with self._lock:
            self._stop = True
            self._error = None
            self._wake.notify_all()
            self._advanced.notify_all()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        with self._lock:
            fd, self._fd = self._fd, None
            self._handle_fsync = None
            self._thread = None
            self._stop = False
        if fd is not None:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already-closed race
                pass

    def __del__(self) -> None:  # pragma: no cover - gc-timing dependent
        # A crash-path teardown (SimulatedCrash unwound past close())
        # must not leak the thread or the dup'd descriptor.
        try:
            self.close()
        except Exception:
            pass

    # -- ingest side ---------------------------------------------------
    def on_append(self, seq: int) -> None:
        with self._lock:
            self._raise_pending_locked()
            self._tail_seq = seq
            self._wake.notify_all()
            # Backpressure: bound the unsynced window.
            while (
                self._tail_seq - self._durable > self._max_unsynced
                and self._error is None
                and not self._stop
            ):
                self._advanced.wait(timeout=1.0)
            self._raise_pending_locked()

    def sync(self) -> None:
        """Barrier: block until every appended frame is fsync-covered."""
        with self._lock:
            self._raise_pending_locked()
            target = self._tail_seq
            self._wake.notify_all()
            while (
                self._durable < target
                and self._fd is not None
                and self._error is None
                and not self._stop
            ):
                self._advanced.wait(timeout=1.0)
            self._raise_pending_locked()

    @property
    def durable_seq(self) -> int:
        with self._lock:
            return self._durable

    @property
    def unsynced(self) -> int:
        """Size of the in-flight window ``tail_seq - durable_seq``."""
        with self._lock:
            return self._tail_seq - self._durable

    def wait_durable(self, seq: int, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._durable < seq:
                self._raise_pending_locked()
                if self._stop or self._fd is None:
                    return False
                remaining = 1.0
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._advanced.wait(timeout=min(remaining, 1.0))
            return True

    def _raise_pending_locked(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise WalSyncError(
                f"async WAL fsync thread failed: {error}",
                first_seq=self._durable + 1,
                last_seq=self._tail_seq,
            ) from error

    # -- sync thread ---------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._stop and (
                    self._fd is None or self._tail_seq <= self._durable
                ):
                    self._wake.wait(timeout=0.1)
                if self._stop:
                    return
                target = self._tail_seq
                fd = self._fd
                handle_fsync = self._handle_fsync
            try:
                if handle_fsync is not None:
                    handle_fsync()
                else:
                    _fdatasync(fd)
            except OSError as exc:
                with self._lock:
                    self._error = exc
                    self._advanced.notify_all()
                return
            with self._lock:
                # The fsync covered at least every byte flushed before
                # we sampled `target`.
                if target > self._durable:
                    self._durable = target
                self._advanced.notify_all()


def make_wal_writer(
    spec: str, *, batch_events: int = 256
) -> WalWriter:
    """Build the :class:`WalWriter` for an fsync policy spec.

    ``batch_events`` parameterizes the count bound shared by ``batch``
    (its sync period) and ``group`` (the ``max_pending`` cap on one
    commit window).
    """
    base, param = parse_fsync_policy(spec)
    if base in ("always", "batch", "never"):
        return SyncWalWriter(base, batch_events=batch_events)
    if base == "group":
        return GroupCommitWalWriter(
            window=param if param is not None else DEFAULT_GROUP_WINDOW,
            max_pending=batch_events,
        )
    if base == "budget":
        return LatencyBudgetWalWriter(
            budget=param if param is not None else DEFAULT_LATENCY_BUDGET
        )
    return AsyncWalWriter()
