"""Atomic, checksummed snapshots of the full serving state.

A snapshot is one JSON document — the
:meth:`repro.online.engine.StreamingGPSServer.export_state` payload
(registry vectors, admission context version counters and Shewchuk
partials included) plus the service's ingest-protection counters and
the WAL sequence number it covers — written as::

    <crc32:08x> <canonical json>\\n

under ``snap-<applied_seq:016d>.json``.  Writes are crash-safe: the
document goes to a ``*.tmp`` file first, is fsynced, and only then
renamed into place (the rename is the commit point; recovery ignores
``*.tmp`` leftovers).  Every write asserts *round-trip bit-identity*
before committing: the state is re-imported from the serialized bytes
and re-exported, and the two byte streams must match exactly — a
snapshot that cannot provably resurrect the state is never written.

Recovery loads the *newest valid* snapshot: candidates are tried in
descending sequence order and a corrupt one (bad CRC, torn JSON) is
skipped in favor of an older sibling, because an older snapshot plus a
longer WAL replay reaches the same state.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from repro.errors import RecoveryError, ValidationError

__all__ = ["SnapshotStore", "SNAPSHOT_PREFIX"]

SNAPSHOT_PREFIX = "snap-"
_SNAPSHOT_SUFFIX = ".json"
_SEQ_DIGITS = 16

#: Bumped when the snapshot document layout changes incompatibly.
SNAPSHOT_FORMAT = 1


def _snapshot_name(applied_seq: int) -> str:
    return f"{SNAPSHOT_PREFIX}{applied_seq:0{_SEQ_DIGITS}d}{_SNAPSHOT_SUFFIX}"


def _snapshot_seq(path: Path) -> int | None:
    name = path.name
    if not (
        name.startswith(SNAPSHOT_PREFIX)
        and name.endswith(_SNAPSHOT_SUFFIX)
    ):
        return None
    digits = name[len(SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def _encode(document: dict[str, Any]) -> bytes:
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + data + b"\n"


def _decode(raw: bytes) -> dict[str, Any] | None:
    """Parse a checksummed snapshot file; ``None`` when invalid."""
    raw = raw.rstrip(b"\n")
    if len(raw) < 10 or raw[8:9] != b" ":
        return None
    try:
        crc = int(raw[:8], 16)
    except ValueError:
        return None
    data = raw[9:]
    if zlib.crc32(data) & 0xFFFFFFFF != crc:
        return None
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    return document


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SnapshotStore:
    """Write/load checksummed snapshots in a WAL directory.

    Parameters
    ----------
    directory:
        Where snapshot files live (shared with the WAL segments).
    keep:
        Number of committed snapshots retained; older ones are deleted
        after each successful write (at least 1).
    verify_roundtrip:
        Assert export → serialize → import → export bit-identity
        before committing each snapshot (the paranoid default; turn
        off only for benchmarking).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        keep: int = 2,
        verify_roundtrip: bool = True,
        io: Any | None = None,
    ) -> None:
        if keep < 1:
            raise ValidationError(f"keep must be >= 1, got {keep}")
        self._dir = Path(directory)
        self._keep = int(keep)
        self._verify = bool(verify_roundtrip)
        self._io = io  # fault-injection filesystem (FaultyFS) or None

    def _open(self, path: Path, mode: str) -> Any:
        if self._io is None:
            return open(path, mode)
        return self._io.open(path, mode)

    def _unlink(self, path: Path) -> None:
        if self._io is None:
            os.unlink(path)
        else:
            self._io.unlink(path)

    def _replace(self, src: Path, dst: Path) -> None:
        if self._io is None:
            os.replace(src, dst)
        else:
            self._io.replace(src, dst)

    @property
    def directory(self) -> Path:
        """The directory snapshots are written to."""
        return self._dir

    def _candidates(self) -> list[Path]:
        if not self._dir.is_dir():
            return []
        paths = [
            path
            for path in self._dir.iterdir()
            if _snapshot_seq(path) is not None
        ]
        return sorted(paths, key=lambda p: _snapshot_seq(p) or 0)

    # ------------------------------------------------------------------
    def write(
        self,
        applied_seq: int,
        engine_state: dict[str, Any],
        service_state: dict[str, Any],
        *,
        crash_hook: Any = None,
    ) -> Path:
        """Atomically commit a snapshot covering WAL seq ``applied_seq``.

        ``crash_hook`` is the chaos harness's
        :class:`repro.faults.injection.CrashInjector` (or None); it is
        fired at the ``mid-snapshot`` point *after* the temp file is
        written but *before* the rename, simulating a kill that leaves
        a half-committed snapshot on disk.
        """
        document = {
            "format": SNAPSHOT_FORMAT,
            "applied_seq": int(applied_seq),
            "engine": engine_state,
            "service": service_state,
        }
        encoded = _encode(document)
        if self._verify:
            self._assert_roundtrip(document, encoded)
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / _snapshot_name(applied_seq)
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            with self._open(tmp, "wb") as handle:
                handle.write(encoded)
                handle.flush()
                if crash_hook is not None:
                    crash_hook.fire("mid-snapshot", int(applied_seq))
                sync = getattr(handle, "fsync", None)
                if sync is not None:
                    sync()
                else:
                    os.fsync(handle.fileno())
        except OSError:
            # A failed write must not leave a half-written temp file
            # for the next write (or a budget model) to stumble over.
            if tmp.exists():
                try:
                    self._unlink(tmp)
                except OSError:
                    pass
            raise
        self._replace(tmp, path)
        _fsync_dir(self._dir)
        self._prune()
        return path

    def _assert_roundtrip(
        self, document: dict[str, Any], encoded: bytes
    ) -> None:
        """Bit-identity gate: a snapshot must provably resurrect itself."""
        decoded = _decode(encoded)
        if decoded is None:
            raise RecoveryError(
                "snapshot round-trip verification failed: the encoded "
                "document does not decode"
            )
        if decoded["engine"].get("kind") == "packet-stream-engine":
            # Imported lazily: the packet serving stack sits above the
            # durability layer.
            from repro.packet.serving import PacketStreamEngine

            restored: Any = PacketStreamEngine.from_state(
                decoded["engine"]
            )
        else:
            from repro.online.engine import StreamingGPSServer

            restored = StreamingGPSServer.from_state(decoded["engine"])
        re_encoded = _encode(
            {
                "format": decoded["format"],
                "applied_seq": decoded["applied_seq"],
                "engine": restored.export_state(),
                "service": decoded["service"],
            }
        )
        if re_encoded != encoded:
            raise RecoveryError(
                "snapshot round-trip verification failed: restoring the "
                "engine and re-exporting produced different bytes; "
                "refusing to commit a snapshot that cannot provably "
                "resurrect the serving state"
            )

    def _prune(self) -> None:
        candidates = self._candidates()
        for path in candidates[: -self._keep]:
            self._unlink(path)
        # Crash leftovers from interrupted writes are dead weight.
        if self._dir.is_dir():
            for path in self._dir.iterdir():
                if path.name.endswith(".tmp") and path.name.startswith(
                    SNAPSHOT_PREFIX
                ):
                    self._unlink(path)

    def oldest_seq(self) -> int | None:
        """Sequence number of the oldest retained *valid* snapshot.

        This is the WAL-prune horizon: every log entry at or below it
        is covered by a snapshot recovery could fall back to.  Only
        snapshots that actually decode count — a corrupt file is not a
        fallback, so letting it anchor the horizon would either retain
        dead log (corrupt-oldest) or, worse, claim coverage the
        recovery path cannot deliver.  Returns ``None`` when no valid
        snapshot exists (then nothing may be pruned).
        """
        for path in self._candidates():
            document = _decode(path.read_bytes())
            if (
                document is not None
                and document.get("format") == SNAPSHOT_FORMAT
                and isinstance(document.get("applied_seq"), int)
            ):
                return int(document["applied_seq"])
        return None

    # ------------------------------------------------------------------
    def load_newest(self) -> dict[str, Any] | None:
        """The newest *valid* snapshot document, or ``None``.

        Candidates are tried newest-first; a corrupt file (bad CRC,
        torn write that somehow got renamed, wrong format) is skipped —
        an older snapshot plus a longer WAL replay reconstructs the
        same state, so recovery prefers degrading to older snapshots
        over failing.
        """
        for path in reversed(self._candidates()):
            document = _decode(path.read_bytes())
            if document is None:
                continue
            if document.get("format") != SNAPSHOT_FORMAT:
                continue
            if not isinstance(document.get("applied_seq"), int):
                continue
            return document
        return None
