"""Checksummed, segmented write-ahead log for the online service.

Every ingested line is framed and appended here *before* it is applied
to the engine, so a crash at any point loses at most work that was
never acknowledged.  The on-disk format is deliberately boring:

* one frame per line: ``<crc32:08x> <payload json>\\n``, where the
  payload is ``{"seq": <int>, "line": <raw ingest line>}`` and the CRC
  covers the payload's UTF-8 bytes.  Logging the *raw line* (not the
  parsed event) is what makes recovery provably equivalent to the
  uninterrupted run — replay pushes the identical bytes through the
  identical service logic, so error records, shed decisions and
  admission outcomes all reproduce;
* segments named ``wal-<first_seq:016d>.log``; a new segment starts
  every ``segment_events`` appends, bounding the rewrite cost of
  recovery scans and letting old segments be pruned once a snapshot
  covers them;
* a torn tail — a final frame cut short by a crash mid-``write`` — is
  detected by the CRC/framing check and *truncated* on recovery.
  Corruption anywhere except the tail of the final segment (a valid
  frame following a bad one, or a bad frame in a non-final segment)
  is not a torn tail and raises
  :class:`repro.errors.RecoveryError` instead of being silently
  dropped.

The fsync policy trades durability for throughput.  *When* the flushed
bytes are forced to stable storage is delegated to a pluggable
:class:`~repro.online.durability.writers.WalWriter`; the accepted
policy specs are:

* ``"always"`` — fsync after every append: an acknowledged event
  survives power loss (classic WAL semantics);
* ``"batch"`` — fsync every ``batch_events`` appends and on segment
  rotation/close: bounded ingest buffering, at most one batch of
  acknowledged events is exposed to power loss;
* ``"never"`` — leave syncing to the OS: crash-of-the-*process* safe
  (the bytes are in the page cache) but not power-loss safe;
* ``"group"`` / ``"group:<window>ms"`` — group commit: appends within
  a short window share one ``fdatasync``;
* ``"budget"`` / ``"budget:<budget>ms"`` — latency budget: the oldest
  unsynced append is never older than the budget;
* ``"async"`` — a background thread fsyncs behind appends with a
  bounded unsynced window; durability acks via :attr:`durable_seq` /
  :meth:`WriteAheadLog.wait_durable`.

All policies write and flush each frame to the operating system
immediately, so an in-process crash (the :class:`SimulatedCrash` of
the chaos harness, an OOM kill of the interpreter) never loses an
appended frame regardless of policy.  Recovery never consults the
writer, so any directory recovers identically whatever policy wrote
it.

The disk itself is part of the fault model.  Frames appended but not
yet fsync-covered are retained in memory (``_pending``); when a
policy-triggered fsync fails, retrying it on the same descriptor
cannot be trusted (the kernel may already have dropped the dirty
pages — the fsyncgate semantics), so the log *seals* the descriptor,
truncates the segment back to the durable boundary, rewrites the
in-doubt frames through a fresh descriptor and syncs again; only if
that repair also fails does a typed
:class:`~repro.errors.WalSyncError` escape, naming the poisoned
sequence window.  ``ENOSPC`` during an append rolls the partial frame
back (the segment stays parseable) and raises
:class:`~repro.errors.DiskPressureError` so the service can prune and
degrade instead of crashing.  All file operations route through an
optional ``io`` object (the fault harness's
:class:`~repro.faults.io.FaultyFS`) so these paths are testable
deterministically.
"""

from __future__ import annotations

import errno
import json
import logging
import os
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterator

from repro.errors import (
    DiskPressureError,
    RecoveryError,
    UnrecoverableRangeError,
    ValidationError,
    WalSyncError,
)
from repro.online.durability.writers import (
    WalWriter,
    make_wal_writer,
    parse_fsync_policy,
)

__all__ = [
    "WalEntry",
    "WriteAheadLog",
    "FSYNC_POLICIES",
    "SEGMENT_PREFIX",
]

#: The classic fsync policies (kept for compatibility); the full spec
#: grammar — including ``group``/``budget``/``async`` — lives in
#: :mod:`repro.online.durability.writers`.
FSYNC_POLICIES: tuple[str, ...] = ("always", "batch", "never")

_log = logging.getLogger("repro.online.durability")

#: Directories whose fsync already failed once — warn per directory,
#: not per call, so a read-only or network filesystem does not flood
#: the log while staying observable.
_FSYNC_DIR_WARNED: set[str] = set()

SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_SEQ_DIGITS = 16


@dataclass(frozen=True)
class WalEntry:
    """One recovered WAL frame: the ingest sequence number and raw line."""

    seq: int
    line: str


def _segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:0{_SEQ_DIGITS}d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int | None:
    name = path.name
    if not (
        name.startswith(SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
    ):
        return None
    digits = name[len(SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def _frame(seq: int, line: str) -> bytes:
    payload = json.dumps(
        {"seq": seq, "line": line}, separators=(",", ":")
    )
    data = payload.encode("utf-8")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + data + b"\n"


def _parse_frame(raw: bytes) -> WalEntry | None:
    """Decode one framed line (without the trailing newline).

    Returns ``None`` for anything that is not a complete, checksummed
    frame — the caller decides whether that means a torn tail or
    mid-log corruption.
    """
    if len(raw) < 10 or raw[8:9] != b" ":
        return None
    try:
        crc = int(raw[:8], 16)
    except ValueError:
        return None
    data = raw[9:]
    if zlib.crc32(data) & 0xFFFFFFFF != crc:
        return None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("seq"), int)
        or not isinstance(payload.get("line"), str)
    ):
        return None
    return WalEntry(seq=payload["seq"], line=payload["line"])


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync (durability of renames/creates).

    A failure degrades durability (a rename/create may not survive
    power loss) without breaking correctness, so it is logged — once
    per directory, naming the directory and the error — rather than
    raised or silently swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError as exc:
        _warn_fsync_dir(directory, exc)
        return
    try:
        os.fsync(fd)
    except OSError as exc:
        _warn_fsync_dir(directory, exc)
    finally:
        os.close(fd)


def _warn_fsync_dir(directory: Path, exc: OSError) -> None:
    key = str(directory)
    if key in _FSYNC_DIR_WARNED:
        return
    _FSYNC_DIR_WARNED.add(key)
    _log.warning(
        "directory fsync failed for %s (%s): renames/creates in this "
        "directory are not power-loss durable",
        directory,
        exc,
    )


class WriteAheadLog:
    """Append-only, segmented, CRC-framed event log in one directory.

    Construct, then call :meth:`recover` exactly once before the first
    :meth:`append`: recovery scans the segments, truncates a torn
    tail, validates sequence continuity and positions the log for new
    appends.  A fresh (empty) directory recovers to an empty log.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_events: int = 10_000,
        fsync: str | WalWriter = "batch",
        batch_events: int = 256,
        io: Any | None = None,
    ) -> None:
        if segment_events < 1:
            raise ValidationError(
                f"segment_events must be >= 1, got {segment_events}"
            )
        if batch_events < 1:
            raise ValidationError(
                f"batch_events must be >= 1, got {batch_events}"
            )
        if isinstance(fsync, WalWriter):
            self._writer: WalWriter = fsync
            self._fsync = fsync.policy
        else:
            parse_fsync_policy(fsync)  # eager spec validation
            self._writer = make_wal_writer(fsync, batch_events=batch_events)
            self._fsync = str(fsync)
        self._dir = Path(directory)
        self._segment_events = int(segment_events)
        self._batch_events = int(batch_events)
        self._io = io  # fault-injection filesystem (FaultyFS) or None
        self._handle: IO[bytes] | None = None
        self._segment_path: Path | None = None
        self._segment_count = 0  # appends in the open segment
        self._segment_size = 0  # successfully appended bytes in it
        self._last_seq = 0
        self._recovered = False
        self._truncated_bytes = 0
        #: Frames appended but not yet known fsync-covered, retained so
        #: the seal/rewrite repair path can replay them after a failed
        #: fsync without losing process-acked lines.
        self._pending: deque[tuple[int, bytes]] = deque()

    # ------------------------------------------------------------------
    # file operations (routable through a fault-injecting filesystem)
    # ------------------------------------------------------------------
    def _open(self, path: Path, mode: str = "ab") -> IO[bytes]:
        if self._io is None:
            return open(path, mode)
        return self._io.open(path, mode)

    def _unlink(self, path: Path) -> None:
        if self._io is None:
            os.unlink(path)
        else:
            self._io.unlink(path)

    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The directory holding the segments."""
        return self._dir

    @property
    def last_seq(self) -> int:
        """Highest sequence number on disk (0 when the log is empty)."""
        return self._last_seq

    @property
    def truncated_bytes(self) -> int:
        """Bytes dropped as a torn tail by the last :meth:`recover`."""
        return self._truncated_bytes

    @property
    def fsync_policy(self) -> str:
        """The configured fsync policy spec (e.g. ``"budget:5ms"``)."""
        return self._fsync

    @property
    def writer(self) -> WalWriter:
        """The :class:`WalWriter` scheduling this log's fsyncs."""
        return self._writer

    @property
    def durable_seq(self) -> int:
        """Highest sequence number covered by a completed fsync."""
        return self._writer.durable_seq

    @property
    def active_segment(self) -> Path | None:
        """Path of the segment currently accepting appends, if any.

        The scrubber skips this segment: its tail is allowed to be
        mid-write, and quarantining it out from under the writer would
        corrupt the log rather than repair it.
        """
        return self._segment_path

    @property
    def pending_frames(self) -> int:
        """Appended frames not yet known fsync-covered (repair buffer)."""
        return len(self._pending)

    def wait_durable(self, seq: int, timeout: float | None = None) -> bool:
        """Block until ``seq`` is fsync-covered; return whether it is.

        Synchronous policies force the covering sync inline; the
        ``async`` policy waits on its background thread.  ``"never"``
        returns ``False`` for any appended-but-unsynced sequence.
        """
        return self._writer.wait_durable(seq, timeout)

    def _segments(self) -> list[Path]:
        if not self._dir.is_dir():
            return []
        segments = [
            path
            for path in self._dir.iterdir()
            if _segment_first_seq(path) is not None
        ]
        return sorted(segments, key=lambda p: _segment_first_seq(p) or 0)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> list[WalEntry]:
        """Scan the segments; truncate a torn tail; return all entries.

        Returns every valid entry in sequence order.  Housekeeping on
        the way in: orphaned ``*.tmp`` files (a crash between mkstemp
        and rename) are swept, and zero-length *trailing* segments (a
        crash between segment creation and the first append) are
        removed as clean torn tails.  Raises
        :class:`repro.errors.RecoveryError` on mid-log corruption (a
        bad frame that is *not* the tail of the final segment) or on a
        sequence discontinuity between frames, and
        :class:`repro.errors.UnrecoverableRangeError` — naming the
        exact missing sequence ranges — when a zero-length segment
        sits *between* populated ones.
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        entries: list[WalEntry] = []
        self._truncated_bytes = 0
        swept = False
        for orphan in sorted(self._dir.glob("*.tmp")):
            self._unlink(orphan)
            swept = True
        segments = self._segments()
        # A zero-length trailing segment is a clean torn tail: the
        # process died after creating the file, before the first frame.
        while segments and segments[-1].stat().st_size == 0:
            self._unlink(segments.pop())
            swept = True
        if swept:
            _fsync_dir(self._dir)
        # A zero-length segment with populated successors is not a torn
        # tail: the entries it was named for are simply gone.  Name the
        # exact missing ranges instead of replaying past the gap.
        missing: list[tuple[int, int]] = []
        for segment, successor in zip(segments, segments[1:]):
            if segment.stat().st_size:
                continue
            first = _segment_first_seq(segment) or 0
            next_first = _segment_first_seq(successor) or 0
            missing.append((first, next_first - 1))
        if missing:
            described = ", ".join(f"{a}..{b}" for a, b in missing)
            raise UnrecoverableRangeError(
                f"WAL in {self._dir} has zero-length non-final "
                f"segments: entries {described} are unrecoverable",
                ranges=tuple(missing),
            )
        for index, segment in enumerate(segments):
            final = index == len(segments) - 1
            entries.extend(self._scan_segment(segment, final=final))
        for prev, cur in zip(entries, entries[1:]):
            if cur.seq != prev.seq + 1:
                raise RecoveryError(
                    f"WAL sequence discontinuity in {self._dir}: frame "
                    f"{cur.seq} follows frame {prev.seq} — entries "
                    f"{prev.seq + 1}..{cur.seq - 1} are missing"
                )
        self._last_seq = entries[-1].seq if entries else 0
        self._recovered = True
        self._segment_path = None
        self._segment_size = 0
        self._pending.clear()
        return entries

    def _scan_segment(self, segment: Path, *, final: bool) -> list[WalEntry]:
        raw = segment.read_bytes()
        entries: list[WalEntry] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # No terminating newline: can only be a torn tail.
                self._truncate_tail(
                    segment, offset, len(raw) - offset, final=final
                )
                break
            entry = _parse_frame(raw[offset:newline])
            if entry is None:
                # A bad frame is tolerable only as the tail: nothing
                # after it may parse as a valid frame.
                if any(
                    _parse_frame(chunk) is not None
                    for chunk in raw[newline + 1 :].split(b"\n")
                ):
                    raise RecoveryError(
                        f"WAL segment {segment.name} is corrupt mid-log "
                        f"at byte {offset}: valid frames follow a bad "
                        "frame (not a torn tail); refusing to replay"
                    )
                self._truncate_tail(
                    segment, offset, len(raw) - offset, final=final
                )
                break
            entries.append(entry)
            offset = newline + 1
        return entries

    def _truncate_tail(
        self, segment: Path, offset: int, dropped: int, *, final: bool
    ) -> None:
        if not final:
            raise RecoveryError(
                f"WAL segment {segment.name} is corrupt at byte {offset} "
                "but is not the final segment; a torn tail can only "
                "exist at the end of the log"
            )
        handle = self._open(segment, "r+b")
        try:
            handle.truncate(offset)
            sync = getattr(handle, "fsync", None)
            if sync is not None:
                sync()
            else:
                handle.flush()
                os.fsync(handle.fileno())
        finally:
            handle.close()
        self._truncated_bytes = dropped

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def append(self, seq: int, line: str) -> None:
        """Frame and append one ingest line under sequence number ``seq``.

        The frame is written and flushed to the OS before returning;
        fsync follows the configured policy.  ``seq`` must be exactly
        ``last_seq + 1``.

        Disk faults surface typed: a write failure rolls the partial
        frame back (the segment stays parseable, ``last_seq`` does not
        advance) and raises :class:`~repro.errors.DiskPressureError`
        for ``ENOSPC`` or :class:`~repro.errors.WalSyncError`
        otherwise; a policy-triggered fsync failure runs the
        seal/truncate/rewrite repair cycle and raises
        :class:`~repro.errors.WalSyncError` only if that also fails.
        """
        if not self._recovered:
            raise ValidationError(
                "WriteAheadLog.append before recover(); call recover() "
                "to position the log first"
            )
        if seq != self._last_seq + 1:
            raise ValidationError(
                f"WAL append out of order: expected seq "
                f"{self._last_seq + 1}, got {seq}"
            )
        handle = self._rotate_if_needed(seq)
        frame = _frame(seq, line)
        try:
            handle.write(frame)
            handle.flush()
        except OSError as exc:
            self._rollback_partial(exc, seq)  # always raises
        self._last_seq = seq
        self._segment_count += 1
        self._segment_size += len(frame)
        self._pending.append((seq, frame))
        try:
            self._writer.on_append(seq)
        except (WalSyncError, OSError) as exc:
            self._repair_sync_failure(exc)
        self._drop_durable_pending()

    def _rotate_if_needed(self, seq: int) -> IO[bytes]:
        if (
            self._handle is not None
            and self._segment_count >= self._segment_events
        ):
            try:
                self._writer.detach()
            except (WalSyncError, OSError) as exc:
                self._repair_sync_failure(exc)
                self._writer.abandon()
            self._drop_durable_pending()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._segment_path = None
        if self._handle is None:
            self._dir.mkdir(parents=True, exist_ok=True)
            if self._segment_path is None:
                self._segment_path = self._dir / _segment_name(seq)
                self._segment_count = 0
            self._segment_size = (
                self._segment_path.stat().st_size
                if self._segment_path.exists()
                else 0
            )
            self._handle = self._open(self._segment_path, "ab")
            self._writer.attach(self._handle)
            if self._writer.policy != "never":
                _fsync_dir(self._dir)
        return self._handle

    def _drop_durable_pending(self) -> None:
        """Release retained frames the writer now covers with an fsync."""
        if self._writer.policy == "never":
            # Nothing will ever cover these; retaining them would only
            # grow memory without enabling any repair.
            self._pending.clear()
            return
        durable = self._writer.durable_seq
        while self._pending and self._pending[0][0] <= durable:
            self._pending.popleft()

    def _rollback_partial(self, exc: OSError, seq: int) -> None:
        """Roll a failed frame write back so the segment stays parseable.

        The frame for ``seq`` may be partially on disk (a short write,
        or ``ENOSPC`` after some bytes landed); truncating back to the
        last successfully appended byte keeps every prior frame intact
        and leaves the log positioned to retry the same ``seq``.
        Always raises: :class:`~repro.errors.DiskPressureError` for
        ``ENOSPC`` (the caller may prune and retry) or
        :class:`~repro.errors.WalSyncError` for anything else.
        """
        path = self._segment_path
        self._writer.abandon()
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        try:
            if path is not None and path.exists():
                handle = self._open(path, "r+b")
                try:
                    handle.truncate(self._segment_size)
                finally:
                    handle.close()
                self._handle = self._open(path, "ab")
                self._writer.attach(self._handle)
        except OSError as repair_exc:
            self._handle = None
            raise WalSyncError(
                f"WAL append for seq {seq} failed ({exc}) and rollback "
                f"also failed: {repair_exc}",
                first_seq=seq,
                last_seq=seq,
            ) from exc
        if getattr(exc, "errno", None) == errno.ENOSPC:
            raise DiskPressureError(
                f"WAL append for seq {seq} hit ENOSPC in {self._dir}; "
                "the partial frame was rolled back",
                path=str(path) if path is not None else None,
            ) from exc
        raise WalSyncError(
            f"WAL append write failed for seq {seq}: {exc}",
            first_seq=seq,
            last_seq=seq,
        ) from exc

    def _repair_sync_failure(self, exc: BaseException) -> None:
        """Seal, truncate, rewrite and re-sync after a failed fsync.

        Retrying an fsync on the descriptor it failed on can falsely
        succeed (fsyncgate), so repair never does: the descriptor is
        abandoned and closed, the segment is truncated back to the
        durable boundary, the retained in-doubt frames are rewritten
        through a fresh descriptor, and a new fsync covers them.  On
        success the log is exactly as durable as if the original sync
        had worked; on any failure a
        :class:`~repro.errors.WalSyncError` names the poisoned window.
        """
        path = self._segment_path
        pending = list(self._pending)
        first = pending[0][0] if pending else self._last_seq
        last = self._last_seq
        self._writer.abandon()
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        try:
            if path is None:
                raise RecoveryError("no active segment to repair")
            base = self._segment_size - sum(
                len(frame) for _, frame in pending
            )
            handle = self._open(path, "r+b")
            try:
                handle.truncate(base)
            finally:
                handle.close()
            self._handle = self._open(path, "ab")
            for _, frame in pending:
                self._handle.write(frame)
            self._handle.flush()
            self._writer.attach(self._handle)
            self._writer.sync()
        except (WalSyncError, OSError, RecoveryError) as repair_exc:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
            raise WalSyncError(
                f"WAL fsync failed ({exc}) and the seal/rewrite repair "
                f"also failed: {repair_exc}; seqs {first}..{last} are "
                "not power-loss durable",
                first_seq=first,
                last_seq=last,
            ) from exc
        self._drop_durable_pending()

    def position(self, seq: int) -> None:
        """Advance the append position to ``seq`` without writing.

        Used after snapshot-only recovery (every covered segment was
        pruned): the log may be empty on disk while the engine state is
        already at ``seq``, and the next append must carry ``seq + 1``.
        Never moves the position backwards.
        """
        if not self._recovered:
            raise ValidationError(
                "WriteAheadLog.position before recover(); call "
                "recover() first"
            )
        if seq > self._last_seq:
            self._last_seq = int(seq)

    def sync(self) -> None:
        """Flush and (policy permitting) fsync the open segment.

        A durability barrier for every policy except ``"never"``: on
        return, all appended frames are fsync-covered (the ``async``
        writer blocks here until its thread catches up).
        """
        if self._handle is None:
            return
        try:
            self._handle.flush()
            self._writer.sync()
        except (WalSyncError, OSError) as exc:
            self._repair_sync_failure(exc)
        self._drop_durable_pending()

    def close(self) -> None:
        """Sync and close the open segment; tear down the writer."""
        if self._handle is not None:
            try:
                self._handle.flush()
                self._writer.detach()
            except (WalSyncError, OSError) as exc:
                # Repair restores durability through a fresh handle;
                # nothing is pending after it, so release without a
                # second barrier.
                self._repair_sync_failure(exc)
                self._writer.abandon()
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
        self._segment_path = None
        self._pending.clear()
        self._writer.close()

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def prune(self, upto_seq: int) -> int:
        """Delete segments whose entries are all ``<= upto_seq``.

        ``upto_seq`` is the snapshot-covered horizon: every entry at or
        below it can be reconstructed from a retained snapshot, so the
        segments holding only such entries are dead weight.  Segments
        are contiguous (``recover`` enforces sequence continuity), so a
        segment's *tail* is ``first_seq(successor) - 1``; the segment
        is removable exactly when that tail does not extend past the
        horizon.  The boundary matters: a segment whose tail *is* the
        horizon (rotation landed exactly on the snapshot seq) is fully
        covered and removed; a tail even one past the horizon overlaps
        un-snapshotted entries and must survive, or recovery from the
        oldest retained snapshot would find a sequence gap.  The active
        (final) segment is never removed.  Returns the number of
        segments deleted.
        """
        segments = self._segments()
        removed = 0
        for path, successor in zip(segments, segments[1:]):
            next_first = _segment_first_seq(successor)
            if next_first is None:
                # An unparsable successor name breaks the tail
                # inference; keep everything from here on rather than
                # guess at coverage.
                break
            tail = next_first - 1
            if tail > upto_seq:
                break
            self._unlink(path)
            removed += 1
        if removed:
            _fsync_dir(self._dir)
        return removed

    def __iter__(self) -> Iterator[WalEntry]:  # pragma: no cover - debug aid
        yield from self.recover()
