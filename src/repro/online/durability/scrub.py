"""Offline verification and repair of WAL segments and snapshots.

Recovery (:meth:`WriteAheadLog.recover`) is deliberately strict: it
refuses to replay past mid-log corruption.  That is correct — silently
skipping frames would desynchronize the engine from its acknowledged
history — but it turns a single flipped bit in a *cold* segment into a
service that cannot restart, even when every entry in that segment is
also covered by a retained snapshot.  The scrubber closes that gap:

* every segment's CRC frames and every snapshot's checksum are
  verified (the *active* segment, when one is supplied, is skipped —
  its tail is legitimately mid-write);
* corrupt files are moved to a ``quarantine/`` subdirectory with a
  ``MANIFEST.json`` recording what was moved and why — evidence is
  preserved, never deleted;
* when the newest valid snapshot covers everything a corrupt segment
  held, the log is *repaired*: the corrupt segment and every segment
  before it are quarantined together.  Segment tails are monotone, so
  quarantining the whole prefix up to the newest corrupt segment
  leaves a contiguous retained suffix whose first entry is at most
  ``covered_seq + 1`` — recovery from the snapshot plus the retained
  suffix is then gap-free (replay skips already-applied entries);
* when coverage does *not* reach — a corrupt segment holds entries
  past the newest valid snapshot, or no valid snapshot exists — the
  scrub reports the **exact** unrecoverable sequence ranges and
  touches nothing: :meth:`ScrubReport.raise_if_unrecoverable` turns
  that into a typed :class:`~repro.errors.UnrecoverableRangeError`
  the cluster supervisor surfaces when refusing to readmit a shard.

The entry points are :func:`scrub_directory` (pure function over one
durable directory; the ``repro scrub`` CLI wraps it) and
:meth:`repro.online.durability.service.DurableOnlineService.scrub`
(same check between ingest batches, skipping the live segment).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import UnrecoverableRangeError
from repro.online.durability.snapshot import (
    SNAPSHOT_FORMAT,
    _decode,
    _snapshot_seq,
)
from repro.online.durability.wal import (
    _parse_frame,
    _segment_first_seq,
)

__all__ = ["ScrubReport", "scrub_directory", "QUARANTINE_DIR"]

#: Subdirectory (of the durable directory) corrupt files are moved to.
QUARANTINE_DIR = "quarantine"
_MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one scrub pass over a durable directory."""

    directory: str
    segments_checked: int
    snapshots_checked: int
    corrupt_segments: tuple[str, ...] = ()
    corrupt_snapshots: tuple[str, ...] = ()
    quarantined: tuple[str, ...] = ()
    repaired: bool = False
    covered_seq: int | None = None
    unrecoverable: tuple[tuple[int, int], ...] = field(default=())

    @property
    def clean(self) -> bool:
        """No corruption was found at all."""
        return not self.corrupt_segments and not self.corrupt_snapshots

    @property
    def ok(self) -> bool:
        """The directory is (now) recoverable: clean or fully repaired."""
        if self.unrecoverable:
            return False
        return self.clean or self.repaired

    def to_record(self) -> dict[str, Any]:
        """The scrub outcome as one JSON-serializable record."""
        return {
            "kind": "scrub",
            "directory": self.directory,
            "segments_checked": self.segments_checked,
            "snapshots_checked": self.snapshots_checked,
            "corrupt_segments": list(self.corrupt_segments),
            "corrupt_snapshots": list(self.corrupt_snapshots),
            "quarantined": list(self.quarantined),
            "repaired": self.repaired,
            "covered_seq": self.covered_seq,
            "unrecoverable": [list(pair) for pair in self.unrecoverable],
            "ok": self.ok,
        }

    def raise_if_unrecoverable(self) -> "ScrubReport":
        """Raise a typed error naming the exact lost ranges, else self."""
        if self.unrecoverable:
            described = ", ".join(
                f"{first}..{last}" for first, last in self.unrecoverable
            )
            raise UnrecoverableRangeError(
                f"scrub of {self.directory} found unrecoverable entries: "
                f"seqs {described} are in corrupt segments not covered "
                "by any valid snapshot",
                ranges=self.unrecoverable,
            )
        return self


@dataclass
class _SegmentInfo:
    path: Path
    first: int
    corrupt: bool
    reason: str
    tail: int


def _check_segment(path: Path, *, final: bool) -> tuple[bool, str, int]:
    """Verify one segment's frames.

    Returns ``(corrupt, reason, last_valid_seq)`` where
    ``last_valid_seq`` is the highest sequence number that parses
    anywhere in the file (0 when nothing does).  A trailing bad frame
    in the *final* segment is a torn tail, not corruption — recovery
    truncates it; anywhere else a bad frame (or an empty non-final
    segment) is corruption.
    """
    raw = path.read_bytes()
    if not raw:
        return (not final), "empty", 0
    last_valid = 0
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            # Unterminated tail bytes: torn tail if final.
            return (not final), "torn", last_valid
        entry = _parse_frame(raw[offset:newline])
        if entry is None:
            rest = raw[newline + 1 :].split(b"\n")
            trailing = [_parse_frame(chunk) for chunk in rest]
            for parsed in trailing:
                if parsed is not None:
                    last_valid = max(last_valid, parsed.seq)
            mid_log = any(parsed is not None for parsed in trailing)
            corrupt = mid_log or not final
            return corrupt, ("crc" if corrupt else "torn"), last_valid
        last_valid = max(last_valid, entry.seq)
        offset = newline + 1
    return False, "", last_valid


def _check_snapshot(path: Path) -> bool:
    """Whether a snapshot file decodes with a valid checksum and format."""
    document = _decode(path.read_bytes())
    return (
        document is not None
        and document.get("format") == SNAPSHOT_FORMAT
        and isinstance(document.get("applied_seq"), int)
    )


def _move(src: Path, dst: Path, io: Any | None) -> None:
    if io is None:
        src.replace(dst)
    else:
        io.replace(src, dst)


def scrub_directory(
    directory: str | Path,
    *,
    repair: bool = True,
    io: Any | None = None,
    active_segment: str | Path | None = None,
) -> ScrubReport:
    """Verify (and optionally repair) one durable directory.

    Parameters
    ----------
    directory:
        The WAL/snapshot directory of one durable service (or one
        cluster shard).
    repair:
        When true (the default), corrupt-but-covered segments and
        corrupt snapshots are quarantined so a subsequent recovery
        succeeds; when false the scrub only reports.
    io:
        Optional fault-injection filesystem — file moves route through
        it so chaos tests observe (and can fail) the repair itself.
    active_segment:
        The segment currently accepting appends, skipped entirely;
        pass it when scrubbing under a live service.
    """
    directory = Path(directory)
    active = None if active_segment is None else Path(active_segment)
    segments = sorted(
        (
            path
            for path in directory.iterdir()
            if _segment_first_seq(path) is not None and path != active
        ),
        key=lambda p: _segment_first_seq(p) or 0,
    ) if directory.is_dir() else []
    snapshots = sorted(
        (
            path
            for path in directory.iterdir()
            if _snapshot_seq(path) is not None
        ),
        key=lambda p: _snapshot_seq(p) or 0,
    ) if directory.is_dir() else []

    corrupt_snaps = [p for p in snapshots if not _check_snapshot(p)]
    valid_snaps = [p for p in snapshots if p not in corrupt_snaps]
    covered: int | None = None
    if valid_snaps:
        document = _decode(valid_snaps[-1].read_bytes())
        assert document is not None  # _check_snapshot vetted it
        covered = int(document["applied_seq"])

    # The active segment (when given) sits after every checked one, so
    # no checked segment is final; otherwise only the last is.
    infos: list[_SegmentInfo] = []
    for index, segment in enumerate(segments):
        final = active is None and index == len(segments) - 1
        corrupt, reason, last_valid = _check_segment(segment, final=final)
        first = _segment_first_seq(segment) or 0
        if index + 1 < len(segments):
            tail = (_segment_first_seq(segments[index + 1]) or 1) - 1
        else:
            tail = max(last_valid, first)
        infos.append(_SegmentInfo(segment, first, corrupt, reason, tail))

    corrupt_infos = [info for info in infos if info.corrupt]
    report_base = dict(
        directory=str(directory),
        segments_checked=len(segments),
        snapshots_checked=len(snapshots),
        corrupt_segments=tuple(i.path.name for i in corrupt_infos),
        corrupt_snapshots=tuple(p.name for p in corrupt_snaps),
        covered_seq=covered,
    )
    if not corrupt_infos and not corrupt_snaps:
        return ScrubReport(**report_base)

    unrecoverable: list[tuple[int, int]] = []
    for info in corrupt_infos:
        if covered is None:
            unrecoverable.append((info.first, info.tail))
        elif info.tail > covered:
            unrecoverable.append((max(info.first, covered + 1), info.tail))
    if unrecoverable or not repair:
        # Touch nothing: either the data is gone (preserve the
        # evidence) or the caller asked for report-only.
        return ScrubReport(
            **report_base, unrecoverable=tuple(unrecoverable)
        )

    # Every corrupt segment is snapshot-covered: quarantine the prefix
    # up to the newest corrupt segment (tails are monotone, so the
    # retained suffix stays contiguous and overlaps covered_seq + 1)
    # plus every corrupt snapshot.
    to_move: list[tuple[Path, str, int, int]] = []
    if corrupt_infos:
        newest_corrupt = max(
            index for index, info in enumerate(infos) if info.corrupt
        )
        for info in infos[: newest_corrupt + 1]:
            reason = info.reason if info.corrupt else "covered-prefix"
            to_move.append((info.path, reason, info.first, info.tail))
    for path in corrupt_snaps:
        seq = _snapshot_seq(path) or 0
        to_move.append((path, "crc", seq, seq))

    quarantine = directory / QUARANTINE_DIR
    quarantine.mkdir(parents=True, exist_ok=True)
    manifest_path = quarantine / _MANIFEST_NAME
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
    else:
        manifest = {"covered_seq": None, "quarantined": []}
    moved: list[str] = []
    for path, reason, first, tail in to_move:
        _move(path, quarantine / path.name, io)
        moved.append(path.name)
        manifest["quarantined"].append(
            {
                "name": path.name,
                "reason": reason,
                "first_seq": first,
                "tail_seq": tail,
            }
        )
    manifest["covered_seq"] = covered
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return ScrubReport(
        **report_base, quarantined=tuple(moved), repaired=True
    )
