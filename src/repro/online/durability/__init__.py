"""Crash-safe serving: write-ahead log, snapshots, and recovery.

The durability layer makes the online service survivable: every ingest
line is CRC-framed into a segmented :class:`WriteAheadLog` *before* it
is applied, the full serving state is periodically committed by a
:class:`SnapshotStore` (atomically, with an asserted round-trip
bit-identity check), and :func:`recover_durable_service` rebuilds a
killed service — newest valid snapshot, torn-tail truncation,
idempotent replay by sequence number — into exactly the state of an
uninterrupted run.  The chaos harness in
``tests/online/test_recovery_chaos.py`` kills and restarts the service
at every crash-point class and asserts that equivalence with
``np.array_equal``.

The disk itself is allowed to misbehave: fsync failures run a
seal/truncate/rewrite repair cycle instead of trusting a retried
fsync, ``ENOSPC`` degrades serving into typed ``disk-pressure``
records instead of crashing, and :func:`scrub_directory` (the
``repro scrub`` CLI) verifies every CRC frame and snapshot checksum,
quarantining and repairing corrupt-but-covered segments — or naming
the exact unrecoverable sequence ranges.
"""

from repro.online.durability.scrub import (
    QUARANTINE_DIR,
    ScrubReport,
    scrub_directory,
)
from repro.online.durability.service import (
    DurableOnlineService,
    RecoveryReport,
    create_durable_service,
    open_durable_service,
    recover_durable_service,
)
from repro.online.durability.snapshot import SNAPSHOT_FORMAT, SnapshotStore
from repro.online.durability.wal import (
    FSYNC_POLICIES,
    WalEntry,
    WriteAheadLog,
)
from repro.online.durability.writers import (
    FSYNC_POLICY_BASES,
    AsyncWalWriter,
    GroupCommitWalWriter,
    LatencyBudgetWalWriter,
    SyncWalWriter,
    WalWriter,
    make_wal_writer,
    parse_fsync_policy,
)

__all__ = [
    "DurableOnlineService",
    "RecoveryReport",
    "create_durable_service",
    "open_durable_service",
    "recover_durable_service",
    "SnapshotStore",
    "SNAPSHOT_FORMAT",
    "WriteAheadLog",
    "WalEntry",
    "FSYNC_POLICIES",
    "FSYNC_POLICY_BASES",
    "WalWriter",
    "SyncWalWriter",
    "GroupCommitWalWriter",
    "LatencyBudgetWalWriter",
    "AsyncWalWriter",
    "make_wal_writer",
    "parse_fsync_policy",
    "ScrubReport",
    "scrub_directory",
    "QUARANTINE_DIR",
]
