"""Shared plumbing of the unified ``open(dir, mode=...)`` factories.

:meth:`repro.online.durability.service.DurableOnlineService.open` and
:meth:`repro.online.cluster.cluster.ShardedOnlineCluster.open` accept
the same three modes and enforce the same option discipline; this
module is the single place that discipline is defined:

``create``
    Initialize a fresh directory; the creation-time parameters
    (``rate``, ``num_shards``, configuration overrides) are required
    or allowed, and an already-initialized directory is an error.
``recover``
    Rebuild from an existing directory; configuration comes from the
    persisted metadata, so overrides are rejected rather than silently
    ignored, and creation-time parameters act only as cross-checks.
``attach``
    Create-or-recover (the idempotent CLI path): a bare directory is
    created (creation parameters required), an initialized one is
    recovered (creation parameters cross-checked, overrides applied
    only on the creation branch).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ValidationError

__all__ = ["OPEN_MODES", "check_open_mode", "check_recover_overrides"]

#: The modes every unified ``open`` factory accepts.
OPEN_MODES = ("create", "recover", "attach")


def check_open_mode(mode: str) -> str:
    """Validate an ``open`` factory mode; returns it normalized."""
    if mode not in OPEN_MODES:
        raise ValidationError(
            f"mode must be one of {OPEN_MODES}, got {mode!r}"
        )
    return mode


def check_recover_overrides(overrides: dict[str, Any]) -> None:
    """Reject configuration overrides in ``recover`` mode.

    Recovery takes its configuration from the directory's persisted
    metadata; accepting overrides here would silently diverge the
    rebuilt service from the recorded one.
    """
    if overrides:
        raise ValidationError(
            "mode='recover' takes its configuration from the "
            "directory's metadata; unexpected overrides: "
            f"{sorted(overrides)}"
        )
