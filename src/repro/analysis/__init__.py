"""Single owner of the paper's theorem computations.

``repro.analysis`` collects every analytic construction from the paper
— feasible orderings (eqs. 4-5), the feasible partition (eqs. 37-39),
the Chernoff/MGF machinery of Lemmas 5-6, the single-node bound
theorems (7, 8, 10, 11, 12) and the admission procedures built on them
— behind one import path, plus the stateful
:class:`~repro.analysis.context.AnalysisContext` that caches and
incrementally maintains those computations across session
join/leave/renegotiate events.

Layout
------
:mod:`repro.analysis.feasible`
    Feasible orderings and the feasible partition.
:mod:`repro.analysis.mgf`
    Lemma 5/6 virtual-queue tail and log-MGF bounds (continuous and
    discrete-time forms).
:mod:`repro.analysis.single_node`
    The Theorem 7/8/10/11/12 bound families for one GPS node.
:mod:`repro.analysis.admission`
    QoS targets, the Theorem 10/15 admission predicate, the
    float-exact critical-rate threshold and typed decisions.
:mod:`repro.analysis.incremental`
    Exact-sum and sorted-ratio-order containers behind the
    incremental context.
:mod:`repro.analysis.context`
    :class:`AnalysisContext` — cached, incrementally-updated state.
:mod:`repro.analysis.grid`
    Vectorized bound evaluation over numpy grids.

The historical ``repro.core.{feasible,mgf,single_node,admission}``
modules re-export their names from here; new code should import from
``repro.analysis``.
"""

from repro.analysis.admission import (
    AdmissionDecision,
    QoSTarget,
    admissible,
    critical_guaranteed_rate,
    max_admissible_copies,
    meets_target,
    required_rate_for_delay,
)
from repro.analysis.context import AnalysisContext, SessionDeclaration
from repro.analysis.feasible import (
    FeasibleOrderingError,
    FeasiblePartition,
    all_feasible_orderings,
    feasible_partition,
    find_feasible_ordering,
    is_feasible_ordering,
)
from repro.analysis.grid import (
    rpps_delay_bounds,
    tail_probability_matrix,
    theorem15_delay_tail_grid,
)
from repro.analysis.incremental import ExactSum, SortedRatioOrder
from repro.analysis.mgf import (
    VirtualQueue,
    bucket_delta_tail_bound,
    discrete_delta_tail_bound,
    discrete_log_mgf_bound,
    lemma5_max_xi,
    lemma5_tail_bound,
    lemma6_log_mgf_bound,
    lemma6_optimal_xi,
    paper_remark_mgf_minimum,
)
from repro.analysis.single_node import (
    SessionBoundFamily,
    SessionBounds,
    best_partition_family,
    theorem7_family,
    theorem8_family,
    theorem10_bounds,
    theorem11_family,
    theorem12_family,
)

__all__ = [
    # context
    "AnalysisContext",
    "SessionDeclaration",
    # admission
    "AdmissionDecision",
    "QoSTarget",
    "admissible",
    "critical_guaranteed_rate",
    "max_admissible_copies",
    "meets_target",
    "required_rate_for_delay",
    # feasible orderings / partition
    "FeasibleOrderingError",
    "FeasiblePartition",
    "all_feasible_orderings",
    "feasible_partition",
    "find_feasible_ordering",
    "is_feasible_ordering",
    # MGF / Chernoff machinery
    "VirtualQueue",
    "bucket_delta_tail_bound",
    "discrete_delta_tail_bound",
    "discrete_log_mgf_bound",
    "lemma5_max_xi",
    "lemma5_tail_bound",
    "lemma6_log_mgf_bound",
    "lemma6_optimal_xi",
    "paper_remark_mgf_minimum",
    # single-node theorem families
    "SessionBoundFamily",
    "SessionBounds",
    "best_partition_family",
    "theorem7_family",
    "theorem8_family",
    "theorem10_bounds",
    "theorem11_family",
    "theorem12_family",
    # incremental containers
    "ExactSum",
    "SortedRatioOrder",
    # vectorized grids
    "rpps_delay_bounds",
    "tail_probability_matrix",
    "theorem15_delay_tail_grid",
]
