"""Statistical call admission control on top of the GPS bounds.

The paper motivates its statistical bounds with admission control: a
session asks for the QoS guarantee ``Pr{D >= d_max} <= epsilon`` and
the network must decide whether to accept it.  This module turns the
bound theorems into that decision procedure:

* :class:`QoSTarget` — a (d_max, epsilon) delay requirement;
* :func:`required_rate_for_delay` — the smallest guaranteed rate ``g``
  at which an E.B.B. session meets its target (inverts the Theorem 10 /
  Theorem 15 bound in ``g``);
* :func:`critical_guaranteed_rate` — the float-exact admission
  threshold: the smallest representable rate at which
  :func:`meets_target` flips to ``True`` (the quantity the incremental
  :class:`repro.analysis.context.AnalysisContext` gate caches per
  session);
* :func:`admissible` / :func:`max_admissible_copies` — accept/reject
  decisions for RPPS servers, where admission only requires each
  session's bottleneck share to stay above its required rate;
* :class:`AdmissionDecision` — the typed, JSON-serializable outcome
  record produced by the online controller and the context's
  ``decide_*`` methods.

Everything here is *conservative*: a session admitted by these
procedures provably meets its target (up to the tightness of the
underlying bound), matching the paper's soft-guarantee semantics.
This module is the single owner of the admission machinery;
``repro.core.admission`` re-exports the stateless procedures for
backward compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.ebb import EBB
from repro.core.rpps import guaranteed_rate_bounds
from repro.utils.numeric import bisect_root
from repro.utils.validation import check_positive

from repro.errors import AdmissionError, ValidationError

__all__ = [
    "QoSTarget",
    "meets_target",
    "required_rate_for_delay",
    "critical_guaranteed_rate",
    "admissible",
    "max_admissible_copies",
    "AdmissionDecision",
]


@dataclass(frozen=True)
class QoSTarget:
    """The soft delay guarantee ``Pr{D >= d_max} <= epsilon``."""

    d_max: float
    epsilon: float

    def __post_init__(self) -> None:
        check_positive("d_max", self.d_max)
        if not 0.0 < self.epsilon < 1.0:
            raise ValidationError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )


def meets_target(
    arrival: EBB,
    guaranteed_rate: float,
    target: QoSTarget,
    *,
    discrete: bool = True,
) -> bool:
    """True if the Theorem 10/15 delay bound meets the target at the
    given guaranteed rate."""
    if guaranteed_rate <= arrival.rho:
        return False
    bounds = guaranteed_rate_bounds(
        "probe", arrival, guaranteed_rate, discrete=discrete
    )
    return bounds.delay.evaluate(target.d_max) <= target.epsilon


def required_rate_for_delay(
    arrival: EBB,
    target: QoSTarget,
    *,
    discrete: bool = True,
    rate_cap: float = 1e6,
    max_iter: int = 200,
) -> float:
    """Smallest guaranteed rate meeting the target, by bisection.

    The Theorem 10 delay bound is monotone in ``g`` (larger rate means
    both a faster decay ``alpha g`` and a smaller prefactor), so the
    admissible set of rates is an interval ``[g*, inf)``; we return
    ``g*``.  The bisection is capped at ``max_iter`` iterations.

    Raises
    ------
    ValidationError
        If even ``rate_cap`` cannot meet the target (an extremely lax
        cap only fails for epsilon below the bound's intrinsic
        prefactor floor).
    NumericalError
        If the bracket ``[rho, rate_cap]`` does not straddle the
        target (inconsistent bound evaluations on non-bracketing
        inputs) or the bisection fails to converge within
        ``max_iter`` iterations — the search never loops unboundedly.
    """
    check_positive("rate_cap", rate_cap)
    check_positive("max_iter", max_iter)
    if meets_target(arrival, arrival.rho * (1.0 + 1e-12), target):
        return arrival.rho
    if not meets_target(arrival, rate_cap, target, discrete=discrete):
        raise ValidationError(
            "target unreachable: even an arbitrarily fast server "
            f"cannot push the bound below epsilon={target.epsilon} "
            "(the prefactor floor exceeds it)"
        )

    def gap(rate: float) -> float:
        bounds = guaranteed_rate_bounds(
            "probe", arrival, rate, discrete=discrete
        )
        return bounds.delay.log_evaluate(target.d_max) - math.log(
            target.epsilon
        )

    lo = arrival.rho * (1.0 + 1e-9)
    return bisect_root(gap, lo, rate_cap, tol=1e-10, max_iter=int(max_iter))


def critical_guaranteed_rate(
    arrival: EBB,
    target: QoSTarget,
    *,
    server_rate: float,
    discrete: bool = True,
) -> float:
    """The float-exact pass threshold of :func:`meets_target`.

    Returns the smallest representable ``g`` in ``(rho, server_rate]``
    with ``meets_target(arrival, g, target) == True``, or ``math.inf``
    when no rate up to ``server_rate`` passes.  The bisection runs on
    the *predicate itself* down to adjacent floats, so for any granted
    rate ``g <= server_rate``,

        ``g >= critical_guaranteed_rate(...)  <=>  meets_target(...)``

    (using the monotonicity of the Theorem 10/15 bound in ``g``).  An
    RPPS share never exceeds the server rate, which is why the search
    interval can stop there; the incremental admission gate compares
    shares against this cached threshold instead of re-evaluating the
    bound.
    """
    check_positive("server_rate", server_rate)
    if not meets_target(arrival, server_rate, target, discrete=discrete):
        return math.inf
    lo = arrival.rho  # meets_target is False at rho by definition
    hi = server_rate
    while True:
        mid = 0.5 * (lo + hi)
        if not lo < mid < hi:
            return hi
        if meets_target(arrival, mid, target, discrete=discrete):
            hi = mid
        else:
            lo = mid


def admissible(
    arrivals: Sequence[EBB],
    targets: Sequence[QoSTarget],
    server_rate: float,
    *,
    discrete: bool = True,
) -> bool:
    """Accept/reject a session set on an RPPS server.

    Under RPPS each session's guaranteed rate is
    ``g_i = rho_i / sum_j rho_j * r``; the set is admissible when the
    server is stable and every session's ``g_i`` is at least its
    required rate.
    """
    if len(arrivals) != len(targets):
        raise ValidationError("one target per session required")
    check_positive("server_rate", server_rate)
    total_rho = sum(a.rho for a in arrivals)
    if total_rho >= server_rate:
        return False
    for arrival, target in zip(arrivals, targets):
        g = arrival.rho / total_rho * server_rate
        if not meets_target(arrival, g, target, discrete=discrete):
            return False
    return True


def max_admissible_copies(
    arrival: EBB,
    target: QoSTarget,
    server_rate: float,
    *,
    discrete: bool = True,
) -> int:
    """Largest ``n`` such that ``n`` identical sessions are admissible.

    With identical RPPS sessions every copy gets ``g = r / n``, so the
    count is monotone and a linear scan from the stability ceiling down
    is exact (the ceiling ``r / rho`` is small in practice).
    """
    check_positive("server_rate", server_rate)
    ceiling = int(math.floor(server_rate / arrival.rho))
    for n in range(ceiling, 0, -1):
        if n * arrival.rho >= server_rate:
            continue
        g = server_rate / n
        if meets_target(arrival, g, target, discrete=discrete):
            return n
    return 0


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one admission request.

    Attributes
    ----------
    accepted:
        Whether the request was admitted (and committed).
    session:
        The requesting session's name.
    action:
        ``"join"`` or ``"renegotiate"``.
    reason:
        One human-readable sentence.
    violated:
        ``None`` when accepted; otherwise which check failed:
        ``"missing_declaration"``, ``"stability"`` or ``"delay_bound"``.
    details:
        JSON-serializable diagnostics: offered load, the feasible
        ordering/partition of the candidate set, the violating
        session's granted rate and bound value, and the joining
        session's Theorem 11 tail-bound evaluation when available.
    """

    accepted: bool
    session: str
    action: str
    reason: str
    violated: str | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable record of the decision."""
        return {
            "accepted": self.accepted,
            "session": self.session,
            "action": self.action,
            "reason": self.reason,
            "violated": self.violated,
            "details": dict(self.details),
        }

    def raise_if_rejected(self) -> "AdmissionDecision":
        """Return self when accepted; raise :class:`AdmissionError` when not."""
        if not self.accepted:
            raise AdmissionError(
                f"admission rejected for session {self.session!r}: "
                f"{self.reason}",
                decision=self,
            )
        return self
