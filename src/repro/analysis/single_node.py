"""Single-node statistical bounds: Theorems 7, 8, 10, 11 and 12.

Every theorem produces, for one session ``i``, a family of exponential
tail bounds indexed by the Chernoff parameter ``theta``:

* backlog   ``Pr{Q_i(t) >= q} <= Lambda_i(theta) e^{-theta q}``,
* delay     ``Pr{D_i(t) >= d} <= Lambda_i(theta) e^{-theta g_i d}``,
* output    ``S_i`` is ``(rho_i, Lambda_i(theta), theta)``-E.B.B.

The families differ in how ``Lambda_i(theta)`` is assembled from the
virtual-queue MGF bounds (Lemma 6) and in the admissible ``theta``
range:

========== ============================ ==========================
theorem     inputs                       ordering used
========== ============================ ==========================
Theorem 7   independent                  explicit feasible ordering
Theorem 8   arbitrary (Hölder)           explicit feasible ordering
Theorem 10  arbitrary, session in H_1    none (rate ``g_i`` directly)
Theorem 11  independent                  feasible partition
Theorem 12  arbitrary (Hölder)           feasible partition
========== ============================ ==========================

Theorems 11/12 use the partition-aware epsilon split
``eps_i = psi_i eps~_l = (g_i - rho_i) / k`` from the proof of
Theorem 11, which makes every geometric factor in the denominator equal
to ``1 - e^{-theta (g_i - rho_i)/k}``.

This module is the single owner of these theorems;
``repro.core.single_node`` re-exports it for backward compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.feasible import FeasiblePartition
from repro.analysis.mgf import (
    discrete_delta_tail_bound,
    discrete_log_mgf_bound,
    lemma5_tail_bound,
    lemma6_log_mgf_bound,
)
from repro.core.bounds import ExponentialTailBound
from repro.core.decomposition import Decomposition
from repro.core.ebb import EBB
from repro.core.gps import GPSConfig
from repro.core.holder import HolderSplit, HolderTerm, optimal_holder_split
from repro.utils.numeric import expm1_neg, minimize_scalar_bounded
from repro.utils.validation import check_in_open_interval, check_positive

from repro.errors import ValidationError

__all__ = [
    "SessionBoundFamily",
    "SessionBounds",
    "theorem7_family",
    "theorem8_family",
    "theorem10_bounds",
    "theorem11_family",
    "theorem12_family",
    "best_partition_family",
]

#: Fraction of ``theta_max`` used as the upper search limit when
#: optimizing theta (the prefactor diverges at ``theta_max`` itself).
_THETA_SEARCH_CAP = 1.0 - 1e-9


@dataclass(frozen=True)
class SessionBounds:
    """Concrete bounds for one session at one chosen ``theta``."""

    session_name: str
    backlog: ExponentialTailBound
    delay: ExponentialTailBound
    output: EBB


@dataclass(frozen=True)
class SessionBoundFamily:
    """A ``theta``-indexed family of bounds for one session.

    ``log_prefactor(theta)`` is valid for ``0 < theta < theta_max``; the
    prefactor typically diverges as ``theta`` approaches ``theta_max``,
    so the best bound at a given backlog ``q`` (or delay ``d``) is found
    by a one-dimensional optimization, exposed as
    :meth:`optimized_backlog` / :meth:`optimized_delay`.
    """

    session_name: str
    theta_max: float
    guaranteed_rate: float
    rho: float
    log_prefactor: Callable[[float], float]

    def __post_init__(self) -> None:
        check_positive("theta_max", self.theta_max)
        check_positive("guaranteed_rate", self.guaranteed_rate)

    # ------------------------------------------------------------------
    # fixed-theta bounds
    # ------------------------------------------------------------------
    def _check_theta(self, theta: float) -> None:
        check_in_open_interval("theta", theta, 0.0, self.theta_max)

    def backlog_bound(self, theta: float) -> ExponentialTailBound:
        """``Pr{Q >= q} <= Lambda(theta) e^{-theta q}``."""
        self._check_theta(theta)
        return ExponentialTailBound(
            math.exp(self.log_prefactor(theta)), theta
        )

    def delay_bound(self, theta: float) -> ExponentialTailBound:
        """``Pr{D >= d} <= Lambda(theta) e^{-theta g d}``."""
        return self.backlog_bound(theta).scaled_argument(
            self.guaranteed_rate
        )

    def output_ebb(self, theta: float) -> EBB:
        """The output process is ``(rho, Lambda(theta), theta)``-E.B.B."""
        self._check_theta(theta)
        return EBB(
            self.rho, math.exp(self.log_prefactor(theta)), theta
        )

    def bounds_at(self, theta: float) -> SessionBounds:
        """All three bounds at one ``theta``."""
        return SessionBounds(
            session_name=self.session_name,
            backlog=self.backlog_bound(theta),
            delay=self.delay_bound(theta),
            output=self.output_ebb(theta),
        )

    # ------------------------------------------------------------------
    # optimized-theta bounds
    # ------------------------------------------------------------------
    def _optimize(self, objective: Callable[[float], float]) -> float:
        """Return the ``theta`` minimizing ``objective`` on the range."""
        hi = self.theta_max * _THETA_SEARCH_CAP
        lo = self.theta_max * 1e-9
        # Coarse grid to bracket the minimum, then golden refinement;
        # the objective is smooth and in practice unimodal, but a grid
        # guards against a misleading golden start.
        grid_size = 64
        best_k = 0
        best_val = math.inf
        for k in range(grid_size + 1):
            theta = lo + (hi - lo) * k / grid_size
            val = objective(theta)
            if val < best_val:
                best_val, best_k = val, k
        lo_idx = max(0, best_k - 1)
        hi_idx = min(grid_size, best_k + 1)
        bracket_lo = lo + (hi - lo) * lo_idx / grid_size
        bracket_hi = lo + (hi - lo) * hi_idx / grid_size
        theta_star, _ = minimize_scalar_bounded(
            objective, bracket_lo, bracket_hi
        )
        return theta_star

    def optimized_backlog(self, q: float) -> ExponentialTailBound:
        """The member of the family that is tightest at backlog ``q``."""
        check_positive("q", q)
        theta = self._optimize(
            lambda t: self.log_prefactor(t) - t * q
        )
        return self.backlog_bound(theta)

    def optimized_delay(self, d: float) -> ExponentialTailBound:
        """The member of the family that is tightest at delay ``d``."""
        check_positive("d", d)
        theta = self._optimize(
            lambda t: self.log_prefactor(t) - t * self.guaranteed_rate * d
        )
        return self.delay_bound(theta)

    def backlog_curve(self, qs: Sequence[float]) -> list[float]:
        """Pointwise-optimized bound values ``Pr{Q >= q}`` over ``qs``."""
        return [self.optimized_backlog(q).evaluate(q) for q in qs]

    def delay_curve(self, ds: Sequence[float]) -> list[float]:
        """Pointwise-optimized bound values ``Pr{D >= d}`` over ``ds``."""
        return [self.optimized_delay(d).evaluate(d) for d in ds]


def _queue_log_mgf(
    arrival: EBB,
    rate: float,
    theta: float,
    xi: float,
    discrete: bool,
) -> float:
    """Lemma 6 log-MGF bound, continuous (with step ``xi``) or the
    tighter discrete-time variant of Remark (2)."""
    if discrete:
        return discrete_log_mgf_bound(arrival, rate, theta)
    return lemma6_log_mgf_bound(arrival, rate, theta, xi=xi)


# ----------------------------------------------------------------------
# Theorem 7 — independent inputs, explicit feasible ordering
# ----------------------------------------------------------------------
def theorem7_family(
    decomposition: Decomposition,
    session_index: int,
    *,
    xi: float = 1.0,
    discrete: bool = False,
) -> SessionBoundFamily:
    """Theorem 7: per-session bounds under independent E.B.B. inputs.

    ``log Lambda_i(theta)`` is the sum of Lemma 6 MGF bounds: the
    session's own virtual queue evaluated at ``theta`` plus each
    predecessor's virtual queue evaluated at ``psi_i theta`` — exactly
    the prefactor of eq. (26) when ``xi = 1``.  ``discrete=True``
    swaps in the tighter discrete-time MGF bound of Remark (2)
    (``xi`` is then ignored).
    """
    config = decomposition.config
    session = config.sessions[session_index]
    predecessors = decomposition.predecessors(session_index)
    psi = decomposition.psi(session_index)
    theta_max = min(
        [session.alpha]
        + [config.sessions[j].alpha for j in predecessors]
    )
    own_rate = decomposition.rates[session_index]

    def log_prefactor(theta: float) -> float:
        total = _queue_log_mgf(
            session.arrival, own_rate, theta, xi, discrete
        )
        for j in predecessors:
            total += _queue_log_mgf(
                config.sessions[j].arrival,
                decomposition.rates[j],
                psi * theta,
                xi,
                discrete,
            )
        return total

    return SessionBoundFamily(
        session_name=session.name,
        theta_max=theta_max,
        guaranteed_rate=config.guaranteed_rate(session_index),
        rho=session.rho,
        log_prefactor=log_prefactor,
    )


# ----------------------------------------------------------------------
# Theorem 8 — dependent inputs via Hölder, explicit feasible ordering
# ----------------------------------------------------------------------
def theorem8_family(
    decomposition: Decomposition,
    session_index: int,
    *,
    xi: float = 1.0,
    split: HolderSplit | None = None,
    paper_form: bool = False,
    discrete: bool = False,
) -> SessionBoundFamily:
    """Theorem 8: per-session bounds without independence assumptions.

    Hölder's inequality splits the joint MGF into marginal MGFs with
    inflated arguments ``p_j``.  By default the exponents equalize the
    per-term ceilings (maximizing the usable ``theta`` range to
    ``(sum_{j <= i} 1/alpha_j)^{-1}``), and the exact Hölder powers
    ``(...)^{1/p_j}`` are kept.  ``paper_form=True`` reproduces
    eq. (36) literally, which drops the ``1/p_j`` exponent on the
    geometric denominators and is therefore slightly looser.
    """
    config = decomposition.config
    session = config.sessions[session_index]
    predecessors = decomposition.predecessors(session_index)
    psi = decomposition.psi(session_index)
    own_rate = decomposition.rates[session_index]

    if paper_form and discrete:
        raise ValidationError(
            "paper_form reproduces the literal continuous-time "
            "eq. (36); combine it with discrete=False"
        )
    if not predecessors:
        # First in the ordering: no Hölder split is needed; the bound
        # reduces to the single-queue Chernoff bound.
        return theorem7_family(
            decomposition, session_index, xi=xi, discrete=discrete
        )

    terms = [HolderTerm(coefficient=1.0, ceiling=session.alpha)] + [
        HolderTerm(coefficient=psi, ceiling=config.sessions[j].alpha)
        for j in predecessors
    ]
    if split is None:
        split = optimal_holder_split(terms)
    exponents = split.exponents
    if len(exponents) != len(terms):
        raise ValidationError(
            f"split has {len(exponents)} exponents for {len(terms)} terms"
        )

    def log_prefactor(theta: float) -> float:
        contributions = []
        queue_specs = [(session.arrival, own_rate, 1.0)] + [
            (
                config.sessions[j].arrival,
                decomposition.rates[j],
                psi,
            )
            for j in predecessors
        ]
        for (arrival, rate, coeff), p in zip(queue_specs, exponents):
            inner = _queue_log_mgf(
                arrival, rate, p * coeff * theta, xi, discrete
            )
            if paper_form:
                # eq. (36): keep theta * (sigma_hat + rho xi) but divide
                # by the *unexponentiated* geometric factor.
                eps = rate - arrival.rho
                contributions.append(
                    theta
                    * coeff
                    * (arrival.sigma_hat(p * coeff * theta) + arrival.rho * xi)
                    - math.log(expm1_neg(p * coeff * theta * eps * xi))
                )
            else:
                contributions.append(inner / p)
        return sum(contributions)

    # The usable range: every MGF argument p * c * theta < alpha.
    theta_max = min(
        term.ceiling / (p * term.coefficient)
        for term, p in zip(terms, exponents)
    )
    return SessionBoundFamily(
        session_name=session.name,
        theta_max=theta_max,
        guaranteed_rate=config.guaranteed_rate(session_index),
        rho=session.rho,
        log_prefactor=log_prefactor,
    )


# ----------------------------------------------------------------------
# Theorem 10 — sessions in H_1 (no independence needed)
# ----------------------------------------------------------------------
def theorem10_bounds(
    config: GPSConfig,
    session_index: int,
    *,
    xi: float | None = None,
    discrete: bool = False,
    partition: FeasiblePartition | None = None,
) -> SessionBounds:
    """Theorem 10: direct bounds for a session in partition class H_1.

    For ``i`` in ``H_1`` the sample path argument gives ``Q_i(t) <=
    delta_i(t)`` with the virtual queue drained at the *guaranteed* rate
    ``g_i``, so Lemma 5 applies verbatim with ``eps = g_i - rho_i`` and
    decay rate equal to the session's own ``alpha_i`` — no other session
    enters the bound and no independence is required.

    ``discrete=True`` uses the discrete-time form of the tail bound
    (eq. 66), as in the Section 6.3 example.
    """
    if partition is None:
        partition = config.partition()
    if partition.level(session_index) != 0:
        raise ValidationError(
            f"session {session_index} is in class "
            f"H_{partition.level(session_index) + 1}, but Theorem 10 "
            "applies only to sessions in H_1"
        )
    session = config.sessions[session_index]
    g = config.guaranteed_rate(session_index)
    if discrete:
        backlog = discrete_delta_tail_bound(session.arrival, g)
    else:
        backlog = lemma5_tail_bound(session.arrival, g, xi=xi)
    delay = backlog.scaled_argument(g)
    output = EBB(session.rho, backlog.prefactor, backlog.decay_rate)
    return SessionBounds(
        session_name=session.name,
        backlog=backlog,
        delay=delay,
        output=output,
    )


# ----------------------------------------------------------------------
# Theorems 11 / 12 — feasible-partition bounds
# ----------------------------------------------------------------------
def _partition_epsilon_structure(
    config: GPSConfig,
    partition: FeasiblePartition,
    session_index: int,
) -> tuple[int, float, float, float]:
    """Common geometry for Theorems 11/12.

    Returns ``(level, psi, own_eps, class_eps)`` where ``level`` is the
    0-based partition level of the session, ``own_eps`` is the
    session's virtual-queue slack and ``class_eps`` is the slack
    ``eps~_l`` of each aggregate class below it (chosen so that
    ``psi * class_eps = own_eps``).

    The ``g_i`` of Theorems 11/12 is the *class-relative* guaranteed
    rate ``g_i = psi_i (r - sum_{j in lower classes} rho_j)`` — the
    share of the residual server the session is guaranteed once the
    lower classes' long-term rates are subtracted.  (The algebra in the
    proof of eq. (55), ``sum r~_l + r_i = 1 - (1/psi - 1) rho_i``,
    pins this down; for a session in ``H_1`` it coincides with the
    ordinary GPS guaranteed rate.)  The defining inequality (39) of the
    feasible partition makes the margin ``g_i - rho_i`` strictly
    positive for every session, which is exactly why the partition
    yields bounds for *all* sessions.
    """
    level = partition.level(session_index)
    psi = partition.psi(session_index)
    session = config.sessions[session_index]
    lower_rho = sum(
        config.sessions[j].rho for j in partition.prefix_sessions(level)
    )
    class_guaranteed_rate = psi * (config.rate - lower_rho)
    margin = class_guaranteed_rate - session.rho
    if margin <= 0.0:
        raise AssertionError(
            f"session {session_index} has rho={session.rho} >= class-"
            f"relative rate {class_guaranteed_rate}; this cannot happen "
            "for a correctly built feasible partition"
        )
    own_eps = margin / (level + 1)
    class_eps = own_eps / psi
    return level, psi, own_eps, class_eps


def _aggregate_log_mgf(
    config: GPSConfig,
    members: Sequence[int],
    virtual_rate: float,
    theta: float,
    xi: float,
    discrete: bool = False,
) -> float:
    """Lemma 6 log-MGF bound for an *aggregate* session.

    The aggregate of independent sessions ``members`` has MGF envelope
    ``exp(theta (rho~ d + sigma~(theta)))`` with ``rho~ = sum rho_j``
    and ``sigma~(theta) = sum sigma_hat_j(theta)``, so the Lemma 6 chain
    goes through with those substitutions.
    """
    check_positive("theta", theta)
    rho_total = sum(config.sessions[j].rho for j in members)
    eps = virtual_rate - rho_total
    check_positive("aggregate eps", eps)
    sigma_total = sum(
        config.sessions[j].arrival.sigma_hat(theta) for j in members
    )
    if discrete:
        return theta * sigma_total - math.log(expm1_neg(theta * eps))
    return theta * (sigma_total + rho_total * xi) - math.log(
        expm1_neg(theta * eps * xi)
    )


def theorem11_family(
    config: GPSConfig,
    session_index: int,
    *,
    xi: float = 1.0,
    partition: FeasiblePartition | None = None,
    discrete: bool = False,
) -> SessionBoundFamily:
    """Theorem 11: partition-based bounds under independent inputs.

    The session in class ``H_k`` is placed ``k``-th in a feasible
    ordering whose first ``k - 1`` entries are the *aggregated* earlier
    classes; the slack ``g_i - rho_i`` is split equally over the ``k``
    geometric factors.  For a session in ``H_1`` the family degenerates
    to the single-queue Chernoff bound at rate ``g_i`` (the MGF version
    of Theorem 10).
    """
    if partition is None:
        partition = config.partition()
    session = config.sessions[session_index]
    level, psi, own_eps, class_eps = _partition_epsilon_structure(
        config, partition, session_index
    )
    own_rate = session.rho + own_eps
    prefix_alphas = [
        config.sessions[j].alpha for j in partition.prefix_sessions(level)
    ]
    theta_max = min([session.alpha] + prefix_alphas)

    def log_prefactor(theta: float) -> float:
        total = _queue_log_mgf(
            session.arrival, own_rate, theta, xi, discrete
        )
        for l in range(level):
            members = partition.classes[l]
            rho_total = sum(config.sessions[j].rho for j in members)
            total += _aggregate_log_mgf(
                config,
                members,
                rho_total + class_eps,
                psi * theta,
                xi,
                discrete,
            )
        return total

    return SessionBoundFamily(
        session_name=session.name,
        theta_max=theta_max,
        guaranteed_rate=config.guaranteed_rate(session_index),
        rho=session.rho,
        log_prefactor=log_prefactor,
    )


def theorem12_family(
    config: GPSConfig,
    session_index: int,
    *,
    xi: float = 1.0,
    partition: FeasiblePartition | None = None,
    paper_form: bool = False,
    discrete: bool = False,
) -> SessionBoundFamily:
    """Theorem 12: partition-based bounds without independence (Hölder).

    Blocks of the Hölder split are the session itself plus one block per
    earlier partition class.  Exponents are chosen to equalize the
    per-block MGF ceilings, matching the paper's optimal choice.  As in
    :func:`theorem8_family`, the exact Hölder form is the default and
    ``paper_form=True`` reproduces the literal eq. (59).
    """
    if partition is None:
        partition = config.partition()
    session = config.sessions[session_index]
    level, psi, own_eps, class_eps = _partition_epsilon_structure(
        config, partition, session_index
    )
    own_rate = session.rho + own_eps

    if paper_form and discrete:
        raise ValidationError(
            "paper_form reproduces the literal continuous-time "
            "eq. (59); combine it with discrete=False"
        )
    if level == 0:
        return theorem11_family(
            config,
            session_index,
            xi=xi,
            partition=partition,
            discrete=discrete,
        )

    class_ceilings = [
        min(config.sessions[j].alpha for j in partition.classes[l])
        for l in range(level)
    ]
    terms = [HolderTerm(coefficient=1.0, ceiling=session.alpha)] + [
        HolderTerm(coefficient=psi, ceiling=ceiling)
        for ceiling in class_ceilings
    ]
    split = optimal_holder_split(terms)
    exponents = split.exponents

    def log_prefactor(theta: float) -> float:
        p_self = exponents[0]
        inner_self = _queue_log_mgf(
            session.arrival, own_rate, p_self * theta, xi, discrete
        )
        if paper_form:
            eps = own_rate - session.rho
            total = theta * (
                session.arrival.sigma_hat(p_self * theta)
                + session.rho * xi
            ) - math.log(expm1_neg(p_self * theta * eps * xi))
        else:
            total = inner_self / p_self
        for l in range(level):
            p_l = exponents[l + 1]
            members = partition.classes[l]
            rho_total = sum(config.sessions[j].rho for j in members)
            inner = _aggregate_log_mgf(
                config,
                members,
                rho_total + class_eps,
                p_l * psi * theta,
                xi,
                discrete,
            )
            if paper_form:
                sigma_total = sum(
                    config.sessions[j].arrival.sigma_hat(p_l * psi * theta)
                    for j in members
                )
                total += theta * psi * (
                    sigma_total + rho_total * xi
                ) - math.log(
                    expm1_neg(p_l * psi * theta * class_eps * xi)
                )
            else:
                total += inner / p_l
        return total

    return SessionBoundFamily(
        session_name=session.name,
        theta_max=split.theta_max,
        guaranteed_rate=config.guaranteed_rate(session_index),
        rho=session.rho,
        log_prefactor=log_prefactor,
    )


def best_partition_family(
    config: GPSConfig,
    session_index: int,
    *,
    independent: bool = True,
    xi: float = 1.0,
    discrete: bool = False,
) -> SessionBoundFamily:
    """The recommended bound family for a session.

    Uses the feasible-partition theorems: Theorem 11 when the inputs are
    independent, Theorem 12 otherwise.
    """
    if independent:
        return theorem11_family(
            config, session_index, xi=xi, discrete=discrete
        )
    return theorem12_family(
        config, session_index, xi=xi, discrete=discrete
    )
