"""Chernoff/MGF machinery for the virtual backlogs ``delta_i(t)``.

The decomposition of Section 3 reduces the GPS system to ``N`` virtual
G/G/1 queues, the ``i``-th fed by arrival process ``A_i`` and drained at
the constant virtual rate ``r_i = rho_i + eps_i``:

    delta_i(t) = sup_{s <= t} { A_i(s, t) - r_i (t - s) }.

Everything downstream needs two handles on ``delta_i(t)``:

* a direct tail bound (Lemma 5 / [YaSi93] Theorem 1), and
* a moment-generating-function bound (Lemma 6), which is what the
  Chernoff argument of Theorems 7-12 combines across sessions.

Both come from discretizing the supremum with step ``xi`` and summing a
geometric series.  The module implements the paper's default ``xi = 1``,
the optimal ``xi`` of Remark (1) after Lemma 6, and the discrete-time
variants used in the Section 6.3 numerical example (eqs. 66-67).

This module is the single owner of these bounds;
``repro.core.mgf`` re-exports it for backward compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bounds import ExponentialTailBound
from repro.core.ebb import EBB
from repro.utils.numeric import expm1_neg
from repro.utils.validation import check_in_open_interval, check_positive

from repro.errors import ValidationError

__all__ = [
    "VirtualQueue",
    "lemma5_tail_bound",
    "lemma6_log_mgf_bound",
    "lemma6_optimal_xi",
    "lemma5_max_xi",
    "bucket_delta_tail_bound",
    "discrete_delta_tail_bound",
    "discrete_log_mgf_bound",
    "paper_remark_mgf_minimum",
]


@dataclass(frozen=True)
class VirtualQueue:
    """One virtual queue of the decomposition: an E.B.B. source drained
    at constant rate ``rate > rho``.

    Attributes
    ----------
    arrival:
        The session's E.B.B. characterization.
    rate:
        The virtual service rate ``r_i`` assigned by the decomposition.
    """

    arrival: EBB
    rate: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        if self.rate <= self.arrival.rho:
            raise ValidationError(
                "virtual rate must exceed the arrival upper rate "
                f"(rate={self.rate}, rho={self.arrival.rho})"
            )

    @property
    def slack(self) -> float:
        """The stability margin ``eps = rate - rho > 0``."""
        return self.rate - self.arrival.rho

    def tail_bound(self, xi: float | None = None) -> ExponentialTailBound:
        """Lemma 5 tail bound on ``delta(t)``; see :func:`lemma5_tail_bound`."""
        return lemma5_tail_bound(self.arrival, self.rate, xi=xi)

    def log_mgf_bound(self, theta: float, xi: float = 1.0) -> float:
        """Lemma 6 bound on ``ln E[exp(theta delta(t))]``."""
        return lemma6_log_mgf_bound(self.arrival, self.rate, theta, xi=xi)


def lemma5_max_xi(arrival: EBB, rate: float) -> float:
    """Largest ``xi`` allowed by Lemma 5: ``ln(Lambda + 1) / (alpha eps)``."""
    eps = rate - arrival.rho
    check_positive("eps", eps)
    return math.log1p(arrival.prefactor) / (arrival.decay_rate * eps)


def lemma5_tail_bound(
    arrival: EBB, rate: float, *, xi: float | None = None
) -> ExponentialTailBound:
    """Lemma 5: ``Pr{delta(t) >= x} <= prefactor * exp(-alpha x)`` with

        prefactor = Lambda e^{alpha rho xi} / (1 - e^{-alpha eps xi}),

    valid for ``0 < xi <= ln(Lambda + 1) / (alpha eps)``.

    When ``xi`` is omitted the prefactor-minimizing admissible value is
    used: Remark (1) shows the unconstrained optimum is
    ``ln(r/rho) / (alpha eps)``, so we take the smaller of that and the
    Lemma 5 cap.

    A zero prefactor (a source that never exceeds ``rho`` per interval)
    short-circuits to the trivial zero bound.
    """
    eps = rate - arrival.rho
    check_positive("rate - rho", eps)
    alpha = arrival.decay_rate
    if arrival.prefactor == 0.0:
        return ExponentialTailBound(0.0, alpha)
    if xi is None:
        unconstrained = math.log(rate / arrival.rho) / (alpha * eps)
        xi = min(lemma5_max_xi(arrival, rate), unconstrained)
    check_positive("xi", xi)
    cap = lemma5_max_xi(arrival, rate)
    if xi > cap * (1.0 + 1e-12):
        raise ValidationError(
            f"xi={xi} exceeds the Lemma 5 cap ln(Lambda+1)/(alpha eps)={cap}"
        )
    prefactor = (
        arrival.prefactor
        * math.exp(alpha * arrival.rho * xi)
        / expm1_neg(alpha * eps * xi)
    )
    return ExponentialTailBound(prefactor, alpha)


def lemma6_optimal_xi(arrival: EBB, rate: float, theta: float) -> float:
    """The ``xi`` minimizing the Lemma 6 prefactor:
    ``xi_0 = ln(r / rho) / (eps theta)`` (Remark (1) after Lemma 6)."""
    eps = rate - arrival.rho
    check_positive("rate - rho", eps)
    check_positive("theta", theta)
    return math.log(rate / arrival.rho) / (eps * theta)


def lemma6_log_mgf_bound(
    arrival: EBB, rate: float, theta: float, *, xi: float = 1.0
) -> float:
    """Lemma 6: ``ln E[exp(theta delta(t))]`` is at most

        theta (sigma_hat(theta) + rho xi) - ln(1 - e^{-theta eps xi})

    for any discretization step ``xi > 0`` and ``0 < theta < alpha``.
    The paper uses ``xi = 1``; pass :func:`lemma6_optimal_xi` for the
    tightest version.
    """
    eps = rate - arrival.rho
    check_positive("rate - rho", eps)
    check_in_open_interval("theta", theta, 0.0, arrival.decay_rate)
    check_positive("xi", xi)
    return (
        theta * (arrival.sigma_hat(theta) + arrival.rho * xi)
        - math.log(expm1_neg(theta * eps * xi))
    )


def discrete_log_mgf_bound(
    arrival: EBB, rate: float, theta: float
) -> float:
    """Discrete-time analogue of Lemma 6 (Remark (2)).

    With integer slots the supremum runs over integer interval lengths,
    so the ``rho * xi`` slack term disappears:

        E[exp(theta delta(t))]
            <= sum_{k >= 0} E[exp(theta (A(t-k, t) - r k))]
            <= 1 + e^{theta sigma_hat} e^{-theta eps}/(1 - e^{-theta eps})
            <= e^{theta sigma_hat(theta)} / (1 - e^{-theta eps}),

    i.e. the continuous bound at ``xi = 1`` *minus* the
    ``theta * rho`` term — uniformly tighter in the slotted setting of
    the Section 6.3 example.
    """
    eps = rate - arrival.rho
    check_positive("rate - rho", eps)
    check_in_open_interval("theta", theta, 0.0, arrival.decay_rate)
    return theta * arrival.sigma_hat(theta) - math.log(
        expm1_neg(theta * eps)
    )


def paper_remark_mgf_minimum(arrival: EBB, rate: float, theta: float) -> float:
    """Exact minimum over ``xi`` of the Lemma 6 MGF bound (natural log).

    Remark (1) states the minimum of ``f(xi) = e^{theta rho xi} /
    (1 - e^{-theta eps xi})`` as ``r^2/(eps rho) e^{rho/eps}``; the exact
    value is ``(r/rho)^{rho/eps} * r / eps`` (the paper's expression is a
    slightly loose transcription).  This helper returns the exact
    ``ln E[exp(theta delta)]`` minimum,

        theta sigma_hat(theta) + (rho/eps) ln(r/rho) + ln(r/eps).
    """
    eps = rate - arrival.rho
    check_positive("rate - rho", eps)
    check_in_open_interval("theta", theta, 0.0, arrival.decay_rate)
    return (
        theta * arrival.sigma_hat(theta)
        + (arrival.rho / eps) * math.log(rate / arrival.rho)
        + math.log(rate / eps)
    )


def bucket_delta_tail_bound(
    arrival: EBB,
    rate: float,
    bucket_size: float,
    *,
    xi: float | None = None,
) -> ExponentialTailBound:
    """Tail bound on the *bucketed* virtual backlog (footnote 3).

    The paper's footnote 3 generalizes the marker to a bucket of depth
    ``sigma``:

        delta^sigma(t) = sup_{s <= t} {A(s,t) - r (t-s) - sigma}
                       = max(delta(t) - sigma, 0)... bounded by
        Pr{delta^sigma >= x} = Pr{delta >= x + sigma},

    so the Lemma 5 bound shifts: same decay, prefactor multiplied by
    ``e^{-alpha sigma}``.  This quantifies how much marking a non-zero
    token bucket saves.
    """
    if bucket_size < 0.0:
        raise ValidationError(
            f"bucket_size must be >= 0, got {bucket_size}"
        )
    base = lemma5_tail_bound(arrival, rate, xi=xi)
    return ExponentialTailBound(
        base.prefactor * math.exp(-base.decay_rate * bucket_size),
        base.decay_rate,
    )


def discrete_delta_tail_bound(
    arrival: EBB, rate: float, *, tight: bool = False
) -> ExponentialTailBound:
    """Discrete-time tail bound on ``delta(t)`` (eq. 66 of Section 6.3).

    With integer time slots the supremum runs over integer interval
    lengths only, so no ``rho xi`` slack term is needed:

        Pr{delta(t) >= x} <= Lambda / (1 - e^{-alpha eps}) * e^{-alpha x}.

    With ``tight=True`` the slightly sharper geometric sum starting at
    ``k = 1`` is used, ``Lambda / (e^{alpha eps} - 1)``; the paper's
    numerical example uses the looser form, which we keep as default for
    fidelity.
    """
    eps = rate - arrival.rho
    check_positive("rate - rho", eps)
    alpha = arrival.decay_rate
    if arrival.prefactor == 0.0:
        return ExponentialTailBound(0.0, alpha)
    if tight:
        prefactor = arrival.prefactor / math.expm1(alpha * eps)
    else:
        prefactor = arrival.prefactor / expm1_neg(alpha * eps)
    return ExponentialTailBound(prefactor, alpha)
