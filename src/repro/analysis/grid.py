"""Vectorized bound-family evaluation over numpy parameter grids.

The experiments layer sweeps the paper's bounds over dense grids —
delay axes for the Section 6.3 figures, ``rho`` axes for the
characterization trade-off curve.  Evaluating those sweeps through the
scalar :meth:`repro.core.bounds.ExponentialTailBound.evaluate` call per
grid point costs a Python-level function call each; this module
evaluates whole rows at once.

Bit-compatibility contract: the *bound objects* (prefactor, decay
rate) are built with the same scalar
:func:`repro.utils.numeric.expm1_neg` / ``math.exp`` calls the scalar
constructors use, so they are bit-identical to the scalar pipeline;
row evaluation then reuses the library's own
:meth:`ExponentialTailBound.evaluate_array`, making every element
bit-identical to that established vectorized path (which may differ
from the scalar ``evaluate`` by one ulp of ``exp``, exactly as it
always has).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.mgf import discrete_delta_tail_bound, lemma5_tail_bound
from repro.core.bounds import TailBound
from repro.core.ebb import EBB
from repro.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "tail_probability_matrix",
    "theorem15_delay_tail_grid",
    "rpps_delay_bounds",
]


def tail_probability_matrix(
    bounds: Sequence[TailBound], xs: Sequence[float]
) -> np.ndarray:
    """Evaluate many tail bounds over one argument grid.

    Returns the matrix ``M[i, j] = bounds[i].evaluate(xs[j])`` with
    shape ``(len(bounds), len(xs))``; each row is produced by the
    bound's own ``evaluate_array``, so entries are bit-identical to
    that vectorized path.
    """
    xs_arr = np.asarray(xs, dtype=float)
    if not bounds:
        return np.empty((0, xs_arr.size), dtype=float)
    return np.vstack([bound.evaluate_array(xs_arr) for bound in bounds])


def rpps_delay_bounds(
    arrivals: Sequence[EBB],
    guaranteed_rates: Sequence[float],
    *,
    discrete: bool = True,
) -> list[TailBound]:
    """Per-session Theorem 10/15 delay bounds at given guaranteed rates.

    The scalar construction (Lemma 5 / eq. 66 backlog tail, scaled by
    the clearing rate ``g_i``) applied session by session; the heavy
    axis — the evaluation grid — is then vectorized by
    :func:`tail_probability_matrix`.
    """
    if len(arrivals) != len(guaranteed_rates):
        raise ValidationError(
            f"arrivals has length {len(arrivals)} but guaranteed_rates "
            f"has length {len(guaranteed_rates)}"
        )
    out: list[TailBound] = []
    for arrival, g in zip(arrivals, guaranteed_rates):
        check_positive("guaranteed rate", g)
        if discrete:
            backlog = discrete_delta_tail_bound(arrival, g)
        else:
            backlog = lemma5_tail_bound(arrival, g)
        out.append(backlog.scaled_argument(g))
    return out


def theorem15_delay_tail_grid(
    arrivals: Sequence[EBB],
    guaranteed_rates: Sequence[float],
    delays: Sequence[float],
    *,
    discrete: bool = True,
) -> np.ndarray:
    """Theorem 15 delay-tail surface ``Pr{D_i >= d_j}``.

    ``M[i, j]`` bounds session ``i``'s delay tail at ``delays[j]``
    under RPPS with guaranteed rate ``guaranteed_rates[i]``; shape
    ``(len(arrivals), len(delays))``.  The per-session bounds match
    the scalar pipeline (``discrete_delta_tail_bound`` /
    ``lemma5_tail_bound`` then ``scaled_argument``) bit for bit, and
    elements match their ``evaluate_array``.
    """
    bounds = rpps_delay_bounds(
        arrivals, guaranteed_rates, discrete=discrete
    )
    return tail_probability_matrix(bounds, delays)
