"""The cached, incrementally-updated owner of the paper's bound state.

:class:`AnalysisContext` holds one GPS server's session population and
is the single stateful entry point to the paper's analytic machinery:

* **membership** — :meth:`AnalysisContext.add`,
  :meth:`AnalysisContext.remove` and :meth:`AnalysisContext.update`
  maintain the population under join / leave / renegotiate events.  In
  the default incremental mode each event patches the sorted
  ``rho_i / phi_i`` ratio order of eq. (36) and the aggregate-rate
  accumulator in ``O(log N)`` (Lemma 9's rate-inflation argument makes
  most renegotiations an ``O(1)`` in-place rewrite), instead of paying
  the from-scratch ``O(N log N)`` sort per event;
* **admission gate** — :meth:`AnalysisContext.gate` re-checks the
  stability condition (eq. 4) and every session's RPPS share against
  its Theorem 10/15 delay target.  Incrementally this is ``O(1)`` per
  decision: each session's *critical guaranteed rate* (the float-exact
  threshold where its bound starts meeting the target) is cached, and
  the population passes iff the common share multiplier clears the
  largest cached ``threshold_i / rho_i``.  Decisions are byte-identical
  to the from-scratch scan (``incremental=False``), which is itself
  condition-for-condition :func:`repro.analysis.admission.admissible`;
* **theorem caches** — :meth:`AnalysisContext.partition` (eqs. 37-39),
  :meth:`AnalysisContext.gps_config`,
  :meth:`AnalysisContext.theorem10_bounds`,
  :meth:`AnalysisContext.theorem11_family` and
  :meth:`AnalysisContext.theorem12_family` memoize the feasible
  partition and per-session bound families keyed on the population
  version, so repeated bound evaluations between membership changes
  are free.  The partition cache is keyed on the *geometry* version,
  which only advances when some ``rho_i`` or ``phi_i`` actually
  changes — renegotiating a QoS target, or re-declaring an identical
  contract, keeps every structural cache warm.

The context is deliberately decision-procedure-shaped rather than
simulation-shaped: :meth:`AnalysisContext.decide_join` and
:meth:`AnalysisContext.decide_update` run the full
gate-diagnose-commit/rollback cycle and return the same typed
:class:`repro.analysis.admission.AdmissionDecision` records the online
controller exposes.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

from repro.analysis.admission import (
    AdmissionDecision,
    QoSTarget,
    critical_guaranteed_rate,
    meets_target,
)
from repro.analysis.feasible import (
    FeasibleOrderingError,
    FeasiblePartition,
    feasible_partition,
    is_feasible_ordering,
)
from repro.analysis.incremental import ExactSum, SortedRatioOrder
from repro.analysis.single_node import (
    SessionBoundFamily,
    SessionBounds,
    theorem10_bounds,
    theorem11_family,
    theorem12_family,
)
from repro.core.ebb import EBB
from repro.core.gps import GPSConfig, Session
from repro.errors import AdmissionError, ReproError, ValidationError
from repro.utils.validation import check_positive

__all__ = ["SessionDeclaration", "AnalysisContext"]

#: Relative safety margin for the O(1) gate fast path: the cached scale
#: comparison uses ``g_i = rho_i * (rate / total)`` while the exact scan
#: computes ``g_i = rho_i / total * rate``; the two differ by at most a
#: few ulps, so a pass clearing the cached ceiling by this margin is
#: guaranteed to pass the exact per-session comparison too.
_FAST_PATH_MARGIN = 1e-12


@dataclass(frozen=True)
class SessionDeclaration:
    """One session's declared contract, as held by the context.

    ``target`` is optional: network-analysis contexts track sessions
    for their bound structure only, without an admission target.
    """

    name: str
    ebb: EBB
    phi: float
    target: QoSTarget | None = None

    @property
    def ratio(self) -> float:
        """The ordering key ``rho_i / phi_i`` of eq. (36)."""
        return self.ebb.rho / self.phi


class _SessionState:
    """Mutable per-session record (internal)."""

    __slots__ = ("name", "seq", "ebb", "phi", "target", "ratio", "threshold", "scale")

    def __init__(
        self,
        name: str,
        seq: int,
        ebb: EBB,
        phi: float,
        target: QoSTarget | None,
        threshold: float,
    ) -> None:
        self.name = name
        self.seq = seq
        self.ebb = ebb
        self.phi = phi
        self.target = target
        self.ratio = ebb.rho / phi
        self.threshold = threshold
        self.scale = 0.0 if threshold == 0.0 else threshold / ebb.rho

    def declaration(self) -> SessionDeclaration:
        return SessionDeclaration(
            name=self.name, ebb=self.ebb, phi=self.phi, target=self.target
        )


class AnalysisContext:
    """Cached, incrementally-updated bound computations for one server.

    Parameters
    ----------
    rate:
        The GPS server rate shared by the population.
    discrete:
        Evaluate the discrete-time variants of the bounds (eq. 66), as
        the slotted simulators and the online controller do; pass
        ``False`` for the continuous-time forms used by the network
        recursion.
    incremental:
        Maintain the ratio order, the exact aggregate-rate accumulator
        and per-session admission thresholds under membership events
        (the ``O(log N)`` path).  ``False`` recomputes everything from
        scratch on demand — the reference implementation the parity
        tests compare against.
    """

    def __init__(
        self,
        rate: float,
        *,
        discrete: bool = True,
        incremental: bool = True,
    ) -> None:
        check_positive("rate", rate)
        self._rate = float(rate)
        self._discrete = bool(discrete)
        self._incremental = bool(incremental)
        self._sessions: dict[str, _SessionState] = {}
        self._next_seq = 0
        # incremental structures ---------------------------------------
        self._total = ExactSum()
        self._order = SortedRatioOrder()
        self._heap: list[tuple[float, int]] = []  # (-scale, seq), lazy deletion
        self._seq_state: dict[int, _SessionState] = {}
        # cache versioning ---------------------------------------------
        self._version = 0  # any membership / contract change
        self._geometry = 0  # only rho / phi changes
        self._threshold_cache: dict[tuple[EBB, QoSTarget], float] = {}
        self._partition_cache: tuple[int, FeasiblePartition] | None = None
        self._ordering_cache: tuple[int, dict[str, Any]] | None = None
        self._config_cache: tuple[int, GPSConfig] | None = None
        self._family_version = -1
        self._family_cache: dict[tuple[str, str, float], SessionBoundFamily] = {}
        self._bounds_cache: dict[tuple[str, str, float], SessionBounds] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """The server rate."""
        return self._rate

    @property
    def discrete(self) -> bool:
        """Whether the discrete-time bound variants are evaluated."""
        return self._discrete

    @property
    def incremental(self) -> bool:
        """Whether the incremental maintenance path is active."""
        return self._incremental

    @property
    def version(self) -> int:
        """Population version; advances on every effective change."""
        return self._version

    @property
    def names(self) -> tuple[str, ...]:
        """Session names in insertion (admission) order."""
        return tuple(self._sessions)

    @property
    def total_rho(self) -> float:
        """Exact (correctly rounded) aggregate upper rate."""
        if self._incremental:
            return self._total.value
        return math.fsum(s.ebb.rho for s in self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: object) -> bool:
        return name in self._sessions

    def declaration(self, name: str) -> SessionDeclaration:
        """The current contract of one session."""
        state = self._sessions.get(name)
        if state is None:
            raise AdmissionError(f"unknown session {name!r}")
        return state.declaration()

    def declarations(self) -> list[SessionDeclaration]:
        """All current contracts, in insertion order."""
        return [s.declaration() for s in self._sessions.values()]

    def ratio_ordering(self) -> list[str]:
        """Session names sorted by ``rho_i / phi_i`` (stable in join
        order) — the canonical feasible-ordering candidate of eq. (36)."""
        if self._incremental:
            by_seq = {s.seq: s.name for s in self._sessions.values()}
            return [by_seq[seq] for seq in self._order.seqs()]
        states = list(self._sessions.values())
        order = sorted(range(len(states)), key=lambda i: states[i].ratio)
        return [states[i].name for i in order]

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _admission_threshold(
        self, ebb: EBB, target: QoSTarget | None
    ) -> float:
        """Cached critical guaranteed rate (0.0 for target-less sessions)."""
        if target is None:
            return 0.0
        key = (ebb, target)
        cached = self._threshold_cache.get(key)
        if cached is None:
            cached = critical_guaranteed_rate(
                ebb, target, server_rate=self._rate, discrete=self._discrete
            )
            self._threshold_cache[key] = cached
        return cached

    def add(
        self,
        name: str,
        ebb: EBB,
        phi: float,
        target: QoSTarget | None = None,
    ) -> None:
        """Register a session (no admission check; see ``decide_join``)."""
        if not name:
            raise ValidationError("session name must be non-empty")
        if name in self._sessions:
            raise AdmissionError(f"session {name!r} is already admitted")
        check_positive("phi", phi)
        threshold = (
            self._admission_threshold(ebb, target) if self._incremental else 0.0
        )
        state = _SessionState(
            name, self._next_seq, ebb, float(phi), target, threshold
        )
        self._next_seq += 1
        self._sessions[name] = state
        if self._incremental:
            self._total.add(state.ebb.rho)
            self._order.insert(state.ratio, state.seq)
            heapq.heappush(self._heap, (-state.scale, state.seq))
            self._seq_state[state.seq] = state
        self._version += 1
        self._geometry += 1

    def remove(self, name: str) -> SessionDeclaration:
        """Forget a session; returns its final contract."""
        state = self._sessions.get(name)
        if state is None:
            raise AdmissionError(f"cannot remove unknown session {name!r}")
        del self._sessions[name]
        if self._incremental:
            self._total.remove(state.ebb.rho)
            self._order.remove(state.ratio, state.seq)
            del self._seq_state[state.seq]  # heap entries go stale lazily
        self._version += 1
        self._geometry += 1
        return state.declaration()

    def update(
        self,
        name: str,
        *,
        ebb: EBB | None = None,
        phi: float | None = None,
        target: QoSTarget | None = None,
    ) -> SessionDeclaration:
        """Renegotiate a session's contract; ``None`` keeps a field.

        Returns the *previous* contract (so callers can roll back a
        rejected renegotiation with :meth:`restore`).
        """
        state = self._sessions.get(name)
        if state is None:
            raise AdmissionError(f"cannot renegotiate unknown session {name!r}")
        previous = state.declaration()
        self._set(
            state,
            ebb if ebb is not None else state.ebb,
            float(phi) if phi is not None else state.phi,
            target if target is not None else state.target,
        )
        return previous

    def restore(self, declaration: SessionDeclaration) -> None:
        """Re-impose a previously returned contract (rollback helper)."""
        state = self._sessions.get(declaration.name)
        if state is None:
            raise AdmissionError(
                f"cannot renegotiate unknown session {declaration.name!r}"
            )
        self._set(state, declaration.ebb, declaration.phi, declaration.target)

    def _set(
        self,
        state: _SessionState,
        ebb: EBB,
        phi: float,
        target: QoSTarget | None,
    ) -> None:
        """Apply an exact new contract, patching incremental state.

        A no-op contract (bit-identical to the current one) returns
        without advancing any version counter, keeping every cache
        warm — load-bearing for the network recursion, which re-declares
        each hop's input E.B.B. per session and only occasionally
        changes it.
        """
        if ebb == state.ebb and phi == state.phi and target == state.target:
            return
        geometry_changed = ebb.rho != state.ebb.rho or phi != state.phi
        if self._incremental:
            if ebb.rho != state.ebb.rho:
                self._total.remove(state.ebb.rho)
                self._total.add(ebb.rho)
            new_ratio = ebb.rho / phi
            if new_ratio != state.ratio:
                self._order.replace(state.ratio, new_ratio, state.seq)
            if ebb != state.ebb or target != state.target:
                threshold = self._admission_threshold(ebb, target)
                state.threshold = threshold
                state.scale = 0.0 if threshold == 0.0 else threshold / ebb.rho
                heapq.heappush(self._heap, (-state.scale, state.seq))
        state.ebb = ebb
        state.phi = phi
        state.target = target
        state.ratio = ebb.rho / phi
        self._version += 1
        if geometry_changed:
            self._geometry += 1

    # ------------------------------------------------------------------
    # the admission gate
    # ------------------------------------------------------------------
    def _max_scale(self) -> float | None:
        """Largest live ``threshold_i / rho_i`` (lazy-deletion heap top)."""
        heap = self._heap
        while heap:
            neg_scale, seq = heap[0]
            state = self._seq_state.get(seq)
            if state is not None and state.scale == -neg_scale:
                return -neg_scale
            heapq.heappop(heap)
        return None

    def gate(self, request_name: str) -> tuple[str | None, str, dict[str, Any]]:
        """Run the RPPS admission gate over the current population.

        Returns ``(violated, reason, details)`` with ``violated=None``
        on acceptance.  Condition for condition this is
        :func:`repro.analysis.admission.admissible` on the current
        ``(ebbs, targets)``; the requesting session must already be
        registered (``decide_join`` adds it first and rolls back on
        rejection).  Sessions without a target only participate in the
        stability check.
        """
        if request_name not in self._sessions:
            raise AdmissionError(f"unknown session {request_name!r}")
        total = self.total_rho
        details: dict[str, Any] = {
            "server_rate": self._rate,
            "total_rho": total,
            "offered_load": total / self._rate,
            "num_sessions": len(self._sessions),
        }
        if total >= self._rate:
            return (
                "stability",
                f"aggregate rate {total:.6g} would reach the server "
                f"rate {self._rate:.6g} (eq. 4 stability)",
                details,
            )
        violator = self._first_violator(total)
        if violator is None:
            return None, "all delay targets met at the RPPS shares", details
        state, granted = violator
        assert state.target is not None
        details["violating_session"] = state.name
        details["granted_rate"] = granted
        details["d_max"] = state.target.d_max
        details["epsilon"] = state.target.epsilon
        details["bound_probability"] = self._bound_at(state, granted)
        blame = (
            "its own"
            if state.name == request_name
            else f"session {state.name!r}'s"
        )
        return (
            "delay_bound",
            f"admitting {request_name!r} would violate {blame} "
            f"Theorem 10 delay target Pr{{D >= "
            f"{state.target.d_max:g}}} <= "
            f"{state.target.epsilon:g} at RPPS rate "
            f"{granted:.6g}",
            details,
        )

    def _first_violator(
        self, total: float
    ) -> tuple[_SessionState, float] | None:
        """First session (in admission order) whose RPPS share misses
        its delay target, or ``None`` when all targets are met."""
        if self._incremental:
            ceiling = self._max_scale()
            multiplier = self._rate / total
            if ceiling is None or multiplier * (1.0 - _FAST_PATH_MARGIN) > ceiling:
                # O(1) accept: every share clears its threshold with a
                # margin larger than the share-expression rounding.
                return None
            for state in self._sessions.values():
                if state.target is None:
                    continue
                granted = state.ebb.rho / total * self._rate
                # granted >= threshold  <=>  meets_target(granted), by
                # the float-exact bisection in critical_guaranteed_rate
                if granted < state.threshold:
                    return state, granted
            return None
        for state in self._sessions.values():
            if state.target is None:
                continue
            granted = state.ebb.rho / total * self._rate
            if not meets_target(
                state.ebb, granted, state.target, discrete=self._discrete
            ):
                return state, granted
        return None

    def _bound_at(self, state: _SessionState, granted: float) -> float | None:
        """Theorem 10/15 delay-bound value at the session's ``d_max``."""
        from repro.core.rpps import guaranteed_rate_bounds

        assert state.target is not None
        if granted <= state.ebb.rho:
            return None
        try:
            bounds = guaranteed_rate_bounds(
                state.name, state.ebb, granted, discrete=self._discrete
            )
            return float(bounds.delay.evaluate(state.target.d_max))
        except ReproError:
            return None

    # ------------------------------------------------------------------
    # diagnostics (feasible ordering / partition / Theorem 11)
    # ------------------------------------------------------------------
    def _ordering_diagnostics(self) -> dict[str, Any]:
        """Feasible-ordering diagnostics, cached on the geometry version.

        In incremental mode the maintained ratio order *is* the
        canonical candidate ordering, so only the eq. (4) feasibility
        scan is paid; the output (including the failure message) is
        bit-identical to
        :func:`repro.analysis.feasible.find_feasible_ordering`.
        """
        if (
            self._ordering_cache is not None
            and self._ordering_cache[0] == self._geometry
        ):
            return dict(self._ordering_cache[1])
        states = list(self._sessions.values())
        names = [s.name for s in states]
        rhos = [s.ebb.rho for s in states]
        phis = [s.phi for s in states]
        if self._incremental:
            # insertion order is seq order, so the maintained (ratio,
            # seq) entries map straight to insertion indices
            rank_of_seq = {s.seq: k for k, s in enumerate(states)}
            order = [rank_of_seq[seq] for seq in self._order.seqs()]
        else:
            order = sorted(
                range(len(states)), key=lambda i: rhos[i] / phis[i]
            )
        out: dict[str, Any]
        if is_feasible_ordering(
            order, rhos, phis, server_rate=self._rate, strict=True
        ):
            out = {"feasible_ordering": [names[i] for i in order]}
        else:
            error = FeasibleOrderingError(
                "no feasible ordering exists: the ratio-sorted ordering "
                f"violates eq. (4); total rate "
                f"{sum(rhos)} vs server rate {self._rate}"
            )
            out = {
                "feasible_ordering": None,
                "feasible_ordering_error": str(error),
            }
        self._ordering_cache = (self._geometry, dict(out))
        return out

    def diagnose(self, request_name: str) -> dict[str, Any]:
        """Feasible ordering / partition / Theorem 11 diagnostics for a
        request, matching the online controller's decision details."""
        state = self._sessions.get(request_name)
        if state is None:
            raise AdmissionError(f"unknown session {request_name!r}")
        out = self._ordering_diagnostics()
        if out.get("feasible_ordering") is None:
            return out
        partition = self.partition()
        names = [s.name for s in self._sessions.values()]
        out["feasible_partition"] = [
            [names[i] for i in members] for members in partition.classes
        ]
        out["partition_level"] = partition.level(names.index(request_name))
        out["theorem11_probability"] = self._theorem11_probability(state)
        return out

    def _theorem11_probability(self, state: _SessionState) -> float | None:
        """The session's optimized Theorem 11 delay tail at its
        ``d_max`` — the sharper partition-based bound, for diagnostics."""
        if state.target is None:
            return None
        try:
            family = self.theorem11_family(state.name)
            bound = family.optimized_delay(state.target.d_max)
            return float(bound.evaluate(state.target.d_max))
        except ReproError:
            return None

    # ------------------------------------------------------------------
    # cached theorem computations
    # ------------------------------------------------------------------
    def partition(self) -> FeasiblePartition:
        """The feasible partition of eqs. (37)-(39), cached per geometry."""
        if (
            self._partition_cache is not None
            and self._partition_cache[0] == self._geometry
        ):
            return self._partition_cache[1]
        states = list(self._sessions.values())
        partition = feasible_partition(
            [s.ebb.rho for s in states],
            [s.phi for s in states],
            server_rate=self._rate,
        )
        self._partition_cache = (self._geometry, partition)
        return partition

    def gps_config(self) -> GPSConfig:
        """The population as a :class:`GPSConfig`, cached per version."""
        if self._config_cache is not None and self._config_cache[0] == self._version:
            return self._config_cache[1]
        config = GPSConfig(
            self._rate,
            [
                Session(s.name, s.ebb, s.phi)
                for s in self._sessions.values()
            ],
        )
        self._config_cache = (self._version, config)
        return config

    def _families(self) -> dict[tuple[str, str, float], SessionBoundFamily]:
        if self._family_version != self._version:
            self._family_cache.clear()
            self._bounds_cache.clear()
            self._family_version = self._version
        return self._family_cache

    def theorem10_bounds(
        self, name: str, *, xi: float | None = None
    ) -> SessionBounds:
        """Theorem 10 bounds for one session (class ``H_1`` only),
        cached per population version."""
        self._families()  # resets both caches when the version moved
        key = ("t10", name, -1.0 if xi is None else xi)
        cached = self._bounds_cache.get(key)
        if cached is not None:
            return cached
        config = self.gps_config()
        bounds = theorem10_bounds(
            config,
            config.index_of(name),
            xi=xi,
            discrete=self._discrete,
            partition=self.partition(),
        )
        self._bounds_cache[key] = bounds
        return bounds

    def _family(
        self, kind: str, name: str, xi: float
    ) -> SessionBoundFamily:
        cache = self._families()
        key = (kind, name, xi)
        family = cache.get(key)
        if family is not None:
            return family
        config = self.gps_config()
        index = config.index_of(name)
        if kind == "t11":
            family = theorem11_family(
                config,
                index,
                xi=xi,
                partition=self.partition(),
                discrete=self._discrete,
            )
        else:
            family = theorem12_family(
                config,
                index,
                xi=xi,
                partition=self.partition(),
                discrete=self._discrete,
            )
        cache[key] = family
        return family

    def theorem11_family(self, name: str, *, xi: float = 1.0) -> SessionBoundFamily:
        """Theorem 11 bound family for one session, cached per version."""
        return self._family("t11", name, xi)

    def theorem12_family(self, name: str, *, xi: float = 1.0) -> SessionBoundFamily:
        """Theorem 12 bound family for one session, cached per version."""
        return self._family("t12", name, xi)

    # ------------------------------------------------------------------
    # durable state export/import
    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the full context state.

        Captures everything a byte-identical resurrection needs: the
        population with the cached per-session admission thresholds,
        the version/geometry counters, and the *exact* Shewchuk
        partials of the aggregate-rate accumulator (JSON round-trips
        finite floats exactly, so restoring the partials reproduces
        every future rounding).  Theorem caches are deliberately
        excluded — they are deterministic functions of this state.
        """
        return {
            "rate": self._rate,
            "discrete": self._discrete,
            "incremental": self._incremental,
            "next_seq": self._next_seq,
            "version": self._version,
            "geometry": self._geometry,
            "total_partials": list(self._total.partials),
            "sessions": [
                {
                    "name": state.name,
                    "seq": state.seq,
                    "ebb": {
                        "rho": state.ebb.rho,
                        "prefactor": state.ebb.prefactor,
                        "decay_rate": state.ebb.decay_rate,
                    },
                    "phi": state.phi,
                    "target": (
                        None
                        if state.target is None
                        else {
                            "d_max": state.target.d_max,
                            "epsilon": state.target.epsilon,
                        }
                    ),
                    "threshold": state.threshold,
                }
                for state in self._sessions.values()
            ],
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "AnalysisContext":
        """Rebuild a context from an :meth:`export_state` snapshot.

        The restored context is observationally bit-identical to the
        exported one: same gate decisions, same ``total_rho`` rounding,
        same version counters (so version-keyed caches rebuilt after
        restore stay coherent with pre-snapshot consumers).
        """
        out = cls(
            float(state["rate"]),
            discrete=bool(state["discrete"]),
            incremental=bool(state["incremental"]),
        )
        for record in state["sessions"]:
            ebb = EBB(
                rho=float(record["ebb"]["rho"]),
                prefactor=float(record["ebb"]["prefactor"]),
                decay_rate=float(record["ebb"]["decay_rate"]),
            )
            target = (
                None
                if record["target"] is None
                else QoSTarget(
                    d_max=float(record["target"]["d_max"]),
                    epsilon=float(record["target"]["epsilon"]),
                )
            )
            session = _SessionState(
                str(record["name"]),
                int(record["seq"]),
                ebb,
                float(record["phi"]),
                target,
                float(record["threshold"]),
            )
            out._sessions[session.name] = session
            if out._incremental:
                out._order.insert(session.ratio, session.seq)
                heapq.heappush(out._heap, (-session.scale, session.seq))
                out._seq_state[session.seq] = session
                if target is not None:
                    out._threshold_cache[(ebb, target)] = session.threshold
        if out._incremental:
            out._total = ExactSum.from_partials(
                float(p) for p in state["total_partials"]
            )
        out._next_seq = int(state["next_seq"])
        out._version = int(state["version"])
        out._geometry = int(state["geometry"])
        return out

    # ------------------------------------------------------------------
    # typed decisions
    # ------------------------------------------------------------------
    def _decision(
        self,
        action: str,
        request_name: str,
        *,
        diagnostics: bool,
    ) -> AdmissionDecision:
        violated, reason, details = self.gate(request_name)
        if diagnostics and violated != "stability":
            details.update(self.diagnose(request_name))
        return AdmissionDecision(
            accepted=violated is None,
            session=request_name,
            action=action,
            reason=reason,
            violated=violated,
            details=details,
        )

    def decide_join(
        self,
        name: str,
        ebb: EBB,
        phi: float,
        target: QoSTarget,
        *,
        diagnostics: bool = False,
    ) -> AdmissionDecision:
        """Gate a join request; commits the session iff accepted."""
        self.add(name, ebb, phi, target)
        decision = self._decision("join", name, diagnostics=diagnostics)
        if not decision.accepted:
            self.remove(name)
        return decision

    def decide_update(
        self,
        name: str,
        *,
        ebb: EBB | None = None,
        phi: float | None = None,
        target: QoSTarget | None = None,
        diagnostics: bool = False,
    ) -> AdmissionDecision:
        """Gate a renegotiation; commits the new contract iff accepted.

        A rejected renegotiation restores the previous contract."""
        previous = self.update(name, ebb=ebb, phi=phi, target=target)
        decision = self._decision(
            "renegotiate", name, diagnostics=diagnostics
        )
        if not decision.accepted:
            self.restore(previous)
        return decision
