"""Incremental data structures behind :class:`AnalysisContext`.

Two small, exactly-specified containers let the admission gate patch
its state in ``O(log N)`` per session event instead of recomputing
from scratch:

* :class:`ExactSum` — a Shewchuk-style exact accumulator for the
  aggregate rate ``sum_i rho_i``.  Its :attr:`ExactSum.value` is
  *bit-identical* to ``math.fsum`` over the current multiset of
  addends, no matter in which order sessions joined and left, which is
  what makes the incremental and from-scratch gates byte-identical.
* :class:`SortedRatioOrder` — the ``rho_i / phi_i`` ratio order of
  eq. (36) maintained under insertions, deletions and renegotiations.
  Ties break by insertion sequence number, reproducing the stable
  ``sorted(..., key=ratio)`` order of
  :func:`repro.analysis.feasible.find_feasible_ordering`.
  :meth:`SortedRatioOrder.replace` implements the Lemma 9 fast path:
  a renegotiated rate that still fits between the session's current
  neighbours leaves the ordering untouched (``O(1)`` check), and only
  otherwise pays the ``O(log N)`` re-insertion.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Iterable

__all__ = ["ExactSum", "SortedRatioOrder"]


class ExactSum:
    """Exact floating-point accumulator supporting add *and* remove.

    Maintains Shewchuk non-overlapping partial sums (the ``msum``
    recipe underlying ``math.fsum``).  Removing ``x`` is adding
    ``-x``: because every grow step is exact (two-sum), the partials
    always represent the true real-number sum of everything ever
    added, so after removals the value equals ``math.fsum`` of the
    surviving multiset exactly.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: list[float] = []

    def _grow(self, x: float) -> None:
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def add(self, x: float) -> None:
        """Add ``x`` to the sum, exactly."""
        self._grow(x)

    def remove(self, x: float) -> None:
        """Remove one previously-added ``x`` from the sum, exactly."""
        self._grow(-x)

    @property
    def value(self) -> float:
        """Correctly-rounded sum — ``math.fsum`` of the live multiset."""
        return math.fsum(self._partials)

    @property
    def partials(self) -> tuple[float, ...]:
        """The non-overlapping partial sums, smallest magnitude first.

        Restoring these via :meth:`from_partials` reproduces the
        accumulator *bit for bit* — including the rounding of every
        future :meth:`add`/:meth:`remove` — which is what lets a
        serving snapshot round-trip the aggregate rate exactly.
        """
        return tuple(self._partials)

    @classmethod
    def from_partials(cls, partials: "Iterable[float]") -> "ExactSum":
        """Rebuild an accumulator from a :attr:`partials` snapshot."""
        out = cls()
        out._partials = [float(p) for p in partials]
        return out

    def __len__(self) -> int:
        return len(self._partials)


class SortedRatioOrder:
    """The ratio-sorted session order, maintained incrementally.

    Entries are ``(ratio, seq)`` pairs where ``seq`` is the session's
    insertion sequence number.  Python tuple comparison then sorts by
    ratio with ties broken by join order — exactly the stable sort
    ``sorted(range(n), key=lambda i: rho[i] / phi[i])`` over sessions
    listed in join order, so the maintained order reproduces the
    canonical feasible ordering of eq. (36) bit for bit.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, ratio: float, seq: int) -> None:
        """Insert a session at its sorted position (``O(log N)`` search,
        ``O(N)`` shift — the shift is a C-level memmove)."""
        insort(self._entries, (ratio, seq))

    def remove(self, ratio: float, seq: int) -> None:
        """Remove a session by its exact ``(ratio, seq)`` key."""
        entries = self._entries
        k = bisect_left(entries, (ratio, seq))
        if k >= len(entries) or entries[k] != (ratio, seq):
            raise KeyError((ratio, seq))
        del entries[k]

    def replace(self, old_ratio: float, new_ratio: float, seq: int) -> bool:
        """Renegotiate a session's ratio; returns True if the order moved.

        Lemma 9 of the paper shows the feasible ordering is preserved
        when a rate is inflated without crossing a neighbour's ratio;
        the ``O(1)`` neighbour check below detects exactly that case
        and rewrites the entry in place.  Only a crossing pays the
        delete + re-insert.
        """
        entries = self._entries
        k = bisect_left(entries, (old_ratio, seq))
        if k >= len(entries) or entries[k] != (old_ratio, seq):
            raise KeyError((old_ratio, seq))
        new_entry = (new_ratio, seq)
        left_ok = k == 0 or entries[k - 1] < new_entry
        right_ok = k == len(entries) - 1 or new_entry < entries[k + 1]
        if left_ok and right_ok:
            entries[k] = new_entry
            return False
        del entries[k]
        insort(entries, new_entry)
        return True

    def seqs(self) -> list[int]:
        """Session sequence numbers in ratio order."""
        return [seq for _, seq in self._entries]

    def rank(self, ratio: float, seq: int) -> int:
        """0-based position of an entry in the order."""
        entries = self._entries
        k = bisect_left(entries, (ratio, seq))
        if k >= len(entries) or entries[k] != (ratio, seq):
            raise KeyError((ratio, seq))
        return k

    def neighbors(
        self, ratio: float, seq: int
    ) -> tuple[tuple[float, int] | None, tuple[float, int] | None]:
        """The entries immediately before and after one session."""
        k = self.rank(ratio, seq)
        entries = self._entries
        before = entries[k - 1] if k > 0 else None
        after = entries[k + 1] if k + 1 < len(entries) else None
        return before, after

    def as_tuples(self) -> list[tuple[float, int]]:
        """Snapshot of the ``(ratio, seq)`` entries, in order."""
        return list(self._entries)
