"""Feasible orderings (eq. 4-5) and the feasible partition (Section 5).

Parekh & Gallager showed that whenever ``sum_i rho_i < r`` the sessions
of a GPS server can be relabelled so that

    rho_i < phi_i / (sum_{j >= i} phi_j) * (r - sum_{j < i} rho_j)

for every ``i`` — a *feasible ordering*.  The statistical analysis picks
virtual rates ``r_i`` satisfying the analogous non-strict condition
(eq. 5).

Section 5 observes that all feasible orderings are governed by the
ratios ``rho_i / phi_i`` and distils them into the *feasible partition*
``H_1, ..., H_L`` (eqs. 37-39): ``H_1`` holds the sessions whose upper
rate is below their guaranteed rate ``g_i``; each subsequent class holds
the sessions that become "feasible" once the earlier classes' rates are
subtracted from the server.  A key consequence (used by Theorems 10-12)
is that the bound for a session in ``H_k`` depends only on the sessions
in ``H_1, ..., H_{k-1}``.

This module is the single owner of these constructions;
``repro.core.feasible`` re-exports it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.validation import check_positive, check_same_length

from repro.errors import FeasibilityError, ValidationError

__all__ = [
    "FeasibleOrderingError",
    "is_feasible_ordering",
    "find_feasible_ordering",
    "all_feasible_orderings",
    "FeasiblePartition",
    "feasible_partition",
]

#: Relative tolerance used when comparing rates; the constructions are
#: exact in rational arithmetic, but the inputs are floats.
_REL_TOL = 1e-12


class FeasibleOrderingError(FeasibilityError):
    """Raised when no feasible ordering / partition exists for the input.

    A :class:`repro.errors.FeasibilityError` (and therefore both a
    :class:`repro.errors.ReproError` and a ``ValueError``); the historical
    name is kept for backward compatibility.
    """


def _check_inputs(
    rates: Sequence[float], phis: Sequence[float], server_rate: float
) -> None:
    check_same_length("rates", rates, "phis", phis)
    if len(rates) == 0:
        raise ValidationError("need at least one session")
    check_positive("server_rate", server_rate)
    for k, (rate, phi) in enumerate(zip(rates, phis)):
        check_positive(f"phis[{k}]", phi)
        if rate < 0.0:
            raise ValidationError(f"rates[{k}] must be non-negative, got {rate}")


def is_feasible_ordering(
    order: Sequence[int],
    rates: Sequence[float],
    phis: Sequence[float],
    *,
    server_rate: float = 1.0,
    strict: bool = False,
) -> bool:
    """Check condition (4)/(5) for the permutation ``order``.

    ``order[k]`` is the session placed at position ``k``.  With
    ``strict=True`` the strict inequality of eq. (4) is required (the
    appropriate check for the true upper rates ``rho_i``); otherwise the
    non-strict eq. (5) (the check for chosen virtual rates ``r_i``).
    """
    _check_inputs(rates, phis, server_rate)
    if sorted(order) != list(range(len(rates))):
        raise ValidationError(f"order must be a permutation of 0..{len(rates) - 1}")
    remaining_phi = sum(phis[i] for i in order)
    consumed = 0.0
    for position, i in enumerate(order):
        budget = (phis[i] / remaining_phi) * (server_rate - consumed)
        slack = budget - rates[i]
        if strict:
            if slack <= 0.0:
                return False
        else:
            if slack < -_REL_TOL * server_rate:
                return False
        consumed += rates[i]
        remaining_phi -= phis[i]
        del position
    return True


def find_feasible_ordering(
    rates: Sequence[float],
    phis: Sequence[float],
    *,
    server_rate: float = 1.0,
    strict: bool = False,
) -> list[int]:
    """Return a feasible ordering of the sessions, or raise.

    The ordering by increasing ``rho_i / phi_i`` is canonical: at every
    step the eligibility threshold ``(r - consumed) / sum_remaining_phi``
    is *uniform* across remaining sessions, so if any session is
    eligible, the one with the smallest ratio is.  A summation argument
    shows some session is always eligible whenever
    ``sum_i rates_i < server_rate`` (or ``<=`` in the non-strict case).

    Raises
    ------
    FeasibleOrderingError
        If the canonical ordering is not feasible (and therefore no
        ordering is).
    """
    _check_inputs(rates, phis, server_rate)
    order = sorted(range(len(rates)), key=lambda i: rates[i] / phis[i])
    if not is_feasible_ordering(
        order, rates, phis, server_rate=server_rate, strict=strict
    ):
        raise FeasibleOrderingError(
            "no feasible ordering exists: the ratio-sorted ordering "
            f"violates eq. {'(4)' if strict else '(5)'}; total rate "
            f"{sum(rates)} vs server rate {server_rate}"
        )
    return order


def all_feasible_orderings(
    rates: Sequence[float],
    phis: Sequence[float],
    *,
    server_rate: float = 1.0,
    strict: bool = False,
    limit: int = 10_000,
) -> list[list[int]]:
    """Enumerate *every* feasible ordering (for small session counts).

    The paper notes that "in general, there are many feasible
    orderings"; since Theorem 7's bound depends on a session's position,
    enumerating them lets one take the pointwise-best bound over all
    orderings and compare it with the feasible-partition bound
    (Theorem 11) — the partition distils exactly the ordering freedom
    that matters.  Backtracking search; raises ``ValueError`` if more
    than ``limit`` orderings exist (use the canonical one instead).
    """
    _check_inputs(rates, phis, server_rate)
    n = len(rates)
    results: list[list[int]] = []

    def recurse(
        prefix: list[int], consumed: float, remaining: set[int]
    ) -> None:
        if len(results) > limit:
            raise ValidationError(
                f"more than {limit} feasible orderings; enumeration "
                "is not practical for this configuration"
            )
        if not remaining:
            results.append(list(prefix))
            return
        remaining_phi = sum(phis[j] for j in remaining)
        threshold = (server_rate - consumed) / remaining_phi
        for i in sorted(remaining):
            ratio = rates[i] / phis[i]
            ok = ratio < threshold if strict else (
                ratio <= threshold + _REL_TOL
            )
            if ok:
                prefix.append(i)
                remaining.discard(i)
                recurse(prefix, consumed + rates[i], remaining)
                remaining.add(i)
                prefix.pop()

    recurse([], 0.0, set(range(n)))
    return results


@dataclass(frozen=True)
class FeasiblePartition:
    """The feasible partition ``H_1, ..., H_L`` of eqs. (37)-(39).

    Attributes
    ----------
    classes:
        ``classes[k]`` is the tuple of session indices in ``H_{k+1}``
        (0-based classes).
    rhos, phis:
        The inputs the partition was built from.
    server_rate:
        The server rate ``r``.
    """

    classes: tuple[tuple[int, ...], ...]
    rhos: tuple[float, ...]
    phis: tuple[float, ...]
    server_rate: float
    _level_of: dict[int, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        levels = {}
        for level, members in enumerate(self.classes):
            for i in members:
                levels[i] = level
        object.__setattr__(self, "_level_of", levels)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """The number of partition classes ``L``."""
        return len(self.classes)

    def level(self, session: int) -> int:
        """0-based class index ``k`` such that ``session`` is in ``H_{k+1}``."""
        return self._level_of[session]

    def prefix_sessions(self, level: int) -> list[int]:
        """All sessions in classes strictly below ``level`` (``H^{k-1}``)."""
        out: list[int] = []
        for k in range(level):
            out.extend(self.classes[k])
        return out

    def suffix_phi(self, level: int) -> float:
        """``sum_{j not in H^{k-1}} phi_j`` — the weight mass at or above
        ``level``; the denominator of ``psi_i`` in Theorems 11-12."""
        prefix = set(self.prefix_sessions(level))
        return sum(
            phi for j, phi in enumerate(self.phis) if j not in prefix
        )

    def psi(self, session: int) -> float:
        """``psi_i = phi_i / sum_{j not in H^{k-1}} phi_j`` for session i in H_k."""
        return self.phis[session] / self.suffix_phi(self.level(session))

    def guaranteed_rate(self, session: int) -> float:
        """``g_i = phi_i / sum_j phi_j * r`` — GPS guaranteed clearing rate."""
        return self.phis[session] / sum(self.phis) * self.server_rate

    def class_rho(self, level: int) -> float:
        """Aggregate upper rate ``rho~`` of class ``level``."""
        return sum(self.rhos[i] for i in self.classes[level])

    def class_phi(self, level: int) -> float:
        """Aggregate weight ``phi~`` of class ``level``."""
        return sum(self.phis[i] for i in self.classes[level])


def feasible_partition(
    rhos: Sequence[float],
    phis: Sequence[float],
    *,
    server_rate: float = 1.0,
) -> FeasiblePartition:
    """Build the feasible partition of eqs. (37)-(39).

    ``H_1`` collects every session with ``rho_i / phi_i < r / sum_j
    phi_j``; recursively, ``H_{k+1}`` collects the sessions whose ratio
    is below the residual rate per unit weight once classes
    ``H_1..H_k`` are removed.  Requires ``sum_i rho_i < server_rate``
    (otherwise some stage has no eligible session).
    """
    _check_inputs(rhos, phis, server_rate)
    total_rho = sum(rhos)
    if total_rho >= server_rate:
        raise FeasibleOrderingError(
            f"stability requires sum(rho) < server rate; got {total_rho} "
            f">= {server_rate}"
        )
    remaining = set(range(len(rhos)))
    consumed_rho = 0.0
    classes: list[tuple[int, ...]] = []
    while remaining:
        remaining_phi = sum(phis[j] for j in remaining)
        threshold = (server_rate - consumed_rho) / remaining_phi
        members = sorted(
            i for i in remaining if rhos[i] / phis[i] < threshold
        )
        if not members:
            raise FeasibleOrderingError(
                "feasible partition construction stalled; this cannot "
                "happen when sum(rho) < server rate"
            )
        classes.append(tuple(members))
        consumed_rho += sum(rhos[i] for i in members)
        remaining.difference_update(members)
    return FeasiblePartition(
        classes=tuple(classes),
        rhos=tuple(float(x) for x in rhos),
        phis=tuple(float(x) for x in phis),
        server_rate=float(server_rate),
    )
