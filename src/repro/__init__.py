"""repro — Statistical analysis of the Generalized Processor Sharing
(GPS) scheduling discipline.

A complete, self-contained implementation of Zhang, Towsley & Kurose,
"Statistical Analysis of Generalized Processor Sharing Scheduling
Discipline" (SIGCOMM '94 / UMass CMPSCI TR 95-10):

* :mod:`repro.core` — E.B.B. process model, the GPS decomposition and
  the configuration objects shared by analysis and simulation.
* :mod:`repro.analysis` — single owner of the paper-theorem
  computations: feasible orderings and partitions, the Lemma 5/6 MGF
  machinery, the single-node bound theorems (7, 8, 10, 11, 12),
  admission procedures, the cached incremental
  :class:`~repro.analysis.context.AnalysisContext` and vectorized
  grid evaluation.
* :mod:`repro.markov` — effective bandwidths and LNT94/BD94 bounds for
  Markov-modulated sources (Table 2 / Figure 4 machinery).
* :mod:`repro.network` — CRST networks, the Theorem 13 recursion, and
  RPPS closed forms (Theorem 15).
* :mod:`repro.traffic` — traffic generators, leaky buckets, the
  Section 3 marking scheme, deterministic envelopes and empirical
  E.B.B. estimation.
* :mod:`repro.deterministic` — the Parekh-Gallager worst-case baseline.
* :mod:`repro.sim` — fluid GPS, packetized WFQ (PGPS), baseline
  schedulers and network simulators with measurement utilities.
* :mod:`repro.experiments` — the paper's Section 6.3 numerical example
  and the supervised Monte-Carlo runner.
* :mod:`repro.faults` — fault injection (degraded servers, link
  failures, bursts, numeric corruption) and degraded-mode reports.
* :mod:`repro.errors` — the typed error hierarchy every public API
  raises from.
* :mod:`repro.scenario` — the frozen :class:`~repro.scenario.Scenario`
  description that drives fluid, batched, packet and fault-injected
  simulations from one declaration.
* :mod:`repro.online` — the event-driven streaming GPS engine with
  session churn, live E.B.B. admission control, JSONL trace
  record/replay and the ``repro serve`` ingestion loop.
"""

from repro.analysis import (
    AnalysisContext,
    best_partition_family,
    feasible_partition,
    find_feasible_ordering,
    theorem7_family,
    theorem10_bounds,
    theorem11_family,
    theorem12_family,
)
from repro.core import (
    EBB,
    ExponentialTailBound,
    GPSConfig,
    Session,
    rpps_config,
)
from repro.errors import (
    AdmissionError,
    CheckpointError,
    FeasibilityError,
    NumericalError,
    ReproError,
    SimulationFaultError,
    ValidationError,
)
from repro.network import (
    Network,
    NetworkNode,
    NetworkSession,
    analyze_crst_network,
    crst_partition,
    rpps_network_bounds,
)
from repro.scenario import Scenario

__version__ = "1.0.0"

__all__ = [
    "AnalysisContext",
    "EBB",
    "ExponentialTailBound",
    "GPSConfig",
    "Session",
    "best_partition_family",
    "feasible_partition",
    "find_feasible_ordering",
    "rpps_config",
    "theorem7_family",
    "theorem10_bounds",
    "theorem11_family",
    "theorem12_family",
    "Network",
    "NetworkNode",
    "NetworkSession",
    "analyze_crst_network",
    "crst_partition",
    "rpps_network_bounds",
    "Scenario",
    "ReproError",
    "ValidationError",
    "FeasibilityError",
    "NumericalError",
    "SimulationFaultError",
    "CheckpointError",
    "AdmissionError",
    "__version__",
]
