"""Discrete-time two-state on-off Markov sources (Section 6.3).

Each source alternates between an *off* state emitting nothing and an
*on* state emitting ``peak_rate`` units per slot:

* ``p``: transition probability off -> on,
* ``q``: transition probability on -> off,
* mean rate ``p * peak_rate / (p + q)`` (Table 1's ``lambda-bar``).

The MGF kernel of the source has the closed-form spectral radius

    z(theta) = [tr + sqrt(tr^2 - 4 det)] / 2,
    tr  = (1 - p) + (1 - q) w,   det = (1 - p - q) w,   w = e^{theta peak},

used to cross-check the generic eigensolver and to make the Table 2
effective-bandwidth inversion exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.markov.chain import DTMC
from repro.markov.mmpp import MarkovModulatedSource
from repro.utils.validation import check_positive, check_probability

from repro.errors import ValidationError

__all__ = ["OnOffSource"]


@dataclass(frozen=True)
class OnOffSource:
    """A two-state on-off Markov fluid source.

    Attributes
    ----------
    p:
        Off -> on transition probability (must be in ``(0, 1]``).
    q:
        On -> off transition probability (must be in ``(0, 1]``).
    peak_rate:
        Emission rate in the on state (``lambda_i`` in Table 1).
    """

    p: float
    q: float
    peak_rate: float

    def __post_init__(self) -> None:
        check_probability("p", self.p)
        check_probability("q", self.q)
        if self.p == 0.0:
            raise ValidationError("p = 0 means the source never turns on")
        if self.q == 0.0:
            raise ValidationError("q = 0 means the source never turns off")
        check_positive("peak_rate", self.peak_rate)

    # ------------------------------------------------------------------
    @property
    def mean_rate(self) -> float:
        """``lambda-bar = p * peak / (p + q)``."""
        return self.p * self.peak_rate / (self.p + self.q)

    @property
    def on_probability(self) -> float:
        """Stationary probability of the on state."""
        return self.p / (self.p + self.q)

    @property
    def burst_length_mean(self) -> float:
        """Mean sojourn in the on state, ``1/q`` slots."""
        return 1.0 / self.q

    @property
    def idle_length_mean(self) -> float:
        """Mean sojourn in the off state, ``1/p`` slots."""
        return 1.0 / self.p

    # ------------------------------------------------------------------
    def as_mms(self) -> MarkovModulatedSource:
        """View as a general Markov-modulated source (off=0, on=1)."""
        chain = DTMC(
            np.array(
                [[1.0 - self.p, self.p], [self.q, 1.0 - self.q]]
            )
        )
        return MarkovModulatedSource(chain, [0.0, self.peak_rate])

    def spectral_radius(self, theta: float) -> float:
        """Closed-form largest eigenvalue of the MGF kernel ``P D``."""
        w = math.exp(theta * self.peak_rate)
        trace = (1.0 - self.p) + (1.0 - self.q) * w
        det = (1.0 - self.p - self.q) * w
        disc = trace * trace - 4.0 * det
        # disc >= (difference of eigenvalues)^2 >= 0 analytically;
        # clamp tiny negatives from rounding.
        return 0.5 * (trace + math.sqrt(max(disc, 0.0)))

    def effective_bandwidth(self, theta: float) -> float:
        """``eb(theta) = ln z(theta) / theta``; mean rate at 0+, peak at oo."""
        check_positive("theta", theta)
        return math.log(self.spectral_radius(theta)) / theta

    def on_count_distribution(self, duration: int) -> np.ndarray:
        """Exact distribution of the number of on-slots in ``duration``
        stationary slots.

        Returns ``dist`` with ``dist[k] = Pr{exactly k on-slots}``.
        Since the traffic in the window is ``peak_rate * k``, this gives
        the *exact* interval arrival distribution — used in tests to
        verify that E.B.B. characterizations genuinely dominate the true
        tail.  Dynamic programming over (state, count); O(duration^2).
        """
        if duration < 0:
            raise ValidationError(f"duration must be >= 0, got {duration}")
        if duration == 0:
            return np.array([1.0])
        pi_on = self.on_probability
        # table[state, k]: probability of being in `state` at the current
        # slot with k on-slots so far (counting the current slot).
        table = np.zeros((2, duration + 1))
        table[0, 0] = 1.0 - pi_on
        table[1, 1] = pi_on
        for _ in range(duration - 1):
            nxt = np.zeros_like(table)
            # off -> off, on -> off keep the count
            nxt[0, :] = (
                table[0, :] * (1.0 - self.p) + table[1, :] * self.q
            )
            # off -> on, on -> on increment the count
            nxt[1, 1:] = (
                table[0, :-1] * self.p + table[1, :-1] * (1.0 - self.q)
            )
            table = nxt
        return table.sum(axis=0)
