"""Effective bandwidth of Markov-modulated sources and its inversion.

The effective bandwidth of a stationary source at tilt ``theta`` is

    eb(theta) = ln z(theta) / theta,

where ``z(theta)`` is the spectral radius of the MGF kernel
``P D(theta)``.  It increases from the mean rate (``theta -> 0``) to
the peak rate (``theta -> oo``).  Inverting ``eb(alpha) = c`` for a
drain/envelope rate ``c`` strictly between mean and peak yields the
exponential decay rate ``alpha`` of both

* the E.B.B. characterization with upper rate ``rho = c`` (Table 2), and
* the queue tail when the source is served at constant rate ``c``
  (the LNT94 bound used for the improved Figure 4 curves).
"""

from __future__ import annotations

import math

from repro.markov.chain import perron_pair
from repro.markov.mmpp import MarkovModulatedSource
from repro.utils.numeric import bisect_root
from repro.utils.validation import check_positive

from repro.errors import NumericalError, ValidationError

__all__ = [
    "spectral_radius",
    "effective_bandwidth",
    "decay_rate_for_rate",
    "total_effective_bandwidth",
    "eb_admissible",
]


def spectral_radius(source: MarkovModulatedSource, theta: float) -> float:
    """Largest eigenvalue of the MGF kernel ``P D(theta)``."""
    z, _ = perron_pair(source.mgf_kernel(theta))
    return z


def effective_bandwidth(
    source: MarkovModulatedSource, theta: float
) -> float:
    """``eb(theta) = ln z(theta) / theta`` for ``theta > 0``."""
    check_positive("theta", theta)
    return math.log(spectral_radius(source, theta)) / theta


def decay_rate_for_rate(
    source: MarkovModulatedSource,
    rate: float,
    *,
    tol: float = 1e-12,
) -> float:
    """Solve ``eb(alpha) = rate`` for the decay rate ``alpha``.

    Requires ``mean_rate < rate < peak_rate``: below the mean the
    source is unstable at that drain rate (no positive root); at or
    above the peak the tail is degenerate (the root is ``+oo``).
    """
    mean = source.mean_rate
    peak = source.peak_rate
    if rate <= mean:
        raise ValidationError(
            f"rate {rate} must exceed the source mean rate {mean}"
        )
    if rate >= peak:
        raise ValidationError(
            f"rate {rate} must be below the source peak rate {peak}; "
            "at or above the peak the burstiness tail is identically 0"
        )

    def gap(theta: float) -> float:
        return math.log(spectral_radius(source, theta)) - theta * rate

    return _solve_decay(gap, tol)


def _solve_decay(gap, tol: float) -> float:
    """Bracket and bisect the positive root of a gap function with
    ``gap(0+) < 0`` and ``gap -> +oo``."""
    # gap(0+) = 0 with negative slope (eb < rate near 0); gap grows
    # positive again beyond the root since eb -> peak > rate.  Bracket
    # by doubling.
    lo = 1e-8
    while gap(lo) >= 0.0:
        lo /= 2.0
        if lo < 1e-300:
            raise NumericalError(
                "failed to bracket the effective-bandwidth root from below"
            )
    hi = 1.0
    while gap(hi) <= 0.0:
        hi *= 2.0
        if hi > 1e6:
            raise NumericalError(
                "failed to bracket the effective-bandwidth root from above"
            )
    return bisect_root(gap, lo, hi, tol=tol)


def total_effective_bandwidth(
    sources: "list[MarkovModulatedSource]", theta: float
) -> float:
    """``sum_i eb_i(theta)`` — the additive effective bandwidth of
    independently multiplexed sources.

    The classic FCFS admission criterion ([EM93], [KWC93]; the paper's
    Section 7 points to it for within-class multiplexing): if
    ``sum_i eb_i(theta) <= c`` the aggregate queue drained at ``c``
    has tail decay at least ``theta``.
    """
    if not sources:
        raise ValidationError("need at least one source")
    return sum(effective_bandwidth(s, theta) for s in sources)


def eb_admissible(
    sources: "list[MarkovModulatedSource]",
    service_rate: float,
    theta: float,
) -> bool:
    """Effective-bandwidth admission test for an FCFS multiplexer.

    True when ``sum_i eb_i(theta) <= service_rate``, which guarantees
    the aggregate backlog tail decays at rate at least ``theta``.
    """
    check_positive("service_rate", service_rate)
    return total_effective_bandwidth(sources, theta) <= service_rate
