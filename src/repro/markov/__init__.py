"""Markov-modulated source analysis: effective bandwidths and
LNT94/BD94 exponential bounds used in the Section 6.3 example."""

from repro.markov.chain import DTMC, perron_pair
from repro.markov.effective_bandwidth import (
    decay_rate_for_rate,
    eb_admissible,
    effective_bandwidth,
    spectral_radius,
    total_effective_bandwidth,
)
from repro.markov.exact_queue import (
    ExactQueueDistribution,
    exact_queue_distribution,
)
from repro.markov.fitting import MMSFit, OnOffFit, fit_mms, fit_onoff
from repro.markov.lnt94 import (
    delay_tail_bound,
    ebb_characterization,
    ebb_prefactor,
    queue_tail_bound,
)
from repro.markov.mmpp import MarkovModulatedSource
from repro.markov.onoff import OnOffSource

__all__ = [
    "ExactQueueDistribution",
    "exact_queue_distribution",
    "MMSFit",
    "OnOffFit",
    "fit_mms",
    "fit_onoff",
    "DTMC",
    "perron_pair",
    "decay_rate_for_rate",
    "eb_admissible",
    "effective_bandwidth",
    "total_effective_bandwidth",
    "spectral_radius",
    "delay_tail_bound",
    "ebb_characterization",
    "ebb_prefactor",
    "queue_tail_bound",
    "MarkovModulatedSource",
    "OnOffSource",
]
