"""Fit Markov source models to discrete-time traces.

The analysis pipeline starts from a source *model* (Section 6.3 assumes
the on-off parameters are known).  In practice one has measurements;
this module closes the gap by estimating the on-off parameters from a
trace, so that traces can be pushed through the same LNT94 machinery
(effective bandwidth -> Table 2-style characterization -> bounds).

The estimator is the maximum-likelihood estimator for a two-state
chain observed directly: the peak rate is the maximum positive slot
value, a slot is "on" when it carries traffic, and the transition
probabilities are the empirical transition frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.markov.chain import DTMC
from repro.markov.mmpp import MarkovModulatedSource
from repro.markov.onoff import OnOffSource

from repro.errors import ValidationError

__all__ = ["OnOffFit", "fit_onoff", "MMSFit", "fit_mms"]


@dataclass(frozen=True)
class OnOffFit:
    """Result of :func:`fit_onoff`.

    Attributes
    ----------
    model:
        The fitted on-off source.
    on_fraction:
        Empirical fraction of on slots (compare with
        ``model.on_probability``).
    num_transitions:
        Number of observed state transitions (a quality signal: few
        transitions mean poorly determined p, q).
    """

    model: OnOffSource
    on_fraction: float
    num_transitions: int


def fit_onoff(increments: np.ndarray, *, tol: float = 1e-9) -> OnOffFit:
    """Maximum-likelihood on-off fit of a discrete-time trace.

    Raises
    ------
    ValueError
        If the trace is shorter than 2 slots, never turns on, never
        turns off, or carries more than one distinct positive rate
        (plus ``tol`` noise) — in that case it is not an on-off sample
        path and a general Markov-modulated fit should be used.
    """
    arr = np.asarray(increments, dtype=float)
    if arr.size < 2:
        raise ValidationError("need at least 2 slots to fit transitions")
    if np.any(arr < -tol):
        raise ValidationError("arrivals must be non-negative")
    on = arr > tol
    if not on.any():
        raise ValidationError("trace never turns on; no on-off model fits")
    if on.all():
        raise ValidationError(
            "trace never turns off; use a CBR model instead"
        )
    positive = arr[on]
    peak = float(positive.max())
    if float(positive.min()) < peak * (1.0 - 1e-6):
        raise ValidationError(
            "trace carries multiple positive rates; it is not a "
            "two-state on-off sample path"
        )
    # Transition counts.
    prev_on = on[:-1]
    next_on = on[1:]
    off_slots = int((~prev_on).sum())
    on_slots = int(prev_on.sum())
    off_to_on = int((~prev_on & next_on).sum())
    on_to_off = int((prev_on & ~next_on).sum())
    if off_slots == 0 or on_slots == 0:
        raise ValidationError("degenerate trace: a state is never revisited")
    p = off_to_on / off_slots
    q = on_to_off / on_slots
    # Clamp away from the degenerate boundary (a finite trace can
    # produce an exact 0/1 frequency).
    n = arr.size
    p = min(max(p, 1.0 / (2 * n)), 1.0 - 1.0 / (2 * n))
    q = min(max(q, 1.0 / (2 * n)), 1.0 - 1.0 / (2 * n))
    return OnOffFit(
        model=OnOffSource(p, q, peak),
        on_fraction=float(on.mean()),
        num_transitions=off_to_on + on_to_off,
    )


@dataclass(frozen=True)
class MMSFit:
    """Result of :func:`fit_mms`.

    Attributes
    ----------
    model:
        The fitted Markov-modulated source.
    level_edges:
        Rate-quantization bin edges used to define the states.
    occupancy:
        Empirical fraction of slots spent in each state.
    """

    model: MarkovModulatedSource
    level_edges: np.ndarray
    occupancy: np.ndarray = field(default_factory=lambda: np.array([]))


def fit_mms(
    increments: np.ndarray,
    num_states: int,
    *,
    smoothing: float = 0.5,
) -> MMSFit:
    """Fit a ``num_states``-state Markov-modulated model to a trace.

    The per-slot rates are quantized into ``num_states`` equal-count
    bins (quantile edges); each bin becomes a state whose emission rate
    is the bin's empirical mean, and the transition matrix is the
    (Laplace-smoothed) empirical transition-frequency matrix of the
    state sequence.  This is the standard histogram/quantile MMP fit —
    crude but effective for feeding the effective-bandwidth machinery
    with measured traffic.
    """
    arr = np.asarray(increments, dtype=float)
    if arr.size < 10 * num_states:
        raise ValidationError(
            f"need at least {10 * num_states} slots to fit "
            f"{num_states} states"
        )
    if num_states < 2:
        raise ValidationError(f"num_states must be >= 2, got {num_states}")
    if smoothing <= 0.0:
        raise ValidationError(
            f"smoothing must be positive (irreducibility), got "
            f"{smoothing}"
        )
    if float(arr.max()) - float(arr.min()) <= 1e-12:
        raise ValidationError(
            "trace has too little rate variation to define multiple "
            "states; use fit_onoff or a CBR model"
        )
    quantiles = np.linspace(0.0, 1.0, num_states + 1)[1:-1]
    inner_edges = np.quantile(arr, quantiles)
    edges = np.concatenate(
        ([-np.inf], np.unique(inner_edges), [np.inf])
    )
    actual_states = edges.size - 1
    if actual_states < 2:
        raise ValidationError(
            "trace has too little rate variation to define multiple "
            "states; use fit_onoff or a CBR model"
        )
    states = np.clip(
        np.searchsorted(edges, arr, side="right") - 1,
        0,
        actual_states - 1,
    )
    rates = np.array(
        [
            float(arr[states == s].mean())
            if (states == s).any()
            else 0.0
            for s in range(actual_states)
        ]
    )
    counts = np.full((actual_states, actual_states), smoothing)
    np.add.at(counts, (states[:-1], states[1:]), 1.0)
    transition = counts / counts.sum(axis=1, keepdims=True)
    occupancy = np.array(
        [float((states == s).mean()) for s in range(actual_states)]
    )
    # Guard against duplicate emission rates (constant sub-bins):
    # nudge ties apart by a negligible epsilon so the MMS accepts them.
    for s in range(1, actual_states):
        if rates[s] <= rates[s - 1]:
            rates[s] = rates[s - 1] + 1e-12
    model = MarkovModulatedSource(DTMC(transition), rates)
    return MMSFit(
        model=model,
        level_edges=edges,
        occupancy=occupancy,
    )
