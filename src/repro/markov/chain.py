"""Discrete-time Markov chain utilities.

The Section 6.3 example models each source as a discrete-time two-state
on-off Markov process; the LNT94-style bounds it cites apply to general
finite Markov-modulated sources.  This module supplies the chain-level
machinery those bounds need: validation, stationary distributions,
time reversal and Perron (largest-eigenvalue) pairs of non-negative
matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ValidationError

__all__ = ["DTMC", "perron_pair"]

_TOL = 1e-10


@dataclass(frozen=True)
class DTMC:
    """A finite, irreducible discrete-time Markov chain.

    Attributes
    ----------
    transition:
        Row-stochastic transition matrix ``P`` with ``P[x, y] =
        Pr{X_{t+1} = y | X_t = x}``.
    """

    transition: np.ndarray

    def __init__(self, transition: np.ndarray) -> None:
        matrix = np.asarray(transition, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(
                f"transition matrix must be square, got shape {matrix.shape}"
            )
        if np.any(matrix < -_TOL):
            raise ValidationError("transition probabilities must be non-negative")
        row_sums = matrix.sum(axis=1)
        if np.any(np.abs(row_sums - 1.0) > 1e-8):
            raise ValidationError(
                f"transition matrix rows must sum to 1, got {row_sums}"
            )
        matrix = np.clip(matrix, 0.0, None)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        matrix.setflags(write=False)
        object.__setattr__(self, "transition", matrix)
        if not self._is_irreducible():
            raise ValidationError("transition matrix must be irreducible")

    def _is_irreducible(self) -> bool:
        graph = nx.DiGraph()
        n = self.num_states
        graph.add_nodes_from(range(n))
        rows, cols = np.nonzero(self.transition > 0.0)
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return nx.is_strongly_connected(graph)

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return self.transition.shape[0]

    def stationary_distribution(self) -> np.ndarray:
        """The unique stationary distribution ``pi`` with ``pi P = pi``.

        Solved as a linear system (replace one balance equation by the
        normalization constraint), which is robust for the small chains
        used here.
        """
        n = self.num_states
        system = np.vstack(
            [self.transition.T - np.eye(n), np.ones((1, n))]
        )
        rhs = np.zeros(n + 1)
        rhs[-1] = 1.0
        pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def reversed_chain(self) -> "DTMC":
        """The time-reversed chain ``P~[x, y] = pi_y P[y, x] / pi_x``.

        Stationary queue-length distributions are suprema over the
        *reversed* arrival process; for reversible chains (all two-state
        chains are) the reversal is the chain itself.
        """
        pi = self.stationary_distribution()
        reversed_matrix = (self.transition.T * pi[None, :]) / pi[:, None]
        return DTMC(reversed_matrix)

    def is_reversible(self, *, tol: float = 1e-9) -> bool:
        """Detailed-balance check ``pi_x P[x,y] = pi_y P[y,x]``."""
        pi = self.stationary_distribution()
        flux = pi[:, None] * self.transition
        return bool(np.allclose(flux, flux.T, atol=tol))


def perron_pair(matrix: np.ndarray) -> tuple[float, np.ndarray]:
    """Largest eigenvalue and positive right eigenvector of a
    non-negative irreducible matrix.

    Returns ``(z, h)`` with ``M h = z h``, ``h > 0`` normalized to
    ``max(h) = 1``.  Uses dense eigendecomposition (the chains here are
    tiny) with a sign fix-up for the eigenvector.
    """
    m = np.asarray(matrix, dtype=float)
    if np.any(m < 0.0):
        raise ValidationError("Perron theory requires a non-negative matrix")
    eigenvalues, eigenvectors = np.linalg.eig(m)
    index = int(np.argmax(eigenvalues.real))
    z = float(eigenvalues[index].real)
    h = eigenvectors[:, index].real
    # The Perron vector has constant sign; flip if needed.
    if h.sum() < 0.0:
        h = -h
    if np.any(h <= 0.0):
        # Numerical noise can produce tiny negatives for near-reducible
        # matrices; clamp and renormalize.
        h = np.clip(h, 1e-300, None)
    return z, h / h.max()
