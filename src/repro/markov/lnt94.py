"""LNT94 / BD94-style exponential bounds for Markov-modulated sources.

The Section 6.3 example obtains its E.B.B. characterizations "using the
results for discrete time two-state on-off Markov processes in
[LNT94]", and its improved Figure 4 curves by bounding the virtual
backlog ``delta_i(t)`` directly with the same machinery.  This module
implements both, for general finite Markov-modulated sources:

* :func:`ebb_characterization` — given an upper rate ``rho`` strictly
  between the mean and peak rates, the decay rate ``alpha`` solving
  ``eb(alpha) = rho`` and a rigorous prefactor
  ``Lambda = sup_t E[e^{alpha A(0,t)}] e^{-alpha rho t}``
  (finite because the supremum converges to the Perron projection).
* :func:`queue_tail_bound` — the Buffet-Duffield [BD94] martingale
  bound on the stationary queue fed by the source and drained at a
  constant rate ``c``:
  ``Pr{Q >= x} <= (pi . h / min h) e^{-alpha x}`` with ``h`` the Perron
  right eigenvector of the *time-reversed* MGF kernel at the root
  ``alpha`` of ``eb(alpha) = c``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ebb import EB, EBB
from repro.markov.chain import perron_pair
from repro.markov.effective_bandwidth import decay_rate_for_rate
from repro.markov.mmpp import MarkovModulatedSource
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = [
    "ebb_prefactor",
    "ebb_characterization",
    "queue_tail_bound",
    "delay_tail_bound",
]

#: Iteration cap for the prefactor supremum; the sequence converges
#: geometrically at rate |z_2 / z_1| so this is far more than enough.
_MAX_HORIZON = 200_000
_CONVERGENCE_WINDOW = 64
_CONVERGENCE_TOL = 1e-12


def ebb_prefactor(
    source: MarkovModulatedSource, rho: float, alpha: float
) -> float:
    """``sup_{t >= 1} E[e^{alpha A(0, t)}] e^{-alpha rho t}``.

    At ``alpha`` solving ``eb(alpha) = rho`` the scaled kernel has
    spectral radius 1 and the terms converge to the Perron projection
    constant ``(pi D h)(v . 1)`` (with ``h``/``v`` the right/left
    Perron eigenvectors normalized to ``v . h = 1``).  The supremum is
    therefore ``max(limit, max over a finite transient)``; computing
    the limit spectrally avoids the arbitrarily slow convergence that
    plagues pure iteration when ``alpha`` is tiny (``rho`` near the
    mean rate).
    """
    check_positive("rho", rho)
    check_positive("alpha", alpha)
    pi = source.chain.stationary_distribution()
    kernel = source.mgf_kernel(alpha) * math.exp(-alpha * rho)
    diag = np.exp(alpha * source.rates) * math.exp(-alpha * rho)
    start = pi * diag  # term for t = 1
    # Perron projection limit.
    z, h = perron_pair(kernel)
    eigenvalues, left_vectors = np.linalg.eig(kernel.T)
    left = left_vectors[:, int(np.argmax(eigenvalues.real))].real
    left = left / float(left @ h)
    limit = float(start @ h) * float(left.sum())
    if z > 1.0 + 1e-9:
        raise ValidationError(
            f"scaled kernel has spectral radius {z} > 1: eb(alpha) "
            "exceeds rho, the supremum diverges"
        )
    at_criticality = z >= 1.0 - 1e-9
    best = float(start.sum())
    vec = start
    for _ in range(_MAX_HORIZON):
        vec = vec @ kernel
        term = float(vec.sum())
        if term > best:
            best = term
        if at_criticality:
            # terms converge to `limit`; once there, the sup is
            # max(transient max, limit).
            if abs(term - limit) <= _CONVERGENCE_TOL * max(
                limit, 1.0
            ):
                break
        else:
            # subcritical: terms decay like z^t; once negligible the
            # transient max is the sup.
            if term <= _CONVERGENCE_TOL * max(best, 1.0):
                break
    return max(best, limit) if at_criticality else best


def ebb_characterization(
    source: MarkovModulatedSource, rho: float
) -> EBB:
    """The ``(rho, Lambda, alpha)``-E.B.B. characterization of a source.

    ``alpha`` is the effective-bandwidth root ``eb(alpha) = rho``;
    ``Lambda`` is the exact supremum prefactor, which makes the
    resulting characterization a *valid* E.B.B. bound:

        Pr{A(tau,t) >= rho (t - tau) + x}
            <= E[e^{alpha A(0, t-tau)}] e^{-alpha rho (t-tau)} e^{-alpha x}
            <= Lambda e^{-alpha x}.

    This is the construction behind Table 2.
    """
    alpha = decay_rate_for_rate(source, rho)
    prefactor = ebb_prefactor(source, rho, alpha)
    return EBB(rho, prefactor, alpha)


def queue_tail_bound(
    source: MarkovModulatedSource, service_rate: float
) -> EB:
    """Martingale bound on the stationary queue at constant drain rate.

    For the queue ``Q_t = max(Q_{t-1} + a_t - c, 0)`` fed by the source
    and drained at ``c`` (mean < c < peak),

        Pr{Q >= x} <= (pi . h / min h) e^{-alpha x},

    where ``alpha`` solves ``eb(alpha) = c`` and ``h`` is the Perron
    right eigenvector (normalized to ``max h = 1``) of the time-reversed
    kernel ``P~ D(alpha)``.  The stationary queue is the all-time
    supremum of the *reversed* arrival random walk, for which
    ``e^{alpha(A~(0,k) - ck)} h(X~_k)`` is a non-negative martingale;
    the optional stopping theorem yields the prefactor.

    This is the direct bound on ``delta_i(t)`` used for the improved
    (Figure 4) curves, with ``c = g_i``.

    When ``c >= peak`` the queue is identically zero (every slot's
    arrival is at most the drain), so the degenerate zero-prefactor
    bound is returned.
    """
    if service_rate >= source.peak_rate:
        return EB(0.0, 1.0)
    alpha = decay_rate_for_rate(source, service_rate)
    reversed_source = source.reversed_source()
    _, h = perron_pair(reversed_source.mgf_kernel(alpha))
    pi = reversed_source.chain.stationary_distribution()
    prefactor = float(pi @ h) / float(h.min())
    return EB(prefactor, alpha)


def delay_tail_bound(
    source: MarkovModulatedSource,
    service_rate: float,
) -> EB:
    """Delay version of :func:`queue_tail_bound`.

    With FCFS service within the session at guaranteed rate ``c``,
    ``D = Q / c`` so ``Pr{D >= d} <= Lambda e^{-alpha c d}``.
    """
    queue = queue_tail_bound(source, service_rate)
    return EB(queue.prefactor, queue.decay_rate * service_rate)
