"""Exact stationary queue distribution for lattice-compatible sources.

For a discrete-time Markov-modulated source drained at a constant rate
``c``, the queue follows the Lindley recursion

    Q_{t+1} = max(Q_t + rate(X_{t+1}) - c, 0).

When every per-slot increment ``rate(s) - c`` is an integer multiple of
a common lattice step, the pair ``(X_t, Q_t)`` is a Markov chain on a
countable lattice; truncating at a high level and solving for the
stationary distribution gives the queue law *exactly* (up to the
truncation tail, which decays geometrically).  This provides ground
truth against which the LNT94/BD94 exponential bounds are verified:
the bound must dominate the exact tail everywhere, and its decay rate
must match the exact geometric decay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.markov.mmpp import MarkovModulatedSource
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = ["ExactQueueDistribution", "exact_queue_distribution"]


@dataclass(frozen=True)
class ExactQueueDistribution:
    """The stationary queue law on a lattice.

    Attributes
    ----------
    step:
        Lattice step: the queue lives on ``{0, step, 2 step, ...}``.
    probabilities:
        ``probabilities[k] = Pr{Q = k * step}`` (marginalized over the
        modulating state).
    truncation_mass:
        Stationary probability assigned to the truncation boundary —
        must be tiny for the solution to be trusted.
    """

    step: float
    probabilities: np.ndarray
    truncation_mass: float

    #: Probabilities below this level are double-precision solver
    #: noise and must not be trusted.
    RELIABLE_FLOOR = 1e-12

    def ccdf(self, x: float) -> float:
        """Exact ``Pr{Q >= x}`` (reliable down to
        :attr:`RELIABLE_FLOOR`)."""
        if x <= 0.0:
            return 1.0
        k = int(math.ceil(x / self.step - 1e-9))
        if k >= self.probabilities.size:
            return 0.0
        return float(self.probabilities[k:].sum())

    def mean(self) -> float:
        """Exact mean queue length."""
        levels = np.arange(self.probabilities.size) * self.step
        return float(levels @ self.probabilities)

    def decay_rate(self) -> float:
        """Exact asymptotic decay rate of the queue tail.

        Measured on the CCDF (point masses can oscillate with lattice
        parity) over the probability window (1e-10, 1e-4): geometric
        regime reached, yet comfortably above the ~1e-13 numerical
        floor of the sparse direct solve.
        """
        tail = np.cumsum(self.probabilities[::-1])[::-1]
        usable = np.flatnonzero((tail < 1e-4) & (tail > 1e-10))
        if usable.size < 4:
            raise ValidationError(
                "tail window too short to measure a decay rate; "
                "increase max_levels"
            )
        k0, k1 = usable[0], usable[-1]
        slope = (math.log(tail[k1]) - math.log(tail[k0])) / (
            (k1 - k0) * self.step
        )
        return -slope


def _lattice_step(values: list[float], *, tol: float = 1e-9) -> float:
    """Greatest common lattice step of a set of reals (via rational
    approximation), or raise if they are incommensurable."""
    nonzero = [abs(v) for v in values if abs(v) > tol]
    if not nonzero:
        raise ValidationError("all increments are zero; queue is trivial")
    # Rational approximation with a bounded denominator.
    from fractions import Fraction

    fractions = [
        Fraction(v).limit_denominator(10_000) for v in nonzero
    ]
    for fraction, value in zip(fractions, nonzero):
        if abs(float(fraction) - value) > tol:
            raise ValidationError(
                f"increment {value} is not commensurable with a "
                "reasonable lattice; exact solution unavailable"
            )
    common = fractions[0]
    for fraction in fractions[1:]:
        common = Fraction(
            math.gcd(common.numerator * fraction.denominator,
                     fraction.numerator * common.denominator),
            common.denominator * fraction.denominator,
        )
    step = float(common)
    if step <= tol:
        raise ValidationError("degenerate lattice step")
    return step


def exact_queue_distribution(
    source: MarkovModulatedSource,
    service_rate: float,
    *,
    max_levels: int = 4000,
) -> ExactQueueDistribution:
    """Solve the stationary (state, queue) chain exactly.

    Requires stability (``mean rate < service_rate``) and lattice
    compatibility of the increments ``rate(s) - c``.  The chain is
    truncated at ``max_levels`` lattice points with a reflecting
    boundary; the reported ``truncation_mass`` quantifies the error.
    """
    check_positive("service_rate", service_rate)
    if source.mean_rate >= service_rate:
        raise ValidationError(
            f"unstable queue: mean rate {source.mean_rate} >= service "
            f"rate {service_rate}"
        )
    increments = [float(r) - service_rate for r in source.rates]
    step = _lattice_step(increments)
    jumps = [int(round(inc / step)) for inc in increments]
    num_states = source.num_states
    transition = source.chain.transition

    size = num_states * max_levels

    def index(state: int, level: int) -> int:
        return state * max_levels + level

    # Build the sparse transition structure column-wise via lists.
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for state in range(num_states):
        for level in range(max_levels):
            for next_state in range(num_states):
                p = transition[state, next_state]
                if p <= 0.0:
                    continue
                next_level = level + jumps[next_state]
                next_level = min(max(next_level, 0), max_levels - 1)
                rows.append(index(state, level))
                cols.append(index(next_state, next_level))
                vals.append(float(p))
    from scipy import sparse
    from scipy.sparse.linalg import spsolve

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(size, size)
    )
    # Direct sparse solve of pi (M - I) = 0 with a normalization row:
    # power iteration converges far too slowly in the deep tail (the
    # components at 1e-30 keep their initial values long after the
    # bulk has converged), and it is exactly the deep tail we need.
    system = (matrix.T - sparse.identity(size)).tolil()
    system[-1, :] = 1.0
    rhs = np.zeros(size)
    rhs[-1] = 1.0
    pi = spsolve(system.tocsc(), rhs)
    pi = np.clip(pi, 0.0, None)
    pi /= pi.sum()
    queue_marginal = pi.reshape(num_states, max_levels).sum(axis=0)
    truncation_mass = float(queue_marginal[-1])
    return ExactQueueDistribution(
        step=step,
        probabilities=queue_marginal,
        truncation_mass=truncation_mass,
    )
