"""General discrete-time Markov-modulated fluid sources.

A :class:`MarkovModulatedSource` emits ``rate[x]`` units of traffic in
each slot the modulating chain spends in state ``x``.  This is the
source class for which LNT94-type exponential bounds are available; the
two-state on-off source of the paper's numerical example is the special
case in :mod:`repro.markov.onoff`.

Convention: the chain is stationary, the arrival in slot ``t`` is
``rate[X_t]``, and ``A(0, t) = sum_{s=1}^{t} rate[X_s]``; the MGF is

    E[exp(theta A(0, t))] = pi D (P D)^{t-1} 1,   D = diag(e^{theta rate}).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.chain import DTMC

from repro.errors import ValidationError

__all__ = ["MarkovModulatedSource"]


@dataclass(frozen=True)
class MarkovModulatedSource:
    """A stationary Markov-modulated fluid source.

    Attributes
    ----------
    chain:
        The modulating :class:`DTMC`.
    rates:
        Per-state emission rates (non-negative), one per chain state.
    """

    chain: DTMC
    rates: np.ndarray

    def __init__(self, chain: DTMC, rates) -> None:
        rate_array = np.asarray(rates, dtype=float)
        if rate_array.ndim != 1 or rate_array.size != chain.num_states:
            raise ValidationError(
                f"need one rate per state ({chain.num_states}), got "
                f"shape {rate_array.shape}"
            )
        if np.any(rate_array < 0.0):
            raise ValidationError("per-state rates must be non-negative")
        if np.ptp(rate_array) == 0.0:
            raise ValidationError(
                "constant-rate source has no burstiness; use a CBR "
                "source instead"
            )
        rate_array.setflags(write=False)
        object.__setattr__(self, "chain", chain)
        object.__setattr__(self, "rates", rate_array)

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of modulating states."""
        return self.chain.num_states

    @property
    def mean_rate(self) -> float:
        """Long-run average emission rate ``sum_x pi_x rate_x``."""
        pi = self.chain.stationary_distribution()
        return float(pi @ self.rates)

    @property
    def peak_rate(self) -> float:
        """Largest per-state rate."""
        return float(self.rates.max())

    # ------------------------------------------------------------------
    def mgf_kernel(self, theta: float) -> np.ndarray:
        """The kernel ``M(theta) = P D(theta)``, ``D = diag(e^{theta r})``.

        Its spectral radius governs the exponential growth of the
        arrival MGF.
        """
        diag = np.exp(theta * self.rates)
        return self.chain.transition * diag[None, :]

    def log_mgf(self, theta: float, duration: int) -> float:
        """Exact ``ln E[exp(theta A(0, duration))]`` (stationary start)."""
        if duration < 0:
            raise ValidationError(f"duration must be >= 0, got {duration}")
        if duration == 0:
            return 0.0
        pi = self.chain.stationary_distribution()
        diag = np.exp(theta * self.rates)
        vec = pi * diag
        kernel = self.mgf_kernel(theta)
        # Work in scaled space to avoid overflow for long durations.
        log_scale = 0.0
        for _ in range(duration - 1):
            vec = vec @ kernel
            norm = vec.sum()
            vec = vec / norm
            log_scale += np.log(norm)
        return float(log_scale + np.log(vec.sum()))

    def reversed_source(self) -> "MarkovModulatedSource":
        """The source driven by the time-reversed modulating chain."""
        return MarkovModulatedSource(self.chain.reversed_chain(), self.rates)
