"""Numeric helpers: robust root finding, overflow-safe exponentials.

The bound expressions in the paper are built from terms of the form
``exp(theta * sigma) / (1 - exp(-theta * eps))``.  For large ``theta * x``
the naive evaluation overflows, and for tiny ``theta * eps`` the
denominator loses precision.  The helpers here keep every evaluation in
log space until the last moment.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import NumericalError, ValidationError

__all__ = [
    "safe_exp",
    "log1mexp",
    "expm1_neg",
    "logsumexp_pair",
    "geometric_tail_factor",
    "bisect_root",
    "minimize_scalar_bounded",
]

#: Largest argument for which ``math.exp`` does not overflow a double.
_EXP_MAX = 700.0


def safe_exp(x: float) -> float:
    """Return ``exp(x)``, saturating at ``inf``/``0`` instead of raising."""
    if x > _EXP_MAX:
        return math.inf
    if x < -_EXP_MAX:
        return 0.0
    return math.exp(x)


def log1mexp(x: float) -> float:
    """Return ``log(1 - exp(-x))`` accurately for ``x > 0``.

    Uses the standard two-branch trick (Maechler 2012): for small ``x``
    use ``log(-expm1(-x))``; for large ``x`` use ``log1p(-exp(-x))``.
    """
    if x <= 0.0:
        raise ValidationError(f"log1mexp requires x > 0, got {x}")
    if x <= math.log(2.0):
        return math.log(-math.expm1(-x))
    return math.log1p(-math.exp(-x))


def expm1_neg(x: float) -> float:
    """Return ``1 - exp(-x)`` accurately for ``x >= 0``."""
    if x < 0.0:
        raise ValidationError(f"expm1_neg requires x >= 0, got {x}")
    return -math.expm1(-x)


def logsumexp_pair(a: float, b: float) -> float:
    """Return ``log(exp(a) + exp(b))`` without overflow."""
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log1p(math.exp(lo - hi))


def geometric_tail_factor(decay: float) -> float:
    """Return ``1 / (1 - exp(-decay))`` for ``decay > 0``.

    This is the sum of the geometric series ``sum_{k>=0} exp(-k*decay)``
    that appears in every discretized supremum bound (Lemmas 5 and 6).

    Raises
    ------
    NumericalError
        If ``decay`` is so small that the factor overflows a double
        (``decay`` below roughly ``1e-308``).  Silently returning
        ``inf`` would poison every bound prefactor built from it.
    """
    if decay <= 0.0:
        raise ValidationError(
            f"geometric tail requires decay > 0, got {decay}"
        )
    denominator = expm1_neg(decay)
    if denominator <= 0.0:
        raise NumericalError(
            f"geometric tail factor: 1 - exp(-decay) underflowed to 0 "
            f"for decay={decay}"
        )
    factor = 1.0 / denominator
    if not math.isfinite(factor):
        raise NumericalError(
            f"geometric tail factor overflowed for decay={decay}: "
            "the discretization is too fine to represent in a double"
        )
    return factor


def bisect_root(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find a root of ``func`` in ``[lo, hi]`` by bisection.

    ``func(lo)`` and ``func(hi)`` must have opposite signs.  Bisection is
    preferred over Newton here because the effective-bandwidth equations
    we solve are smooth but their derivatives are awkward near zero.

    Raises
    ------
    NumericalError
        If the endpoints do not bracket a root, or the interval fails
        to shrink below ``tol`` within ``max_iter`` iterations.
    """
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0.0:
        raise NumericalError(
            f"bisect_root: func({lo})={f_lo} and func({hi})={f_hi} "
            "do not bracket a root"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if f_mid == 0.0 or (hi - lo) < tol * max(1.0, abs(mid)):
            return mid
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    raise NumericalError(
        f"bisect_root did not converge in {max_iter} iterations: "
        f"interval [{lo}, {hi}] is still wider than tol={tol}"
    )


def minimize_scalar_bounded(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> tuple[float, float]:
    """Minimize a unimodal scalar function on ``[lo, hi]``.

    Returns ``(argmin, min_value)`` found by golden-section search.  Used
    to optimize the Chernoff exponent ``theta`` and the discretization
    parameter ``xi`` in the bound prefactors.
    """
    if not lo < hi:
        raise ValidationError(f"need lo < hi, got [{lo}, {hi}]")
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    f_c = func(c)
    f_d = func(d)
    for _ in range(max_iter):
        if (b - a) < tol * max(1.0, abs(a) + abs(b)):
            break
        if f_c < f_d:
            b, d, f_d = d, c, f_c
            c = b - inv_phi * (b - a)
            f_c = func(c)
        else:
            a, c, f_c = c, d, f_d
            d = a + inv_phi * (b - a)
            f_d = func(d)
    x = 0.5 * (a + b)
    return x, func(x)
