"""Argument-validation helpers.

All public constructors in the library validate their inputs eagerly and
raise :class:`repro.errors.ValidationError` (a ``ValueError`` subclass)
with a message naming the offending parameter, so that a mis-specified
session or GPS assignment fails at construction time rather than deep
inside a bound computation.
"""

from __future__ import annotations

import math
from typing import Sequence, Sized

from repro.errors import ValidationError

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_open_interval",
    "check_same_length",
    "check_finite",
]


def check_positive(name: str, value: float) -> float:
    """Raise :class:`ValidationError` unless ``value`` is finite and > 0."""
    if not math.isfinite(value) or value <= 0.0:
        raise ValidationError(
            f"{name} must be finite and positive, got {value}"
        )
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Raise :class:`ValidationError` unless ``value`` is finite and >= 0."""
    if not math.isfinite(value) or value < 0.0:
        raise ValidationError(
            f"{name} must be finite and non-negative, got {value}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Raise :class:`ValidationError` unless ``value`` lies in ``[0, 1]``."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(
            f"{name} must be a probability in [0, 1], got {value}"
        )
    return value


def check_in_open_interval(
    name: str, value: float, lo: float, hi: float
) -> float:
    """Raise :class:`ValidationError` unless ``lo < value < hi``."""
    if not math.isfinite(value) or not lo < value < hi:
        raise ValidationError(f"{name} must lie in ({lo}, {hi}), got {value}")
    return value


def check_finite(name: str, value: float) -> float:
    """Raise :class:`ValidationError` unless ``value`` is finite."""
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    return value


def check_same_length(name_a: str, a: Sized, name_b: str, b: Sized) -> None:
    """Raise :class:`ValidationError` unless two sequences have equal length."""
    if len(a) != len(b):
        raise ValidationError(
            f"{name_a} (length {len(a)}) and {name_b} (length {len(b)}) "
            "must have the same length"
        )


def check_weights(name: str, weights: Sequence[float]) -> list[float]:
    """Validate a GPS weight vector: non-empty, all entries positive."""
    if len(weights) == 0:
        raise ValidationError(f"{name} must be non-empty")
    out = []
    for k, w in enumerate(weights):
        check_positive(f"{name}[{k}]", w)
        out.append(float(w))
    return out
