"""Shared numeric, validation and retry utilities used across the library."""

from repro.utils.numeric import (
    bisect_root,
    expm1_neg,
    geometric_tail_factor,
    log1mexp,
    logsumexp_pair,
    minimize_scalar_bounded,
    safe_exp,
)
from repro.utils.retry import RetryPolicy, retry_seed
from repro.utils.validation import (
    check_in_open_interval,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "RetryPolicy",
    "retry_seed",
    "bisect_root",
    "expm1_neg",
    "geometric_tail_factor",
    "log1mexp",
    "logsumexp_pair",
    "minimize_scalar_bounded",
    "safe_exp",
    "check_in_open_interval",
    "check_positive",
    "check_probability",
    "check_same_length",
]
