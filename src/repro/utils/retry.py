"""Deterministic retry/backoff policy shared by the supervision layers.

Both supervisors in the library retry failed work with exponential
backoff: :class:`repro.experiments.supervisor.SupervisedRunner` retries
Monte-Carlo trials, and the shard supervisor of
:mod:`repro.online.cluster` restarts crashed shards.  The policy lives
here once so the two agree on semantics:

* attempt ``a`` (0-based) waits ``min(cap, base * 2**a)`` before the
  next try — classic bounded exponential backoff;
* optional *deterministic* jitter: the multiplier ``1 + jitter * U`` is
  drawn from a :class:`numpy.random.SeedSequence` keyed by
  ``(seed, key, attempt)``, so two runs with the same seed produce the
  same delays (reproducible campaigns, reproducible chaos tests) while
  different keys (trials, shards) still decorrelate;
* a bounded attempt budget: :meth:`RetryPolicy.retryable` says whether
  another attempt is allowed after ``attempt`` failures.

The policy is unit-agnostic — the supervised runner feeds the delay to
``time.sleep`` (seconds), the shard supervisor counts ingest ticks —
and holds no state, so one frozen instance serves any number of
concurrently retried keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["RetryPolicy", "retry_seed"]


def retry_seed(seed: int, key: int, attempt: int) -> int:
    """Deterministic RNG seed for one retry attempt of one key.

    Derived through ``numpy.random.SeedSequence`` spawn keys — the same
    derivation :func:`repro.experiments.supervisor.trial_seed` uses for
    trial seeding — so delays for different keys (and different
    attempts of one key) are statistically independent yet exactly
    reproducible under a fixed ``seed``.
    """
    if key < 0 or attempt < 0:
        raise ValidationError(
            f"key and attempt must be >= 0, got {key}, {attempt}"
        )
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(key, attempt)
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_retries:
        Extra attempts allowed after the first failure; attempt indices
        ``0 .. max_retries`` are retryable, anything later is not.
    base, cap:
        Attempt ``a`` waits ``min(cap, base * 2**a)`` (before jitter).
    jitter:
        Multiplies the delay by ``1 + jitter * U`` with ``U ~ [0, 1)``
        drawn from a per-``(key, attempt)`` seeded RNG; ``0`` disables
        jitter entirely (the delay sequence is then a pure function of
        ``base``/``cap``).
    seed:
        Entropy for the jitter RNG; fixing it makes every delay of a
        run reproducible.
    """

    max_retries: int = 2
    base: float = 0.1
    cap: float = 5.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base < 0 or self.cap < 0 or self.jitter < 0:
            raise ValidationError("backoff parameters must be >= 0")

    def retryable(self, attempt: int) -> bool:
        """True when another attempt is allowed after ``attempt`` failures.

        ``attempt`` is 0-based: with ``max_retries=2`` the failures at
        attempts 0, 1 and 2 may retry; the failure at attempt 3 (the
        fourth) exhausts the budget.
        """
        return attempt <= self.max_retries

    def delay(self, attempt: int, *, key: int = 0) -> float:
        """Backoff delay after the failure of 0-based ``attempt``.

        The unit is the caller's: seconds for a sleeping supervisor,
        ticks for a simulated one.  ``key`` identifies the retried work
        item (trial index, shard index) so concurrent items draw
        independent jitter.
        """
        if attempt < 0:
            raise ValidationError(
                f"attempt must be >= 0, got {attempt}"
            )
        delay = min(self.cap, self.base * (2.0**attempt))
        if self.jitter > 0.0:
            rng = np.random.default_rng(
                retry_seed(self.seed, key, attempt)
            )
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay

    def delays(self, *, key: int = 0) -> tuple[float, ...]:
        """Every delay of a full retry cycle for ``key`` (diagnostics)."""
        return tuple(
            self.delay(attempt, key=key)
            for attempt in range(self.max_retries + 1)
        )
