"""JSON (de)serialization of network models.

Lets users describe a GPS network in a plain JSON document and analyze
it from the command line (``python -m repro analyze network.json``)
or programmatically, without writing Python for the topology.

Schema::

    {
      "nodes":    [{"name": "a", "rate": 1.0}, ...],
      "sessions": [{"name": "s1",
                    "rho": 0.2, "prefactor": 1.0, "alpha": 1.7,
                    "route": ["a", "b"],
                    "phis": 0.2            # scalar or per-hop list
                   }, ...]
    }

``phis`` may be omitted entirely for an RPPS assignment
(``phi = rho`` at every hop).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.ebb import EBB
from repro.network.topology import Network, NetworkNode, NetworkSession

from repro.errors import ValidationError

__all__ = ["network_from_dict", "network_to_dict", "load_network", "save_network"]


def _require(mapping: Mapping[str, Any], key: str, context: str):
    if key not in mapping:
        raise ValidationError(f"{context}: missing required key {key!r}")
    return mapping[key]


def network_from_dict(document: Mapping[str, Any]) -> Network:
    """Build a :class:`Network` from a schema-conforming mapping."""
    nodes = []
    for entry in _require(document, "nodes", "network document"):
        nodes.append(
            NetworkNode(
                name=str(_require(entry, "name", "node entry")),
                rate=float(_require(entry, "rate", "node entry")),
            )
        )
    sessions = []
    for entry in _require(document, "sessions", "network document"):
        name = str(_require(entry, "name", "session entry"))
        context = f"session {name!r}"
        rho = float(_require(entry, "rho", context))
        arrival = EBB(
            rho,
            float(_require(entry, "prefactor", context)),
            float(_require(entry, "alpha", context)),
        )
        route = [str(n) for n in _require(entry, "route", context)]
        phis = entry.get("phis", rho)
        if isinstance(phis, list):
            phis = [float(p) for p in phis]
        else:
            phis = float(phis)
        sessions.append(
            NetworkSession(
                name=name, arrival=arrival, route=route, phis=phis
            )
        )
    return Network(nodes, sessions)


def network_to_dict(network: Network) -> dict[str, Any]:
    """Serialize a :class:`Network` to the JSON schema."""
    return {
        "nodes": [
            {"name": name, "rate": node.rate}
            for name, node in sorted(network.nodes.items())
        ],
        "sessions": [
            {
                "name": session.name,
                "rho": session.arrival.rho,
                "prefactor": session.arrival.prefactor,
                "alpha": session.arrival.decay_rate,
                "route": list(session.route),
                "phis": list(session.phis),
            }
            for session in network.sessions
        ],
    }


def load_network(path: str | Path) -> Network:
    """Load a network from a JSON file."""
    with open(path) as handle:
        document = json.load(handle)
    return network_from_dict(document)


def save_network(network: Network, path: str | Path) -> None:
    """Write a network to a JSON file."""
    with open(path, "w") as handle:
        json.dump(network_to_dict(network), handle, indent=2)
        handle.write("\n")
