"""Consistent Relative Session Treatment (CRST) assignments (Sec. 6.1).

At each node ``m`` the local GPS assignment induces a feasible
partition ``H^m`` of the sessions present.  A *CRST partition* is a
global ordered partition ``H_1, ..., H_L`` of all sessions that is
consistent with every node's partition; operationally (this is what
Theorem 13's recursive argument uses) consistency means:

    at every node m, if session j sits in a strictly lower node class
    than session i, then j sits in a strictly lower *global* class.

This guarantees that the bound computation for a session of global
class ``l`` at any node only references sessions of global class
``< l``, whose characterizations are already known — so the recursion
over classes is well-founded for *arbitrary* (even cyclic) topologies.

Existence check: build a directed graph with an edge ``j -> i``
whenever some node places ``j`` strictly below ``i``; a CRST partition
exists iff this graph is acyclic, and the global classes are the
longest-path layers.  Sessions that share a class at every common node
may share a global class, which realizes the paper's remark that this
definition is weaker (admits more assignments) than Parekh & Gallager's
"impede"-based one.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.analysis.feasible import FeasiblePartition, feasible_partition
from repro.network.topology import Network

from repro.errors import ValidationError

__all__ = [
    "NotCRSTError",
    "node_partition",
    "CRSTPartition",
    "crst_partition",
]


class NotCRSTError(ValueError):
    """Raised when the network's GPS assignment is not CRST."""


def node_partition(network: Network, node_name: str) -> FeasiblePartition:
    """The feasible partition ``H^m`` induced at one node.

    Built from the *source* upper rates ``rho_i`` (which every GPS hop
    preserves) and the local weights ``phi_i^m``.
    """
    local = network.sessions_at(node_name)
    if not local:
        raise ValidationError(f"no sessions traverse node {node_name!r}")
    return feasible_partition(
        [s.rho for s in local],
        [s.phi_at(node_name) for s in local],
        server_rate=network.nodes[node_name].rate,
    )


@dataclass(frozen=True)
class CRSTPartition:
    """A global CRST partition: ordered classes of session names."""

    classes: tuple[tuple[str, ...], ...]

    def level(self, session_name: str) -> int:
        """0-based global class of a session."""
        for k, members in enumerate(self.classes):
            if session_name in members:
                return k
        raise KeyError(f"no session named {session_name!r}")

    @property
    def num_classes(self) -> int:
        """Number of global classes ``L``."""
        return len(self.classes)

    def ordered_sessions(self) -> list[str]:
        """All sessions, lowest class first."""
        out: list[str] = []
        for members in self.classes:
            out.extend(members)
        return out


def crst_partition(network: Network) -> CRSTPartition:
    """Compute a CRST partition for the network, or raise.

    Raises
    ------
    NotCRSTError
        When two sessions are treated inconsistently — ``i`` strictly
        above ``j`` at one node and strictly below at another — so no
        consistent global partition exists.
    """
    precedence = nx.DiGraph()
    precedence.add_nodes_from(s.name for s in network.sessions)
    for node_name in network.nodes:
        local = network.sessions_at(node_name)
        if not local:
            continue
        local_partition = node_partition(network, node_name)
        for a_index, a in enumerate(local):
            for b_index, b in enumerate(local):
                if local_partition.level(a_index) < local_partition.level(
                    b_index
                ):
                    precedence.add_edge(a.name, b.name)
    if not nx.is_directed_acyclic_graph(precedence):
        cycle = nx.find_cycle(precedence)
        raise NotCRSTError(
            "GPS assignment is not CRST: sessions are treated "
            f"inconsistently along the cycle {cycle}"
        )
    # Longest-path layering: a session's global class is one more than
    # the largest class of any session that must precede it.
    layer: dict[str, int] = {}
    for name in nx.topological_sort(precedence):
        preds = list(precedence.predecessors(name))
        layer[name] = (
            0 if not preds else 1 + max(layer[p] for p in preds)
        )
    num_layers = max(layer.values(), default=0) + 1
    classes = tuple(
        tuple(
            sorted(name for name, lvl in layer.items() if lvl == k)
        )
        for k in range(num_layers)
    )
    return CRSTPartition(classes=classes)
