"""Network model: GPS nodes, sessions and routes (Section 6 setting).

A :class:`Network` is a set of named GPS nodes, each with its own
service rate, and a set of sessions; session ``i`` enters the network
at the first node of its route ``P(i)``, traverses the route in order,
and carries a per-node GPS weight ``phi_i^m``.  The session's source is
an E.B.B. process; since the long-term upper rate ``rho_i`` is
preserved by every GPS hop (Theorems 7/11 give output E.B.B.
characterizations with the same ``rho_i``), per-node stability is the
local condition ``sum_{i in I(m)} rho_i < r^m`` of Theorem 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx

from repro.core.ebb import EBB
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = ["NetworkNode", "NetworkSession", "Network"]


@dataclass(frozen=True)
class NetworkNode:
    """A GPS server in the network."""

    name: str
    rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("node name must be non-empty")
        check_positive("rate", self.rate)


@dataclass(frozen=True)
class NetworkSession:
    """A session: source characterization, route and per-node weights.

    Attributes
    ----------
    name:
        Unique session label.
    arrival:
        E.B.B. characterization of the traffic *entering the network*.
    route:
        Node names in traversal order (``P(i)`` in the paper).
    phis:
        GPS weight at each node of the route, aligned with ``route``.
    """

    name: str
    arrival: EBB
    route: tuple[str, ...]
    phis: tuple[float, ...]

    def __init__(
        self,
        name: str,
        arrival: EBB,
        route: Iterable[str],
        phis: Iterable[float] | float,
    ) -> None:
        route_tuple = tuple(route)
        if not route_tuple:
            raise ValidationError(f"session {name!r} needs a non-empty route")
        if len(set(route_tuple)) != len(route_tuple):
            raise ValidationError(
                f"session {name!r} visits a node twice: {route_tuple}"
            )
        if isinstance(phis, (int, float)):
            phi_tuple = tuple([float(phis)] * len(route_tuple))
        else:
            phi_tuple = tuple(float(p) for p in phis)
        if len(phi_tuple) != len(route_tuple):
            raise ValidationError(
                f"session {name!r}: got {len(phi_tuple)} weights for "
                f"{len(route_tuple)} hops"
            )
        for k, phi in enumerate(phi_tuple):
            check_positive(f"phis[{k}]", phi)
        if not name:
            raise ValidationError("session name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arrival", arrival)
        object.__setattr__(self, "route", route_tuple)
        object.__setattr__(self, "phis", phi_tuple)

    @property
    def rho(self) -> float:
        """The session's long-term upper rate (route-invariant)."""
        return self.arrival.rho

    @property
    def num_hops(self) -> int:
        """Route length ``K_i``."""
        return len(self.route)

    def phi_at(self, node_name: str) -> float:
        """The session's GPS weight at one of its nodes."""
        return self.phis[self.route.index(node_name)]

    def hop_index(self, node_name: str) -> int:
        """0-based position of a node in the route."""
        return self.route.index(node_name)


class Network:
    """A network of GPS servers with validated routes and stability."""

    def __init__(
        self,
        nodes: Iterable[NetworkNode],
        sessions: Iterable[NetworkSession],
    ) -> None:
        node_list = list(nodes)
        names = [n.name for n in node_list]
        if len(set(names)) != len(names):
            raise ValidationError(f"node names must be unique, got {names}")
        self._nodes: Mapping[str, NetworkNode] = {
            n.name: n for n in node_list
        }
        session_list = list(sessions)
        session_names = [s.name for s in session_list]
        if len(set(session_names)) != len(session_names):
            raise ValidationError(
                f"session names must be unique, got {session_names}"
            )
        for session in session_list:
            for node_name in session.route:
                if node_name not in self._nodes:
                    raise ValidationError(
                        f"session {session.name!r} routes through unknown "
                        f"node {node_name!r}"
                    )
        self._sessions = tuple(session_list)
        self._check_stability()

    def _check_stability(self) -> None:
        for node in self._nodes.values():
            load = sum(
                s.rho for s in self._sessions if node.name in s.route
            )
            if load >= node.rate:
                raise ValidationError(
                    f"node {node.name!r} is overloaded: total upper rate "
                    f"{load} >= service rate {node.rate} (Theorem 13 "
                    "requires strict inequality at every node)"
                )

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[str, NetworkNode]:
        """Nodes by name."""
        return dict(self._nodes)

    @property
    def sessions(self) -> tuple[NetworkSession, ...]:
        """All sessions."""
        return self._sessions

    def session(self, name: str) -> NetworkSession:
        """Look up a session by name."""
        for s in self._sessions:
            if s.name == name:
                return s
        raise KeyError(f"no session named {name!r}")

    def sessions_at(self, node_name: str) -> list[NetworkSession]:
        """``I(m)``: the sessions traversing a node."""
        if node_name not in self._nodes:
            raise KeyError(f"no node named {node_name!r}")
        return [s for s in self._sessions if node_name in s.route]

    # ------------------------------------------------------------------
    def guaranteed_rate(self, session_name: str, node_name: str) -> float:
        """``g_i^m = phi_i^m / sum_{j in I(m)} phi_j^m * r^m`` (eq. 60)."""
        session = self.session(session_name)
        total_phi = sum(
            s.phi_at(node_name) for s in self.sessions_at(node_name)
        )
        return (
            session.phi_at(node_name)
            / total_phi
            * self._nodes[node_name].rate
        )

    def network_guaranteed_rate(self, session_name: str) -> float:
        """``g_i^net = min_{m in P(i)} g_i^m`` — the bottleneck rate."""
        session = self.session(session_name)
        return min(
            self.guaranteed_rate(session_name, node) for node in session.route
        )

    def bottleneck_node(self, session_name: str) -> str:
        """The route node attaining ``g_i^net``."""
        session = self.session(session_name)
        return min(
            session.route,
            key=lambda node: self.guaranteed_rate(session_name, node),
        )

    # ------------------------------------------------------------------
    def route_graph(self) -> nx.DiGraph:
        """Directed graph with an edge per consecutive route pair."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        for session in self._sessions:
            for upstream, downstream in zip(
                session.route, session.route[1:]
            ):
                graph.add_edge(upstream, downstream)
        return graph

    def is_feedforward(self) -> bool:
        """True when the route graph is acyclic."""
        return nx.is_directed_acyclic_graph(self.route_graph())

    def is_rpps(self, *, rel_tol: float = 1e-9) -> bool:
        """True when ``phi_i^m = rho_i`` (up to a common factor) at
        every node — the RPPS GPS assignment of Section 6.2."""
        for node_name in self._nodes:
            local = self.sessions_at(node_name)
            if not local:
                continue
            ratios = [s.phi_at(node_name) / s.rho for s in local]
            lo, hi = min(ratios), max(ratios)
            if hi - lo > rel_tol * hi:
                return False
        return True
