"""Topology builders: parametric RPPS network families.

Factories for the network shapes used throughout the GPS literature —
tandems (chains), trees like the paper's Figure 2, and rings (cyclic
route graphs, exercising the arbitrary-topology side of Theorem 13).
All builders produce RPPS assignments (``phi = rho`` everywhere) so the
closed-form Theorem 15 bounds apply, and are used by the
route-independence bench and property tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ebb import EBB
from repro.network.topology import Network, NetworkNode, NetworkSession

from repro.errors import ValidationError

__all__ = ["tandem_network", "tree_network", "ring_network"]


def tandem_network(
    num_hops: int,
    through: EBB,
    cross: EBB,
    *,
    node_rate: float = 1.0,
) -> Network:
    """A chain of ``num_hops`` nodes.

    One *through* session traverses the whole chain; at every node an
    independent *cross* session (same characterization, distinct name)
    enters and leaves.  The through session's bottleneck is identical at
    every hop, making this the canonical testbed for Theorem 15's
    route-length independence.
    """
    if num_hops < 1:
        raise ValidationError(f"num_hops must be >= 1, got {num_hops}")
    nodes = [
        NetworkNode(f"n{k}", node_rate) for k in range(num_hops)
    ]
    sessions = [
        NetworkSession(
            "through",
            through,
            tuple(f"n{k}" for k in range(num_hops)),
            through.rho,
        )
    ]
    for k in range(num_hops):
        sessions.append(
            NetworkSession(
                f"cross{k}", cross, (f"n{k}",), cross.rho
            )
        )
    return Network(nodes, sessions)


def tree_network(
    leaf_sessions: Sequence[Sequence[EBB]],
    *,
    node_rate: float = 1.0,
) -> Network:
    """A two-level tree: one leaf node per entry, all feeding a root.

    ``leaf_sessions[k]`` lists the arrivals entering at leaf ``k``;
    every session's route is (leaf_k, root).  The paper's Figure 2 is
    ``tree_network([[s1, s2], [s3, s4]])``.
    """
    if not leaf_sessions:
        raise ValidationError("need at least one leaf")
    nodes = [NetworkNode("root", node_rate)]
    sessions = []
    for k, arrivals in enumerate(leaf_sessions):
        if not arrivals:
            raise ValidationError(f"leaf {k} has no sessions")
        nodes.append(NetworkNode(f"leaf{k}", node_rate))
        for j, ebb in enumerate(arrivals):
            sessions.append(
                NetworkSession(
                    f"s{k}_{j}", ebb, (f"leaf{k}", "root"), ebb.rho
                )
            )
    return Network(nodes, sessions)


def ring_network(
    num_nodes: int,
    arrival: EBB,
    *,
    hops_per_session: int = 2,
    node_rate: float = 1.0,
) -> Network:
    """A ring: session ``k`` enters at node ``k`` and traverses the
    next ``hops_per_session`` nodes clockwise.

    For ``hops_per_session >= 2`` the route graph is cyclic — the case
    where stability genuinely needs Theorem 13 rather than feedforward
    induction.
    """
    if num_nodes < 2:
        raise ValidationError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 1 <= hops_per_session <= num_nodes:
        raise ValidationError(
            f"hops_per_session must be in [1, {num_nodes}], got "
            f"{hops_per_session}"
        )
    nodes = [
        NetworkNode(f"n{k}", node_rate) for k in range(num_nodes)
    ]
    sessions = []
    for k in range(num_nodes):
        route = tuple(
            f"n{(k + h) % num_nodes}" for h in range(hops_per_session)
        )
        sessions.append(
            NetworkSession(f"s{k}", arrival, route, arrival.rho)
        )
    return Network(nodes, sessions)
