"""Topology builders: parametric RPPS network families.

Factories for the network shapes used throughout the GPS literature —
tandems (chains), trees like the paper's Figure 2, and rings (cyclic
route graphs, exercising the arbitrary-topology side of Theorem 13).
All builders produce RPPS assignments (``phi = rho`` everywhere) so the
closed-form Theorem 15 bounds apply, and are used by the
route-independence bench and property tests.

Builders are keyword-only and accept either explicit E.B.B.
characterizations or a :class:`repro.scenario.Scenario` (whose ``ebbs``
supply the per-session envelopes and whose ``rate`` becomes the node
rate).  The historical positional call forms still work but emit a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.core.ebb import EBB
from repro.network.topology import Network, NetworkNode, NetworkSession

from repro.errors import ValidationError

__all__ = ["tandem_network", "tree_network", "ring_network"]


def _positional_shim(name: str, args: tuple, names: tuple[str, ...], kwargs: dict) -> None:
    """Map legacy positional ``args`` onto keyword ``kwargs`` in place."""
    if not args:
        return
    warnings.warn(
        f"positional {name}(...) is deprecated; pass "
        f"{', '.join(f'{n}=' for n in names)} as keywords (or scenario=)",
        DeprecationWarning,
        stacklevel=3,
    )
    if len(args) > len(names):
        raise TypeError(
            f"{name} takes at most {len(names)} legacy positional "
            f"arguments ({', '.join(names)})"
        )
    for value, key in zip(args, names):
        if kwargs.get(key) is not None:
            raise TypeError(f"{name}() got duplicate argument {key!r}")
        kwargs[key] = value


def _scenario_ebbs(scenario) -> tuple:
    ebbs = getattr(scenario, "ebbs", None)
    if ebbs is None:
        raise ValidationError(
            "scenario has no E.B.B. characterizations (ebbs=None); "
            "network builders need per-session envelopes"
        )
    return tuple(ebbs)


def tandem_network(
    *args,
    num_hops: int | None = None,
    through: EBB | None = None,
    cross: EBB | None = None,
    scenario=None,
    node_rate: float | None = None,
) -> Network:
    """A chain of ``num_hops`` nodes.

    One *through* session traverses the whole chain; at every node an
    independent *cross* session (same characterization, distinct name)
    enters and leaves.  The through session's bottleneck is identical at
    every hop, making this the canonical testbed for Theorem 15's
    route-length independence.

    With ``scenario=``: ``ebbs[0]`` is the through session, ``ebbs[1]``
    the cross session, ``num_hops`` defaults to ``num_sessions - 1``
    (the remaining sessions become the per-hop cross traffic), and the
    node rate defaults to the scenario's server rate.
    """
    _positional_shim(
        "tandem_network",
        args,
        ("num_hops", "through", "cross"),
        locals_ := {"num_hops": num_hops, "through": through, "cross": cross},
    )
    num_hops, through, cross = (
        locals_["num_hops"],
        locals_["through"],
        locals_["cross"],
    )
    if scenario is not None:
        if through is not None or cross is not None:
            raise ValidationError(
                "pass either scenario= or through=/cross=, not both"
            )
        ebbs = _scenario_ebbs(scenario)
        if len(ebbs) < 2:
            raise ValidationError(
                "tandem_network(scenario=...) needs at least two "
                "sessions (through and cross)"
            )
        through, cross = ebbs[0], ebbs[1]
        if num_hops is None:
            num_hops = max(1, scenario.num_sessions - 1)
        if node_rate is None:
            node_rate = scenario.rate
    if num_hops is None or through is None or cross is None:
        raise ValidationError(
            "tandem_network requires num_hops=, through= and cross= "
            "(or scenario=)"
        )
    if node_rate is None:
        node_rate = 1.0
    if num_hops < 1:
        raise ValidationError(f"num_hops must be >= 1, got {num_hops}")
    nodes = [
        NetworkNode(f"n{k}", node_rate) for k in range(num_hops)
    ]
    sessions = [
        NetworkSession(
            "through",
            through,
            tuple(f"n{k}" for k in range(num_hops)),
            through.rho,
        )
    ]
    for k in range(num_hops):
        sessions.append(
            NetworkSession(
                f"cross{k}", cross, (f"n{k}",), cross.rho
            )
        )
    return Network(nodes, sessions)


def tree_network(
    *args,
    leaf_sessions: Sequence[Sequence[EBB]] | None = None,
    scenario=None,
    node_rate: float | None = None,
) -> Network:
    """A two-level tree: one leaf node per entry, all feeding a root.

    ``leaf_sessions[k]`` lists the arrivals entering at leaf ``k``;
    every session's route is (leaf_k, root).  The paper's Figure 2 is
    ``tree_network(leaf_sessions=[[s1, s2], [s3, s4]])``.

    With ``scenario=``: each session becomes its own leaf feeding the
    root, and the node rate defaults to the scenario's server rate.
    """
    _positional_shim(
        "tree_network",
        args,
        ("leaf_sessions",),
        locals_ := {"leaf_sessions": leaf_sessions},
    )
    leaf_sessions = locals_["leaf_sessions"]
    if scenario is not None:
        if leaf_sessions is not None:
            raise ValidationError(
                "pass either scenario= or leaf_sessions=, not both"
            )
        leaf_sessions = [[ebb] for ebb in _scenario_ebbs(scenario)]
        if node_rate is None:
            node_rate = scenario.rate
    if leaf_sessions is None:
        raise ValidationError(
            "tree_network requires leaf_sessions= (or scenario=)"
        )
    if node_rate is None:
        node_rate = 1.0
    if not leaf_sessions:
        raise ValidationError("need at least one leaf")
    nodes = [NetworkNode("root", node_rate)]
    sessions = []
    for k, arrivals in enumerate(leaf_sessions):
        if not arrivals:
            raise ValidationError(f"leaf {k} has no sessions")
        nodes.append(NetworkNode(f"leaf{k}", node_rate))
        for j, ebb in enumerate(arrivals):
            sessions.append(
                NetworkSession(
                    f"s{k}_{j}", ebb, (f"leaf{k}", "root"), ebb.rho
                )
            )
    return Network(nodes, sessions)


def ring_network(
    *args,
    num_nodes: int | None = None,
    arrival: EBB | None = None,
    scenario=None,
    hops_per_session: int = 2,
    node_rate: float | None = None,
) -> Network:
    """A ring: session ``k`` enters at node ``k`` and traverses the
    next ``hops_per_session`` nodes clockwise.

    For ``hops_per_session >= 2`` the route graph is cyclic — the case
    where stability genuinely needs Theorem 13 rather than feedforward
    induction.

    With ``scenario=``: a homogeneous ring of ``num_sessions`` nodes
    built from ``ebbs[0]``, node rate defaulting to the scenario's
    server rate.
    """
    _positional_shim(
        "ring_network",
        args,
        ("num_nodes", "arrival"),
        locals_ := {"num_nodes": num_nodes, "arrival": arrival},
    )
    num_nodes, arrival = locals_["num_nodes"], locals_["arrival"]
    if scenario is not None:
        if arrival is not None:
            raise ValidationError(
                "pass either scenario= or arrival=, not both"
            )
        arrival = _scenario_ebbs(scenario)[0]
        if num_nodes is None:
            num_nodes = scenario.num_sessions
        if node_rate is None:
            node_rate = scenario.rate
    if num_nodes is None or arrival is None:
        raise ValidationError(
            "ring_network requires num_nodes= and arrival= (or scenario=)"
        )
    if node_rate is None:
        node_rate = 1.0
    if num_nodes < 2:
        raise ValidationError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 1 <= hops_per_session <= num_nodes:
        raise ValidationError(
            f"hops_per_session must be in [1, {num_nodes}], got "
            f"{hops_per_session}"
        )
    nodes = [
        NetworkNode(f"n{k}", node_rate) for k in range(num_nodes)
    ]
    sessions = []
    for k in range(num_nodes):
        route = tuple(
            f"n{(k + h) % num_nodes}" for h in range(hops_per_session)
        )
        sessions.append(
            NetworkSession(f"s{k}", arrival, route, arrival.rho)
        )
    return Network(nodes, sessions)
