"""Recursive bound propagation through CRST GPS networks (Theorem 13).

The stability argument of Section 6.1 is constructive: process the
global CRST classes in order; for every session of class ``l`` walk its
route, and at each node apply the single-node partition theorems using,
as the "earlier" sessions, exactly those in strictly lower *node*
classes — all of which belong to strictly lower global classes, so
their arrival characterizations at this node are already known.  Each
hop yields backlog/delay tail bounds and an output E.B.B.
characterization that becomes the arrival at the next hop; end-to-end
metrics come from combining per-node bounds (:func:`repro.core.bounds.
sum_of_tail_bounds`).

Because traffic streams inside a network are generally *dependent*
(they share upstream servers), the per-node step defaults to the
Hölder-based Theorem 12; pass ``independent_inputs=True`` to use
Theorem 11 when sessions are known not to interact upstream (e.g.
feedforward trees where every pair of flows shares at most the final
hop).

The Chernoff parameter at each hop is set to ``theta_shrink`` times the
hop's admissible ceiling; shrinking strictly below the ceiling is what
keeps the recursion well-posed (an output with decay ``theta`` can only
be integrated against tilts strictly below ``theta`` downstream).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import ExponentialTailBound, sum_of_tail_bounds
from repro.core.ebb import EBB
from repro.core.gps import GPSConfig, Session
from repro.core.single_node import (
    theorem11_family,
    theorem12_family,
)
from repro.network.crst import CRSTPartition, crst_partition
from repro.network.topology import Network
from repro.utils.validation import check_in_open_interval

__all__ = [
    "SessionHopReport",
    "SessionNetworkReport",
    "analyze_crst_network",
]


@dataclass(frozen=True)
class SessionHopReport:
    """Bounds for one session at one node of its route."""

    node: str
    arrival: EBB
    theta: float
    backlog: ExponentialTailBound
    delay: ExponentialTailBound
    output: EBB


@dataclass(frozen=True)
class SessionNetworkReport:
    """End-to-end results for one session.

    ``network_backlog`` bounds ``Q_i^net(t)`` (total session traffic
    queued anywhere in the network) and ``end_to_end_delay`` bounds
    ``D_i^net(t)``; both are assembled from the per-hop bounds without
    any independence assumption (union-bound convolution), as in the
    last step of the Theorem 13 procedure.
    """

    session: str
    hops: tuple[SessionHopReport, ...]
    network_backlog: ExponentialTailBound
    end_to_end_delay: ExponentialTailBound

    @property
    def egress(self) -> EBB:
        """E.B.B. characterization of the traffic leaving the network."""
        return self.hops[-1].output


def _local_config(
    network: Network,
    node_name: str,
    arrivals: dict[tuple[str, str], EBB],
) -> tuple[GPSConfig, dict[str, int]]:
    """GPS configuration of one node using arrival-at-node E.B.B.s.

    For sessions whose arrival characterization at this node is not yet
    known (they belong to the same or a later global class), the
    *source* characterization placeholder keeps ``rho`` (all that the
    feasible-partition geometry needs); their prefactors never enter
    any bound computed against this configuration.
    """
    local = network.sessions_at(node_name)
    sessions = []
    index_of = {}
    for k, session in enumerate(local):
        ebb = arrivals.get((session.name, node_name), session.arrival)
        sessions.append(
            Session(
                name=session.name,
                arrival=ebb,
                phi=session.phi_at(node_name),
            )
        )
        index_of[session.name] = k
    config = GPSConfig(network.nodes[node_name].rate, sessions)
    return config, index_of


def analyze_crst_network(
    network: Network,
    *,
    theta_shrink: float = 0.7,
    xi: float = 1.0,
    independent_inputs: bool = False,
    discrete: bool = False,
    partition: CRSTPartition | None = None,
) -> dict[str, SessionNetworkReport]:
    """Run the Theorem 13 recursion over a CRST network.

    Returns a report per session.  Raises
    :class:`repro.network.crst.NotCRSTError` if the assignment is not
    CRST.
    """
    check_in_open_interval("theta_shrink", theta_shrink, 0.0, 1.0)
    if partition is None:
        partition = crst_partition(network)
    arrivals: dict[tuple[str, str], EBB] = {}
    reports: dict[str, SessionNetworkReport] = {}

    for class_members in partition.classes:
        for session_name in class_members:
            session = network.session(session_name)
            arrivals[(session_name, session.route[0])] = session.arrival
            hop_reports: list[SessionHopReport] = []
            for hop, node_name in enumerate(session.route):
                config, index_of = _local_config(
                    network, node_name, arrivals
                )
                local_index = index_of[session_name]
                local_partition = config.partition()
                if independent_inputs:
                    family = theorem11_family(
                        config,
                        local_index,
                        xi=xi,
                        partition=local_partition,
                        discrete=discrete,
                    )
                else:
                    family = theorem12_family(
                        config,
                        local_index,
                        xi=xi,
                        partition=local_partition,
                        discrete=discrete,
                    )
                theta = theta_shrink * family.theta_max
                bounds = family.bounds_at(theta)
                report = SessionHopReport(
                    node=node_name,
                    arrival=arrivals[(session_name, node_name)],
                    theta=theta,
                    backlog=bounds.backlog,
                    delay=bounds.delay,
                    output=bounds.output,
                )
                hop_reports.append(report)
                if hop + 1 < session.num_hops:
                    arrivals[
                        (session_name, session.route[hop + 1])
                    ] = bounds.output
            reports[session_name] = SessionNetworkReport(
                session=session_name,
                hops=tuple(hop_reports),
                network_backlog=sum_of_tail_bounds(
                    [h.backlog for h in hop_reports]
                ),
                end_to_end_delay=sum_of_tail_bounds(
                    [h.delay for h in hop_reports]
                ),
            )
    return reports
