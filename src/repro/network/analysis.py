"""Recursive bound propagation through CRST GPS networks (Theorem 13).

The stability argument of Section 6.1 is constructive: process the
global CRST classes in order; for every session of class ``l`` walk its
route, and at each node apply the single-node partition theorems using,
as the "earlier" sessions, exactly those in strictly lower *node*
classes — all of which belong to strictly lower global classes, so
their arrival characterizations at this node are already known.  Each
hop yields backlog/delay tail bounds and an output E.B.B.
characterization that becomes the arrival at the next hop; end-to-end
metrics come from combining per-node bounds (:func:`repro.core.bounds.
sum_of_tail_bounds`).

Each node holds a long-lived
:class:`repro.analysis.context.AnalysisContext`: the recursion
declares the node's sessions once and then *updates* a session's
arrival E.B.B. in place as upstream outputs become known.  Because an
output characterization preserves the session's upper rate ``rho``
bit for bit, those updates never change the node's partition geometry,
so the feasible partition (eqs. 37-39) is built once per node instead
of once per hop visit — the main structural saving of the context
refactor at network scale.

Because traffic streams inside a network are generally *dependent*
(they share upstream servers), the per-node step defaults to the
Hölder-based Theorem 12; pass ``independent_inputs=True`` to use
Theorem 11 when sessions are known not to interact upstream (e.g.
feedforward trees where every pair of flows shares at most the final
hop).

The Chernoff parameter at each hop is set to ``theta_shrink`` times the
hop's admissible ceiling; shrinking strictly below the ceiling is what
keeps the recursion well-posed (an output with decay ``theta`` can only
be integrated against tilts strictly below ``theta`` downstream).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import AnalysisContext
from repro.core.bounds import ExponentialTailBound, sum_of_tail_bounds
from repro.core.ebb import EBB
from repro.network.crst import CRSTPartition, crst_partition
from repro.network.topology import Network
from repro.utils.validation import check_in_open_interval

__all__ = [
    "SessionHopReport",
    "SessionNetworkReport",
    "analyze_crst_network",
    "node_contexts",
]


@dataclass(frozen=True)
class SessionHopReport:
    """Bounds for one session at one node of its route."""

    node: str
    arrival: EBB
    theta: float
    backlog: ExponentialTailBound
    delay: ExponentialTailBound
    output: EBB


@dataclass(frozen=True)
class SessionNetworkReport:
    """End-to-end results for one session.

    ``network_backlog`` bounds ``Q_i^net(t)`` (total session traffic
    queued anywhere in the network) and ``end_to_end_delay`` bounds
    ``D_i^net(t)``; both are assembled from the per-hop bounds without
    any independence assumption (union-bound convolution), as in the
    last step of the Theorem 13 procedure.
    """

    session: str
    hops: tuple[SessionHopReport, ...]
    network_backlog: ExponentialTailBound
    end_to_end_delay: ExponentialTailBound

    @property
    def egress(self) -> EBB:
        """E.B.B. characterization of the traffic leaving the network."""
        return self.hops[-1].output


def node_contexts(
    network: Network, *, discrete: bool = False
) -> dict[str, AnalysisContext]:
    """One :class:`AnalysisContext` per node, seeded with the node's
    sessions at their *source* characterizations.

    For sessions whose arrival characterization at a node is not yet
    known (they belong to the same or a later global class), the source
    characterization placeholder keeps ``rho`` — all that the
    feasible-partition geometry needs; their prefactors never enter any
    bound computed against this node until the recursion updates them.
    """
    contexts: dict[str, AnalysisContext] = {}
    for node_name, node in network.nodes.items():
        context = AnalysisContext(
            node.rate, discrete=discrete, incremental=False
        )
        for session in network.sessions_at(node_name):
            context.add(
                session.name, session.arrival, session.phi_at(node_name)
            )
        contexts[node_name] = context
    return contexts


def analyze_crst_network(
    network: Network,
    *,
    theta_shrink: float = 0.7,
    xi: float = 1.0,
    independent_inputs: bool = False,
    discrete: bool = False,
    partition: CRSTPartition | None = None,
) -> dict[str, SessionNetworkReport]:
    """Run the Theorem 13 recursion over a CRST network.

    Returns a report per session.  Raises
    :class:`repro.network.crst.NotCRSTError` if the assignment is not
    CRST.
    """
    check_in_open_interval("theta_shrink", theta_shrink, 0.0, 1.0)
    if partition is None:
        partition = crst_partition(network)
    contexts = node_contexts(network, discrete=discrete)
    reports: dict[str, SessionNetworkReport] = {}

    for class_members in partition.classes:
        for session_name in class_members:
            session = network.session(session_name)
            hop_reports: list[SessionHopReport] = []
            for hop, node_name in enumerate(session.route):
                context = contexts[node_name]
                arrival = context.declaration(session_name).ebb
                if independent_inputs:
                    family = context.theorem11_family(session_name, xi=xi)
                else:
                    family = context.theorem12_family(session_name, xi=xi)
                theta = theta_shrink * family.theta_max
                bounds = family.bounds_at(theta)
                report = SessionHopReport(
                    node=node_name,
                    arrival=arrival,
                    theta=theta,
                    backlog=bounds.backlog,
                    delay=bounds.delay,
                    output=bounds.output,
                )
                hop_reports.append(report)
                if hop + 1 < session.num_hops:
                    # propagate: the output E.B.B. keeps rho exactly,
                    # so the downstream node's partition cache survives
                    contexts[session.route[hop + 1]].update(
                        session_name, ebb=bounds.output
                    )
            reports[session_name] = SessionNetworkReport(
                session=session_name,
                hops=tuple(hop_reports),
                network_backlog=sum_of_tail_bounds(
                    [h.backlog for h in hop_reports]
                ),
                end_to_end_delay=sum_of_tail_bounds(
                    [h.delay for h in hop_reports]
                ),
            )
    return reports
