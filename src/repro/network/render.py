"""Plain-text rendering of network topologies and session routes.

A tiny presentation helper so examples, benches and the CLI can show
the Figure 2 style topology without a plotting dependency: nodes with
their rates, link edges from the route graph, and a per-session route
table with weights and guaranteed rates.
"""

from __future__ import annotations

from repro.experiments.tables import format_table
from repro.network.topology import Network

__all__ = ["render_topology"]


def render_topology(network: Network) -> str:
    """Render nodes, links and session routes as aligned text."""
    node_rows = []
    for name, node in sorted(network.nodes.items()):
        local = network.sessions_at(name)
        node_rows.append(
            [
                name,
                node.rate,
                len(local),
                sum(s.rho for s in local),
            ]
        )
    link_rows = sorted(network.route_graph().edges())
    session_rows = []
    for session in network.sessions:
        session_rows.append(
            [
                session.name,
                " -> ".join(session.route),
                session.rho,
                network.network_guaranteed_rate(session.name),
                network.bottleneck_node(session.name),
            ]
        )
    parts = [
        "nodes:",
        format_table(
            ["node", "rate", "sessions", "load (sum rho)"], node_rows
        ),
        "",
        "links: "
        + (
            ", ".join(f"{a} -> {b}" for a, b in link_rows)
            if link_rows
            else "(none)"
        ),
        "",
        "sessions:",
        format_table(
            ["session", "route", "rho", "g_net", "bottleneck"],
            session_rows,
        ),
    ]
    return "\n".join(parts)
