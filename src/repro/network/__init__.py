"""Networks of GPS servers: topology, CRST partitions, recursive bound
propagation (Theorem 13) and RPPS closed forms (Theorem 15)."""

from repro.network.analysis import (
    SessionHopReport,
    SessionNetworkReport,
    analyze_crst_network,
)
from repro.network.builders import (
    ring_network,
    tandem_network,
    tree_network,
)
from repro.network.design import (
    WeightDesign,
    rpps_weights,
    weights_for_delay_targets,
)
from repro.network.crst import (
    CRSTPartition,
    NotCRSTError,
    crst_partition,
    node_partition,
)
from repro.network.render import render_topology
from repro.network.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.network.rpps_network import (
    RPPSSessionReport,
    rpps_network_bounds,
    rpps_network_bounds_markov,
    rpps_network_report,
)
from repro.network.topology import Network, NetworkNode, NetworkSession

__all__ = [
    "SessionHopReport",
    "SessionNetworkReport",
    "analyze_crst_network",
    "CRSTPartition",
    "NotCRSTError",
    "crst_partition",
    "node_partition",
    "RPPSSessionReport",
    "rpps_network_bounds",
    "rpps_network_bounds_markov",
    "rpps_network_report",
    "Network",
    "NetworkNode",
    "NetworkSession",
    "WeightDesign",
    "rpps_weights",
    "weights_for_delay_targets",
    "ring_network",
    "tandem_network",
    "tree_network",
    "render_topology",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
]
