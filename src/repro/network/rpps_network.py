"""RPPS GPS networks: closed-form end-to-end bounds (Theorem 15).

In a Rate Proportional Processor Sharing network (``phi_i^m = rho_i``
at every node) each session is guaranteed its bottleneck clearing rate
``g_i^net = min_m g_i^m`` everywhere along its route, and Lemma 14
shows the *network* egress serves at least ``g_i^net`` per unit time
during any session-``i`` network busy period.  Consequently the total
session backlog in the network satisfies ``Q_i^net(t) <= delta_i(t)``
for the virtual queue drained at ``g_i^net`` — the network collapses to
a single bottleneck queue, independent of route length and topology:

    Pr{Q_i^net(t) >= q} <= Lambda_i^net e^{-alpha_i q},
    Pr{D_i^net(t) >= d} <= Lambda_i^net e^{-alpha_i g_i^net d}.

Two refinements from Section 6.3 are also provided:

* the discrete-time prefactor (eqs. 66-67) used in the numerical
  example, and
* the *improved* bounds (Figure 4): when the source is a known
  Markov-modulated process, ``delta_i(t)`` is bounded directly by the
  LNT94/BD94 queue bound at rate ``g_i^net``, giving a much larger
  decay rate than the E.B.B. route.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import ExponentialTailBound
from repro.core.rpps import guaranteed_rate_bounds
from repro.markov.lnt94 import queue_tail_bound
from repro.markov.mmpp import MarkovModulatedSource
from repro.network.topology import Network

from repro.errors import ValidationError

__all__ = [
    "RPPSSessionReport",
    "rpps_network_bounds",
    "rpps_network_bounds_markov",
    "rpps_network_report",
]


@dataclass(frozen=True)
class RPPSSessionReport:
    """Theorem 15 bounds for one session of an RPPS network."""

    session: str
    bottleneck_node: str
    guaranteed_rate: float
    network_backlog: ExponentialTailBound
    end_to_end_delay: ExponentialTailBound


def _check_rpps(network: Network) -> None:
    if not network.is_rpps():
        raise ValidationError(
            "network is not RPPS: phi_i^m must be proportional to rho_i "
            "at every node (Theorem 15 also applies to any session with "
            "a guaranteed rate everywhere; use "
            "repro.core.rpps.guaranteed_rate_bounds directly for that)"
        )


def rpps_network_bounds(
    network: Network,
    session_name: str,
    *,
    xi: float | None = None,
    discrete: bool = False,
) -> RPPSSessionReport:
    """Theorem 15 bounds from the session's E.B.B. characterization.

    ``discrete=True`` uses the discrete-time prefactor
    ``Lambda_i / (1 - e^{-alpha_i (g_i - rho_i)})`` of eq. (66), as in
    the Section 6.3 numerical example.
    """
    _check_rpps(network)
    session = network.session(session_name)
    g_net = network.network_guaranteed_rate(session_name)
    bounds = guaranteed_rate_bounds(
        session_name, session.arrival, g_net, xi=xi, discrete=discrete
    )
    return RPPSSessionReport(
        session=session_name,
        bottleneck_node=network.bottleneck_node(session_name),
        guaranteed_rate=g_net,
        network_backlog=bounds.backlog,
        end_to_end_delay=bounds.delay,
    )


def rpps_network_bounds_markov(
    network: Network,
    session_name: str,
    source: MarkovModulatedSource,
) -> RPPSSessionReport:
    """Improved Theorem 15 bounds for a Markov-modulated source.

    Bypasses the E.B.B. characterization: ``delta_i(t)`` at rate
    ``g_i^net`` is bounded directly with the LNT94/BD94 martingale
    bound, whose decay rate solves ``eb(alpha) = g_i^net`` (instead of
    being capped at the E.B.B. decay ``alpha_i``).  This reproduces the
    Figure 4 "improved bounds" construction.
    """
    _check_rpps(network)
    g_net = network.network_guaranteed_rate(session_name)
    queue = queue_tail_bound(source, g_net)
    backlog = queue.tail()
    return RPPSSessionReport(
        session=session_name,
        bottleneck_node=network.bottleneck_node(session_name),
        guaranteed_rate=g_net,
        network_backlog=backlog,
        end_to_end_delay=backlog.scaled_argument(g_net),
    )


def rpps_network_report(
    network: Network,
    *,
    xi: float | None = None,
    discrete: bool = False,
) -> dict[str, RPPSSessionReport]:
    """Theorem 15 bounds for every session of an RPPS network."""
    _check_rpps(network)
    return {
        session.name: rpps_network_bounds(
            network, session.name, xi=xi, discrete=discrete
        )
        for session in network.sessions
    }
