"""GPS weight design: picking ``phi`` assignments to meet QoS targets.

Section 7 raises "how to choose the GPS assignment" as the practical
question the analysis leaves open.  This module provides the two
design procedures the theory directly supports:

* :func:`rpps_weights` — the RPPS assignment itself (``phi_i = rho_i``),
  the paper's recommended default: topology-independent closed-form
  bounds for everyone.
* :func:`weights_for_delay_targets` — a single-node inverse problem:
  given per-session E.B.B. characterizations and (d_max, epsilon)
  targets, find weights such that every session's *guaranteed-rate*
  bound (Theorem 10 applied at ``g_i = phi_i/sum phi * r``) meets its
  target.  Since the bound depends on the weights only through ``g_i``,
  the problem reduces to per-session required rates
  (:func:`repro.core.admission.required_rate_for_delay`) plus a
  feasibility check ``sum g_i^req <= r``; the returned weights are the
  required rates themselves, normalized (so the spare capacity is
  shared proportionally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.admission import QoSTarget, required_rate_for_delay
from repro.core.ebb import EBB
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = ["WeightDesign", "rpps_weights", "weights_for_delay_targets"]


@dataclass(frozen=True)
class WeightDesign:
    """Result of a weight-design procedure.

    Attributes
    ----------
    weights:
        The GPS weights ``phi_i`` (scale-free; only ratios matter).
    guaranteed_rates:
        The implied ``g_i`` at the given server rate.
    utilization:
        ``sum_i g_i^req / rate`` — how much of the server the hard
        requirements consume (< 1 means spare capacity).
    """

    weights: tuple[float, ...]
    guaranteed_rates: tuple[float, ...]
    utilization: float


def rpps_weights(arrivals: Sequence[EBB]) -> tuple[float, ...]:
    """The RPPS assignment ``phi_i = rho_i``."""
    if not arrivals:
        raise ValidationError("need at least one session")
    return tuple(a.rho for a in arrivals)


def weights_for_delay_targets(
    arrivals: Sequence[EBB],
    targets: Sequence[QoSTarget],
    server_rate: float,
    *,
    discrete: bool = True,
) -> WeightDesign:
    """Weights meeting per-session delay targets at one GPS server.

    Raises
    ------
    ValueError
        If the summed required rates exceed the server rate — the
        target set is infeasible under guaranteed-rate reasoning and
        some session must relax its target (or the server be upgraded).
    """
    if len(arrivals) != len(targets):
        raise ValidationError("one target per session required")
    if not arrivals:
        raise ValidationError("need at least one session")
    check_positive("server_rate", server_rate)
    required = [
        max(
            required_rate_for_delay(a, t, discrete=discrete),
            a.rho * (1.0 + 1e-9),
        )
        for a, t in zip(arrivals, targets)
    ]
    total_required = sum(required)
    if total_required > server_rate:
        raise ValidationError(
            f"infeasible targets: required rates sum to "
            f"{total_required} > server rate {server_rate}"
        )
    # Weights proportional to required rates: each session's actual
    # share g_i = req_i / total_required * rate >= req_i.
    weights = tuple(required)
    guaranteed = tuple(
        r / total_required * server_rate for r in required
    )
    return WeightDesign(
        weights=weights,
        guaranteed_rates=guaranteed,
        utilization=total_required / server_rate,
    )
