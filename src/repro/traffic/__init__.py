"""Traffic models: sample-path generators, token-control devices,
deterministic envelopes and empirical E.B.B. estimation."""

from repro.traffic.envelope import (
    LBAPEnvelope,
    empirical_envelope_curve,
    tightest_sigma,
)
from repro.traffic.estimation import (
    EBBFit,
    fit_ebb,
    interval_excess_tail,
    pooled_excess_tail,
)
from repro.traffic.leaky_bucket import (
    LeakyBucketPolicer,
    LeakyBucketShaper,
    MarkingResult,
    TokenMarker,
    conforms_to_envelope,
)
from repro.traffic.presets import (
    data_traffic,
    video_model,
    video_traffic,
    voice_model,
    voice_traffic,
)
from repro.traffic.sources import (
    BernoulliBurstTraffic,
    CompoundTraffic,
    ConstantBitRateTraffic,
    MarkovModulatedTraffic,
    OnOffTraffic,
    TrafficSource,
    UniformNoiseTraffic,
)

__all__ = [
    "LBAPEnvelope",
    "empirical_envelope_curve",
    "tightest_sigma",
    "EBBFit",
    "fit_ebb",
    "interval_excess_tail",
    "pooled_excess_tail",
    "LeakyBucketPolicer",
    "LeakyBucketShaper",
    "MarkingResult",
    "TokenMarker",
    "conforms_to_envelope",
    "BernoulliBurstTraffic",
    "CompoundTraffic",
    "ConstantBitRateTraffic",
    "MarkovModulatedTraffic",
    "OnOffTraffic",
    "TrafficSource",
    "UniformNoiseTraffic",
    "data_traffic",
    "video_model",
    "video_traffic",
    "voice_model",
    "voice_traffic",
]
