"""Leaky-bucket token control and the zero-bucket marking scheme.

Two token-control devices appear in the GPS literature:

* the classical **leaky bucket** of Parekh & Gallager / Cruz: tokens
  accumulate at rate ``r`` into a bucket of depth ``sigma``; conforming
  traffic never exceeds ``sigma + r * duration`` over any interval
  (the LBAP envelope).  :class:`LeakyBucketShaper` delays excess
  traffic, :class:`LeakyBucketPolicer` drops it.

* the **zero-bucket marker** described at the end of Section 3 of the
  paper: tokens are generated at rate ``r`` with *no* accumulation;
  arrivals beyond the instantaneous token rate are *marked* but still
  admitted.  On a sample path the amount of marked traffic queued at
  time ``t`` is exactly the virtual backlog ``delta(t) = sup_s {A(s,t)
  - r (t-s)}``, giving the paper's operational interpretation of the
  decomposition.  :class:`TokenMarker` implements it.

All devices operate on discrete-time per-slot arrival arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "LeakyBucketShaper",
    "LeakyBucketPolicer",
    "TokenMarker",
    "MarkingResult",
    "conforms_to_envelope",
]


@dataclass(frozen=True)
class LeakyBucketShaper:
    """Shape traffic to the ``(sigma, rho)`` envelope by buffering.

    Attributes
    ----------
    rate:
        Token generation rate ``rho`` (units per slot).
    bucket_size:
        Bucket depth ``sigma``; ``0`` shapes to a pure CBR envelope.
    """

    rate: float
    bucket_size: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        check_nonnegative("bucket_size", self.bucket_size)

    def shape(self, arrivals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(released, backlog)`` arrays, one entry per slot.

        ``released[t]`` is the conforming traffic let out in slot ``t``
        (at most ``tokens available``); ``backlog[t]`` is the shaper
        queue *after* slot ``t``.  Tokens available in a slot are the
        bucket content plus the slot's fresh ``rate`` tokens; the bucket
        starts full.
        """
        arr = np.asarray(arrivals, dtype=float)
        released = np.empty_like(arr)
        backlog = np.empty_like(arr)
        tokens = self.bucket_size
        queued = 0.0
        for t, amount in enumerate(arr):
            queued += float(amount)
            tokens = min(tokens + self.rate, self.bucket_size + self.rate)
            out = min(queued, tokens)
            released[t] = out
            queued -= out
            tokens -= out
            backlog[t] = queued
        return released, backlog

    def shape_batch(
        self, arrivals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shape a ``(num_trials, num_slots)`` batch of sample paths.

        Vectorized across the trial axis (one token update per slot
        for the whole batch); row ``b`` of the result equals
        ``shape(arrivals[b])``.
        """
        arr = np.asarray(arrivals, dtype=float)
        if arr.ndim != 2:
            raise ValidationError(
                f"arrivals must be 2-D (trials x slots), got {arr.shape}"
            )
        num_trials, num_slots = arr.shape
        released = np.empty_like(arr)
        backlog = np.empty_like(arr)
        tokens = np.full(num_trials, self.bucket_size)
        queued = np.zeros(num_trials)
        cap = self.bucket_size + self.rate
        for t in range(num_slots):
            queued += arr[:, t]
            tokens = np.minimum(tokens + self.rate, cap)
            out = np.minimum(queued, tokens)
            released[:, t] = out
            queued -= out
            tokens -= out
            backlog[:, t] = queued
        return released, backlog


@dataclass(frozen=True)
class LeakyBucketPolicer:
    """Police traffic to the ``(sigma, rho)`` envelope by dropping."""

    rate: float
    bucket_size: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        check_nonnegative("bucket_size", self.bucket_size)

    def police(self, arrivals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(admitted, dropped)`` arrays, one entry per slot."""
        arr = np.asarray(arrivals, dtype=float)
        admitted = np.empty_like(arr)
        dropped = np.empty_like(arr)
        tokens = self.bucket_size
        for t, amount in enumerate(arr):
            tokens = min(tokens + self.rate, self.bucket_size + self.rate)
            take = min(float(amount), tokens)
            admitted[t] = take
            dropped[t] = float(amount) - take
            tokens -= take
        return admitted, dropped


@dataclass(frozen=True)
class MarkingResult:
    """Output of the zero-bucket marker over a sample path."""

    marked: np.ndarray
    unmarked: np.ndarray
    marked_backlog: np.ndarray

    @property
    def total_marked(self) -> float:
        """Total marked traffic over the path."""
        return float(self.marked.sum())


@dataclass(frozen=True)
class TokenMarker:
    """The Section 3 zero-bucket marking scheme.

    Tokens arrive as a continuous flow at rate ``rate`` and are consumed
    immediately; unconsumed tokens are discarded (bucket size zero).
    Arrivals beyond the slot's tokens are *marked* and admitted anyway.
    ``marked_backlog[t]`` tracks the outstanding marked traffic, which
    equals the virtual backlog ``delta(t)`` of the decomposition —
    tests assert this identity against a direct computation of the
    supremum.
    """

    rate: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)

    def mark(self, arrivals: np.ndarray) -> MarkingResult:
        """Split each slot's arrivals into unmarked and marked parts."""
        arr = np.asarray(arrivals, dtype=float)
        marked = np.clip(arr - self.rate, 0.0, None)
        unmarked = arr - marked
        # delta(t) = max(delta(t-1) + a_t - rate, 0) — the Lindley
        # recursion of the rate-`rate` virtual queue.  The slack
        # rate - a_t in underloaded slots drains earlier marks.
        deficit = self.rate - arr
        backlog = np.empty_like(arr)
        level = 0.0
        for t in range(arr.size):
            level = max(level - deficit[t], 0.0)
            backlog[t] = level
        return MarkingResult(
            marked=marked, unmarked=unmarked, marked_backlog=backlog
        )


def conforms_to_envelope(
    arrivals: np.ndarray, rate: float, bucket_size: float
) -> bool:
    """Check the LBAP property ``A(s, t] <= sigma + rho (t - s)`` for
    every interval of the sample path.

    Runs in linear time via the equivalent condition that the virtual
    queue drained at ``rate`` never exceeds ``bucket_size``.
    """
    check_positive("rate", rate)
    check_nonnegative("bucket_size", bucket_size)
    level = 0.0
    for amount in np.asarray(arrivals, dtype=float):
        level = max(level + float(amount) - rate, 0.0)
        if level > bucket_size + 1e-9:
            return False
    return True
