"""Empirical E.B.B. estimation from traffic traces.

The paper assumes each session arrives with a given ``(rho, Lambda,
alpha)`` characterization and notes (Section 7) that obtaining such
characterizations in practice is itself a problem.  This module closes
that loop for trace-driven use of the library: given a discrete-time
sample path, it measures interval-excess tails over a sweep of window
sizes and fits the exponential envelope

    Pr{A(t, t + w) >= rho w + x} <= Lambda e^{-alpha x}

by least squares on the pooled log-tail.  The fit is *statistical* —
tests verify it recovers the analytical parameters of known sources to
reasonable accuracy and that the fitted envelope dominates the
empirical tails it was fitted to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ebb import EBB
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = [
    "interval_excess_tail",
    "pooled_excess_tail",
    "EBBFit",
    "fit_ebb",
]


def _window_sums(increments: np.ndarray, window: int) -> np.ndarray:
    cumulative = np.concatenate(([0.0], np.cumsum(increments)))
    return cumulative[window:] - cumulative[:-window]


def interval_excess_tail(
    increments: np.ndarray,
    rho: float,
    window: int,
    excesses: np.ndarray,
) -> np.ndarray:
    """Empirical ``Pr{A(w) >= rho w + x}`` over the grid ``excesses``.

    Uses all (overlapping) windows of length ``window`` in the trace.
    """
    check_positive("rho", rho)
    arr = np.asarray(increments, dtype=float)
    if not 1 <= window <= arr.size:
        raise ValidationError(f"window must be in [1, {arr.size}], got {window}")
    sums = _window_sums(arr, window)
    thresholds = rho * window + np.asarray(excesses, dtype=float)
    return np.array(
        [float(np.mean(sums >= thr)) for thr in thresholds]
    )


def pooled_excess_tail(
    increments: np.ndarray,
    rho: float,
    windows: list[int],
    excesses: np.ndarray,
) -> np.ndarray:
    """Worst-case (over window sizes) empirical excess tail.

    The E.B.B. property quantifies over *all* intervals, so the
    envelope must dominate the pointwise maximum across window sizes.
    """
    tails = np.vstack(
        [
            interval_excess_tail(increments, rho, w, excesses)
            for w in windows
        ]
    )
    return tails.max(axis=0)


@dataclass(frozen=True)
class EBBFit:
    """Result of :func:`fit_ebb`.

    Attributes
    ----------
    ebb:
        The fitted characterization.
    excesses:
        Grid of excess values used in the fit.
    empirical_tail:
        Pooled empirical tail over the grid.
    """

    ebb: EBB
    excesses: np.ndarray
    empirical_tail: np.ndarray

    def max_violation(self) -> float:
        """Largest ratio ``empirical / bound`` over the fitted grid
        (> 1 means the envelope fails to dominate somewhere)."""
        bound_vals = self.ebb.burstiness_tail().evaluate_array(self.excesses)
        positive = self.empirical_tail > 0.0
        if not positive.any():
            return 0.0
        return float(
            np.max(self.empirical_tail[positive] / bound_vals[positive])
        )


def fit_ebb(
    increments: np.ndarray,
    rho: float,
    *,
    windows: list[int] | None = None,
    num_excesses: int = 40,
    inflate: bool = True,
) -> EBBFit:
    """Fit a ``(rho, Lambda, alpha)``-E.B.B. envelope to a trace.

    Parameters
    ----------
    increments:
        Per-slot arrival amounts.
    rho:
        The chosen upper rate; must exceed the trace's empirical mean
        rate (otherwise excesses grow linearly and no envelope exists).
    windows:
        Window sizes to pool over; defaults to a geometric sweep up to
        a tenth of the trace length.
    num_excesses:
        Number of grid points between 0 and the largest observed excess.
    inflate:
        If True (default), after the least-squares fit the prefactor is
        inflated so the envelope dominates the empirical tail on the
        whole grid, making the returned characterization a genuine
        bound for this trace.
    """
    arr = np.asarray(increments, dtype=float)
    check_positive("rho", rho)
    mean_rate = float(arr.mean())
    if rho <= mean_rate:
        raise ValidationError(
            f"rho={rho} must exceed the empirical mean rate {mean_rate}"
        )
    if windows is None:
        limit = max(2, arr.size // 10)
        windows = sorted(
            {
                int(w)
                for w in np.geomspace(1, limit, num=12)
            }
        )
    # Largest observed excess across windows fixes the grid scale.
    max_excess = 0.0
    for w in windows:
        sums = _window_sums(arr, w)
        max_excess = max(max_excess, float(sums.max()) - rho * w)
    if max_excess <= 0.0:
        # The trace never exceeds rho * w: a degenerate (zero-prefactor)
        # envelope is exact.
        grid = np.linspace(0.0, 1.0, num_excesses)
        return EBBFit(
            ebb=EBB(rho, 0.0, 1.0),
            excesses=grid,
            empirical_tail=np.zeros(num_excesses),
        )
    grid = np.linspace(0.0, max_excess, num_excesses)
    tail = pooled_excess_tail(arr, rho, windows, grid)
    positive = tail > 0.0
    if positive.sum() < 2:
        raise ValidationError(
            "not enough positive tail mass to fit; use a longer trace "
            "or a smaller rho"
        )
    # Least squares on log tail: log p = log Lambda - alpha x.
    xs = grid[positive]
    ys = np.log(tail[positive])
    slope, intercept = np.polyfit(xs, ys, deg=1)
    alpha = max(-slope, 1e-12)
    prefactor = float(np.exp(intercept))
    if inflate:
        bound_vals = prefactor * np.exp(-alpha * xs)
        ratio = float(np.max(np.exp(ys) / bound_vals))
        prefactor *= max(ratio, 1.0)
    return EBBFit(
        ebb=EBB(rho, prefactor, alpha),
        excesses=grid,
        empirical_tail=tail,
    )
