"""Discrete-time traffic generators for the simulators.

Each generator produces a numpy array of per-slot arrival amounts
(fluid units per slot).  Generators are deterministic given a seed, so
simulations are exactly reproducible; every generator also exposes its
analytical counterparts (mean rate, and where available the E.B.B. /
Markov-modulated model) so simulation and analysis stay in sync.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.markov.mmpp import MarkovModulatedSource
from repro.markov.onoff import OnOffSource
from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_probability,
)

from repro.errors import ValidationError

__all__ = [
    "TrafficSource",
    "OnOffTraffic",
    "MarkovModulatedTraffic",
    "ConstantBitRateTraffic",
    "BernoulliBurstTraffic",
    "UniformNoiseTraffic",
    "CompoundTraffic",
]


class TrafficSource(ABC):
    """A stationary discrete-time traffic source."""

    @abstractmethod
    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return ``num_slots`` per-slot arrival amounts."""

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return ``(num_trials, num_slots)`` independent sample paths.

        The base implementation stacks :meth:`generate` calls on the
        shared generator; vectorized sources override it to draw the
        whole batch at once (same marginal law, different stream
        layout) for the batched simulation engine.
        """
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        return np.stack(
            [self.generate(num_slots, rng) for _ in range(num_trials)]
        )

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run average arrival rate (units per slot)."""

    @property
    @abstractmethod
    def peak_rate(self) -> float:
        """Maximum possible arrival in a single slot."""


@dataclass(frozen=True)
class OnOffTraffic(TrafficSource):
    """Sample-path generator for the two-state on-off Markov source.

    The stationary chain is sampled directly: the initial state comes
    from the stationary distribution, and transitions use the (p, q)
    probabilities of the analytical :class:`OnOffSource` model.
    """

    model: OnOffSource

    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        p, q = self.model.p, self.model.q
        uniforms = rng.random(num_slots)
        states = np.empty(num_slots, dtype=bool)
        state = bool(rng.random() < self.model.on_probability)
        for t in range(num_slots):
            if state:
                state = uniforms[t] >= q  # stay on with prob 1 - q
            else:
                state = uniforms[t] < p  # turn on with prob p
            states[t] = state
        return np.where(states, self.model.peak_rate, 0.0)

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized across trials: one chain step per slot for the
        whole ``(num_trials,)`` state vector."""
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        p, q = self.model.p, self.model.q
        state = rng.random(num_trials) < self.model.on_probability
        uniforms = rng.random((num_trials, num_slots))
        states = np.empty((num_trials, num_slots), dtype=bool)
        for t in range(num_slots):
            u = uniforms[:, t]
            state = np.where(state, u >= q, u < p)
            states[:, t] = state
        return np.where(states, self.model.peak_rate, 0.0)

    @property
    def mean_rate(self) -> float:
        return self.model.mean_rate

    @property
    def peak_rate(self) -> float:
        return self.model.peak_rate


@dataclass(frozen=True)
class MarkovModulatedTraffic(TrafficSource):
    """Sample-path generator for a general Markov-modulated source."""

    model: MarkovModulatedSource

    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        transition = self.model.chain.transition
        pi = self.model.chain.stationary_distribution()
        num_states = self.model.num_states
        # Pre-draw uniforms; walk the chain with cumulative rows.
        cumulative = np.cumsum(transition, axis=1)
        state = int(rng.choice(num_states, p=pi))
        uniforms = rng.random(num_slots)
        states = np.empty(num_slots, dtype=np.int64)
        for t in range(num_slots):
            state = int(np.searchsorted(cumulative[state], uniforms[t]))
            states[t] = state
        return self.model.rates[states]

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized across trials: the whole batch of chains steps
        together, one row-wise inverse-CDF lookup per slot."""
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        transition = self.model.chain.transition
        pi = self.model.chain.stationary_distribution()
        cumulative = np.cumsum(transition, axis=1)
        state = rng.choice(
            self.model.num_states, size=num_trials, p=pi
        )
        uniforms = rng.random((num_trials, num_slots))
        states = np.empty((num_trials, num_slots), dtype=np.int64)
        for t in range(num_slots):
            rows = cumulative[state]
            state = (rows < uniforms[:, t, None]).sum(axis=1)
            states[:, t] = state
        return self.model.rates[states]

    @property
    def mean_rate(self) -> float:
        return self.model.mean_rate

    @property
    def peak_rate(self) -> float:
        return self.model.peak_rate


@dataclass(frozen=True)
class ConstantBitRateTraffic(TrafficSource):
    """A CBR source emitting exactly ``rate`` units every slot."""

    rate: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)

    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        return np.full(num_slots, self.rate)

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        del rng
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        return np.full((num_trials, num_slots), self.rate)

    @property
    def mean_rate(self) -> float:
        return self.rate

    @property
    def peak_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class BernoulliBurstTraffic(TrafficSource):
    """I.i.d. bursts: each slot emits ``burst_size`` with probability
    ``burst_probability`` and nothing otherwise.

    The memoryless special case of the on-off source (``p = 1 - q``);
    handy in property-based tests because every interval statistic has
    a closed form.
    """

    burst_probability: float
    burst_size: float

    def __post_init__(self) -> None:
        check_probability("burst_probability", self.burst_probability)
        check_positive("burst_size", self.burst_size)

    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        hits = rng.random(num_slots) < self.burst_probability
        return np.where(hits, self.burst_size, 0.0)

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        hits = rng.random((num_trials, num_slots)) < self.burst_probability
        return np.where(hits, self.burst_size, 0.0)

    @property
    def mean_rate(self) -> float:
        return self.burst_probability * self.burst_size

    @property
    def peak_rate(self) -> float:
        return self.burst_size


@dataclass(frozen=True)
class UniformNoiseTraffic(TrafficSource):
    """I.i.d. uniform arrivals on ``[low, high]`` per slot.

    A light-tailed non-Markov source used to exercise the estimation
    pipeline on traffic with no hidden state.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        check_nonnegative("low", self.low)
        if self.high <= self.low:
            raise ValidationError(
                f"need high > low, got [{self.low}, {self.high}]"
            )

    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        return rng.uniform(self.low, self.high, size=num_slots)

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        if num_slots <= 0:
            raise ValidationError(f"num_slots must be positive, got {num_slots}")
        return rng.uniform(
            self.low, self.high, size=(num_trials, num_slots)
        )

    @property
    def mean_rate(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def peak_rate(self) -> float:
        return self.high


@dataclass(frozen=True)
class CompoundTraffic(TrafficSource):
    """Superposition of independent sources (their slot-wise sum).

    Models an aggregate session — e.g. a feasible-partition class
    treated as one flow — while keeping the constituent models.
    """

    components: tuple[TrafficSource, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValidationError("CompoundTraffic needs at least one component")

    def generate(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        total = np.zeros(num_slots)
        for component in self.components:
            total += component.generate(num_slots, rng)
        return total

    def generate_batch(
        self, num_trials: int, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_trials <= 0:
            raise ValidationError(
                f"num_trials must be positive, got {num_trials}"
            )
        total = np.zeros((num_trials, num_slots))
        for component in self.components:
            total += component.generate_batch(num_trials, num_slots, rng)
        return total

    @property
    def mean_rate(self) -> float:
        return sum(c.mean_rate for c in self.components)

    @property
    def peak_rate(self) -> float:
        return sum(c.peak_rate for c in self.components)
