"""Named source presets for the traffic classes of the paper's Sec. 7.

The paper's concluding discussion groups traffic into classes — voice,
video at several resolutions, data — with similar in-class
characteristics.  These factories provide calibrated members of each
class so examples, benches and tests can speak the same language:

* **voice**: the classic packetized-voice on-off model (talk spurts of
  ~350 ms, silences ~650 ms at an 8 kb/s-like normalized peak) — a
  two-state chain, as in the Section 6.3 example.
* **video**: a multi-state Markov-modulated model in the style of
  Maglaris et al.: several quantized activity levels with neighbor
  transitions, mimicking VBR scene changes.
* **data**: bursty but memoryless — an i.i.d. Bernoulli batch model.

Rates are normalized to a unit-rate server; scale per deployment.
"""

from __future__ import annotations

import numpy as np

from repro.markov.chain import DTMC
from repro.markov.mmpp import MarkovModulatedSource
from repro.markov.onoff import OnOffSource
from repro.traffic.sources import (
    BernoulliBurstTraffic,
    MarkovModulatedTraffic,
    OnOffTraffic,
    TrafficSource,
)
from repro.utils.validation import check_positive

from repro.errors import ValidationError

__all__ = [
    "voice_model",
    "voice_traffic",
    "video_model",
    "video_traffic",
    "data_traffic",
]


def voice_model(
    *, peak_rate: float = 0.4, activity: float = 0.35,
    mean_talk_spurt: float = 35.0,
) -> OnOffSource:
    """A packetized-voice on-off model.

    ``activity`` is the stationary on-probability and
    ``mean_talk_spurt`` the mean on-sojourn in slots; together they
    pin down (p, q).
    """
    check_positive("peak_rate", peak_rate)
    if not 0.0 < activity < 1.0:
        raise ValidationError(
            f"activity must be in (0, 1), got {activity}"
        )
    check_positive("mean_talk_spurt", mean_talk_spurt)
    q = 1.0 / mean_talk_spurt
    # activity = p / (p + q)  =>  p = q * activity / (1 - activity)
    p = q * activity / (1.0 - activity)
    if p >= 1.0:
        raise ValidationError(
            "inconsistent parameters: implied off->on probability "
            f"{p} >= 1; lengthen the talk spurt or lower activity"
        )
    return OnOffSource(p, q, peak_rate)


def voice_traffic(**kwargs) -> OnOffTraffic:
    """Sample-path generator for :func:`voice_model`."""
    return OnOffTraffic(voice_model(**kwargs))


def video_model(
    *,
    num_levels: int = 5,
    peak_rate: float = 0.6,
    level_change_probability: float = 0.1,
) -> MarkovModulatedSource:
    """A Maglaris-style VBR video model.

    ``num_levels`` activity levels with rates spaced uniformly from
    ``peak_rate / num_levels`` to ``peak_rate``; the activity level
    performs a lazy random walk (up/down with probability
    ``level_change_probability`` each).
    """
    if num_levels < 2:
        raise ValidationError(f"num_levels must be >= 2, got {num_levels}")
    check_positive("peak_rate", peak_rate)
    if not 0.0 < level_change_probability <= 0.5:
        raise ValidationError(
            "level_change_probability must be in (0, 0.5], got "
            f"{level_change_probability}"
        )
    p = level_change_probability
    transition = np.zeros((num_levels, num_levels))
    for level in range(num_levels):
        if level > 0:
            transition[level, level - 1] = p
        if level < num_levels - 1:
            transition[level, level + 1] = p
        transition[level, level] = 1.0 - transition[level].sum()
    rates = peak_rate * np.arange(1, num_levels + 1) / num_levels
    return MarkovModulatedSource(DTMC(transition), rates)


def video_traffic(**kwargs) -> MarkovModulatedTraffic:
    """Sample-path generator for :func:`video_model`."""
    return MarkovModulatedTraffic(video_model(**kwargs))


def data_traffic(
    *, burst_probability: float = 0.15, burst_size: float = 1.0
) -> TrafficSource:
    """A memoryless bursty data source (i.i.d. Bernoulli batches)."""
    return BernoulliBurstTraffic(burst_probability, burst_size)
