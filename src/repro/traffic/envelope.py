"""Deterministic (sigma, rho) traffic envelopes (Cruz's LBAP model).

A process conforms to the Linear Bounded Arrival Process envelope
``(sigma, rho)`` if ``A(s, t] <= sigma + rho (t - s)`` for all
intervals.  This is the source model of Parekh & Gallager's
deterministic GPS analysis, which the paper generalizes; we implement
it both as the baseline theory (:mod:`repro.deterministic`) and to
measure how conservative deterministic envelopes are for stochastic
sources (one of the paper's motivating observations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["LBAPEnvelope", "tightest_sigma", "empirical_envelope_curve"]


@dataclass(frozen=True)
class LBAPEnvelope:
    """The deterministic envelope ``A(s, t] <= sigma + rho (t-s)``.

    Attributes
    ----------
    sigma:
        Maximum burst size (bucket depth).
    rho:
        Long-term bounding rate.
    """

    sigma: float
    rho: float

    def __post_init__(self) -> None:
        check_nonnegative("sigma", self.sigma)
        check_positive("rho", self.rho)

    def bound(self, duration: float) -> float:
        """Maximum traffic the envelope admits over ``duration``."""
        check_nonnegative("duration", duration)
        return self.sigma + self.rho * duration

    def conforms(self, increments: np.ndarray, *, tol: float = 1e-9) -> bool:
        """Check every interval of a discrete sample path."""
        level = 0.0
        for amount in np.asarray(increments, dtype=float):
            level = max(level + float(amount) - self.rho, 0.0)
            if level > self.sigma + tol:
                return False
        return True

    def __add__(self, other: "LBAPEnvelope") -> "LBAPEnvelope":
        """Envelope of the superposition of two conforming flows."""
        return LBAPEnvelope(self.sigma + other.sigma, self.rho + other.rho)


def tightest_sigma(increments: np.ndarray, rho: float) -> float:
    """Smallest ``sigma`` such that the path conforms to
    ``(sigma, rho)``.

    Equal to the maximum over time of the virtual queue drained at
    ``rho``; linear time.
    """
    check_positive("rho", rho)
    level = 0.0
    worst = 0.0
    for amount in np.asarray(increments, dtype=float):
        level = max(level + float(amount) - rho, 0.0)
        worst = max(worst, level)
    return worst


def empirical_envelope_curve(
    increments: np.ndarray, rhos: np.ndarray
) -> list[LBAPEnvelope]:
    """The family of tightest envelopes over a grid of rates.

    For each candidate rate the minimal burst parameter is computed;
    the resulting (rate, burst) trade-off curve is the empirical
    deterministic counterpart of choosing ``(rho, Lambda, alpha)`` in
    the E.B.B. model.
    """
    return [
        LBAPEnvelope(tightest_sigma(increments, float(rho)), float(rho))
        for rho in np.asarray(rhos, dtype=float)
    ]
