"""Composable fault models and the :class:`FaultSchedule` that hosts them.

The paper's theorems assume a GPS server that always delivers its full
rate ``r`` and sessions that honor their E.B.B. envelopes.  A production
deployment sees neither: servers degrade or fail for windows of time,
links add latency or go down, and sessions misbehave.  This module
describes those events declaratively so a simulation can run *through*
them — the simulators in :mod:`repro.sim` accept a schedule and keep
stepping, and :mod:`repro.faults.report` then measures how far the
degraded system strayed from the nominal bounds.

Four fault models compose freely inside one schedule:

* :class:`RateFault` — a node's capacity is multiplied by ``factor``
  during ``[start, end)``; ``factor=0`` is a full outage.
* :class:`LinkFault` — the output link of a node adds ``extra_delay``
  slots of latency and/or holds traffic entirely (``down=True``) during
  the window.
* :class:`BurstFault` — a session's ingress is scaled by ``multiplier``
  and shifted by ``extra`` work per slot: ``multiplier=0`` models churn
  (the session vanishes), ``multiplier>1`` or ``extra>0`` models
  envelope-violating bursts.
* :class:`NumericFault` — evaluation channel ``target`` returns ``nan``
  or an overflowing value for a window of *call indices*; used to
  harden bound-evaluation pipelines and the supervised Monte-Carlo
  runner against numerical blow-ups.
* :class:`CrashFault` — the durable online service dies (a simulated
  ``kill -9``) when ingest sequence number ``seq`` reaches a named
  crash point: before the write-ahead append, between append and
  apply, or mid-snapshot.  The chaos recovery harness schedules these
  and asserts the restarted service reconstructs the uninterrupted
  run exactly.
* :class:`DiskFault` — a file operation under the durable service
  misbehaves: ``EIO``/``ENOSPC`` errors, short writes, a lying fsync
  (success reported, bytes not durable), or a bit flip when a cold
  segment is closed.  Interpreted by
  :class:`repro.faults.io.FaultyFS`, which wraps the WAL/snapshot
  file operations and fires each fault deterministically on the
  ``start``-th matching operation.

Windows are half-open ``[start, end)`` in slot units (floats are fine
for the continuous-time packet simulator); crash faults live on the
ingest-sequence axis, and disk faults on per-fault operation-count
axes, instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "RateFault",
    "LinkFault",
    "BurstFault",
    "NumericFault",
    "CrashFault",
    "DiskFault",
    "CRASH_POINTS",
    "DISK_FAULT_KINDS",
    "DISK_FAULT_OPS",
    "Fault",
    "FaultSchedule",
]


def _check_window(start: float, end: float) -> None:
    if not np.isfinite(start) or not np.isfinite(end) or not start < end:
        raise ValidationError(
            f"fault window must satisfy start < end with finite endpoints, "
            f"got [{start}, {end})"
        )
    if start < 0:
        raise ValidationError(f"fault window must start at >= 0, got {start}")


@dataclass(frozen=True)
class RateFault:
    """Server capacity at ``node`` is scaled by ``factor`` on ``[start, end)``.

    ``factor=0.5`` halves the rate; ``factor=0.0`` is an outage.  Several
    overlapping rate faults on one node multiply.
    """

    node: str
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not np.isfinite(self.factor) or self.factor < 0.0:
            raise ValidationError(
                f"rate factor must be finite and >= 0, got {self.factor}"
            )

    def active(self, t: float) -> bool:
        """True when slot ``t`` falls inside the fault window."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class LinkFault:
    """The output link of ``node`` misbehaves on ``[start, end)``.

    ``extra_delay`` slots of latency are added to traffic leaving the
    node inside the window; with ``down=True`` the link holds traffic
    until the window closes (it is delivered at ``end``, plus any
    ``extra_delay``).  ``session=None`` applies to every session using
    the link.
    """

    node: str
    start: float
    end: float
    extra_delay: float = 0.0
    down: bool = False
    session: str | None = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not np.isfinite(self.extra_delay) or self.extra_delay < 0.0:
            raise ValidationError(
                f"extra_delay must be finite and >= 0, got {self.extra_delay}"
            )
        if self.extra_delay == 0.0 and not self.down:
            raise ValidationError(
                "a LinkFault must add delay or take the link down"
            )

    def matches(self, session: str, t: float) -> bool:
        """True when the fault applies to ``session`` traffic at ``t``."""
        if not self.start <= t < self.end:
            return False
        return self.session is None or self.session == session

    def delivery_time(self, t: float) -> float:
        """When traffic leaving the node at ``t`` clears the link."""
        if self.down:
            return self.end + self.extra_delay
        return t + self.extra_delay


@dataclass(frozen=True)
class BurstFault:
    """Session ingress is perturbed to ``a * multiplier + extra`` on the window.

    ``multiplier=0`` silences the session (churn); ``multiplier>1`` or
    ``extra>0`` injects envelope-violating work.
    """

    session: str
    start: float
    end: float
    multiplier: float = 1.0
    extra: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not np.isfinite(self.multiplier) or self.multiplier < 0.0:
            raise ValidationError(
                f"multiplier must be finite and >= 0, got {self.multiplier}"
            )
        if not np.isfinite(self.extra) or self.extra < 0.0:
            raise ValidationError(
                f"extra must be finite and >= 0, got {self.extra}"
            )

    def active(self, t: float) -> bool:
        """True when slot ``t`` falls inside the fault window."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class NumericFault:
    """Evaluation channel ``target`` is corrupted for a call-index window.

    Calls ``start <= k < end`` (0-based call count) on the channel named
    ``target`` return ``nan`` (``mode="nan"``) or a value past the
    double-precision overflow threshold (``mode="overflow"``) instead of
    the true result.  See
    :class:`repro.faults.injection.NumericFaultInjector`.
    """

    target: str
    start: int
    end: int
    mode: str = "nan"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if self.mode not in ("nan", "overflow"):
            raise ValidationError(
                f"mode must be 'nan' or 'overflow', got {self.mode!r}"
            )

    def active(self, call_index: int) -> bool:
        """True when the ``call_index``-th call is corrupted."""
        return self.start <= call_index < self.end


#: The scheduled-kill points of the durable online service's ingest
#: cycle (see :mod:`repro.online.durability`): ``pre-append`` dies
#: before the event reaches the write-ahead log (the event is lost and
#: must be resent), ``post-append`` dies after the append but before
#: the engine applies it (recovery must replay it exactly once), and
#: ``mid-snapshot`` dies with a half-written snapshot temp file on disk
#: (recovery must fall back to the previous snapshot).
CRASH_POINTS: tuple[str, ...] = ("pre-append", "post-append", "mid-snapshot")


@dataclass(frozen=True)
class CrashFault:
    """The durable online service is killed at ingest point ``(seq, point)``.

    ``seq`` is the 1-based ingest sequence number (the WAL sequence the
    line would be appended under); ``point`` names where in the ingest
    cycle the kill lands (:data:`CRASH_POINTS`).  A ``mid-snapshot``
    fault fires when the snapshot triggered after applying ``seq`` has
    written its temp file but not yet committed it.
    """

    seq: int
    point: str

    def __post_init__(self) -> None:
        if not isinstance(self.seq, int) or self.seq < 1:
            raise ValidationError(
                f"crash seq must be an integer >= 1, got {self.seq!r}"
            )
        if self.point not in CRASH_POINTS:
            raise ValidationError(
                f"crash point must be one of {CRASH_POINTS}, "
                f"got {self.point!r}"
            )


#: The file-operation misbehaviors :class:`repro.faults.io.FaultyFS`
#: can inject.  ``eio`` and ``enospc`` raise the matching ``OSError``;
#: ``short-write`` persists only a prefix of the buffer before raising
#: ``EIO`` (a torn frame); ``lying-fsync`` reports success without
#: making the bytes power-loss durable (fsyncgate semantics);
#: ``bit-flip`` flips one seeded bit of the file when it is closed
#: (cold-segment corruption discovered later by scrub/recovery).
DISK_FAULT_KINDS: tuple[str, ...] = (
    "eio",
    "enospc",
    "short-write",
    "lying-fsync",
    "bit-flip",
)

#: The interception points a :class:`DiskFault` can target.
DISK_FAULT_OPS: tuple[str, ...] = ("write", "fsync", "close")

#: Default interception point per fault kind.
_DISK_DEFAULT_OPS: dict[str, str] = {
    "eio": "fsync",
    "enospc": "write",
    "short-write": "write",
    "lying-fsync": "fsync",
    "bit-flip": "close",
}

#: Which interception points each fault kind is allowed to target.
_DISK_ALLOWED_OPS: dict[str, tuple[str, ...]] = {
    "eio": ("write", "fsync"),
    "enospc": ("write",),
    "short-write": ("write",),
    "lying-fsync": ("fsync",),
    "bit-flip": ("close",),
}


@dataclass(frozen=True)
class DiskFault:
    """File operation ``op`` on files matching ``path`` misbehaves.

    The fault fires on ``count`` consecutive matching operations
    starting at the ``start``-th (0-based, counted per fault over the
    lifetime of one :class:`repro.faults.io.FaultyFS`).  ``path`` is a
    glob matched against the file *name* (``"wal-*"`` targets WAL
    segments, ``"snap-*"`` snapshots, ``"*"`` everything).  ``op``
    defaults to the natural interception point of ``kind``
    (:data:`DISK_FAULT_KINDS`): errors and short writes on ``write``,
    ``eio``/``lying-fsync`` on ``fsync``, ``bit-flip`` on ``close``.
    """

    kind: str
    op: str = ""
    path: str = "wal-*"
    start: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in DISK_FAULT_KINDS:
            raise ValidationError(
                f"disk fault kind must be one of {DISK_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )
        if not self.op:
            object.__setattr__(
                self, "op", _DISK_DEFAULT_OPS[self.kind]
            )
        if self.op not in _DISK_ALLOWED_OPS[self.kind]:
            raise ValidationError(
                f"disk fault kind {self.kind!r} fires on "
                f"{_DISK_ALLOWED_OPS[self.kind]}, not op={self.op!r}"
            )
        if not isinstance(self.start, int) or self.start < 0:
            raise ValidationError(
                f"disk fault start must be an integer >= 0, "
                f"got {self.start!r}"
            )
        if not isinstance(self.count, int) or self.count < 1:
            raise ValidationError(
                f"disk fault count must be an integer >= 1, "
                f"got {self.count!r}"
            )

    def fires_at(self, op_index: int) -> bool:
        """True when the ``op_index``-th matching operation is faulted."""
        return self.start <= op_index < self.start + self.count


Fault = Union[
    RateFault, LinkFault, BurstFault, NumericFault, CrashFault, DiskFault
]


class FaultSchedule:
    """An immutable collection of fault events, queried by the simulators.

    The schedule is purely declarative; injecting it into
    :class:`repro.sim.fluid.FluidGPSServer` (via per-slot capacities),
    :class:`repro.sim.network_sim.FluidNetworkSimulator` or
    :class:`repro.sim.packet_network.PacketNetworkSimulator` makes the
    simulation run through the faults instead of dying on them.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        fault_list = tuple(faults)
        for fault in fault_list:
            if not isinstance(
                fault,
                (
                    RateFault,
                    LinkFault,
                    BurstFault,
                    NumericFault,
                    CrashFault,
                    DiskFault,
                ),
            ):
                raise ValidationError(
                    f"unsupported fault model: {type(fault).__name__}"
                )
        self._faults = fault_list

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def faults(self) -> tuple[Fault, ...]:
        """All fault events, in insertion order."""
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def extended(self, *faults: Fault) -> "FaultSchedule":
        """A new schedule with ``faults`` appended."""
        return FaultSchedule(self._faults + tuple(faults))

    def _of_type(self, kind) -> list:
        return [f for f in self._faults if isinstance(f, kind)]

    @property
    def has_rate_faults(self) -> bool:
        """True if any :class:`RateFault` is scheduled."""
        return any(isinstance(f, RateFault) for f in self._faults)

    @property
    def has_burst_faults(self) -> bool:
        """True if any :class:`BurstFault` is scheduled."""
        return any(isinstance(f, BurstFault) for f in self._faults)

    # ------------------------------------------------------------------
    # queries used by the simulators
    # ------------------------------------------------------------------
    def rate_factor(self, node: str, t: float) -> float:
        """Product of all active rate-fault factors for ``node`` at ``t``."""
        factor = 1.0
        for fault in self._of_type(RateFault):
            if fault.node == node and fault.active(t):
                factor *= fault.factor
        return factor

    def node_capacities(
        self, node: str, rate: float, num_slots: int
    ) -> np.ndarray:
        """Per-slot capacity trace for a node of nominal ``rate``."""
        caps = np.full(num_slots, float(rate))
        for fault in self._of_type(RateFault):
            if fault.node != node:
                continue
            lo = max(0, int(np.ceil(fault.start)))
            hi = min(num_slots, int(np.ceil(fault.end)))
            caps[lo:hi] *= fault.factor
        return caps

    def link_delivery_time(self, session: str, node: str, t: float) -> float:
        """When traffic leaving ``node`` at ``t`` reaches the next hop.

        Returns ``t`` when no link fault applies.  Each fault applies
        once, judged at the emission time ``t`` (the link state when
        the traffic leaves the node); overlapping faults take the
        latest delivery time.
        """
        delivery = float(t)
        for fault in self._of_type(LinkFault):
            if fault.node == node and fault.matches(session, t):
                delivery = max(delivery, fault.delivery_time(float(t)))
        return delivery

    def arrival_adjustment(self, session: str, t: float) -> tuple[float, float]:
        """``(multiplier, extra)`` applied to the session's ingress at ``t``."""
        multiplier, extra = 1.0, 0.0
        for fault in self._of_type(BurstFault):
            if fault.session == session and fault.active(t):
                multiplier *= fault.multiplier
                extra += fault.extra
        return multiplier, extra

    def adjusted_arrivals(self, session: str, arrivals) -> np.ndarray:
        """A session's ingress trace with every burst fault applied."""
        arr = np.asarray(arrivals, dtype=float).copy()
        for fault in self._of_type(BurstFault):
            if fault.session != session:
                continue
            lo = max(0, int(np.ceil(fault.start)))
            hi = min(arr.size, int(np.ceil(fault.end)))
            arr[lo:hi] = arr[lo:hi] * fault.multiplier + fault.extra
        return arr

    def numeric_mode(self, target: str, call_index: int) -> str | None:
        """Corruption mode for the ``call_index``-th call on ``target``."""
        for fault in self._of_type(NumericFault):
            if fault.target == target and fault.active(call_index):
                return fault.mode
        return None

    @property
    def crash_faults(self) -> tuple[CrashFault, ...]:
        """All scheduled service kills, in insertion order."""
        return tuple(self._of_type(CrashFault))

    def crashes_at(self, point: str, seq: int) -> bool:
        """True when a kill is scheduled for ingest point ``(seq, point)``."""
        return any(
            fault.point == point and fault.seq == seq
            for fault in self._of_type(CrashFault)
        )

    @property
    def disk_faults(self) -> tuple[DiskFault, ...]:
        """All scheduled file-operation faults, in insertion order."""
        return tuple(self._of_type(DiskFault))

    # ------------------------------------------------------------------
    # reporting support
    # ------------------------------------------------------------------
    def fault_mask(self, num_slots: int) -> np.ndarray:
        """Boolean per-slot mask: True where *any* scheduled fault is active.

        Numeric, crash and disk faults live on call-index /
        ingest-sequence / operation-count axes, not the time axis, and
        are excluded.  This is the window split used by the
        degraded-mode violation reports.
        """
        mask = np.zeros(num_slots, dtype=bool)
        for fault in self._faults:
            if isinstance(fault, (NumericFault, CrashFault, DiskFault)):
                continue
            lo = max(0, int(np.floor(fault.start)))
            hi = min(num_slots, int(np.ceil(fault.end)))
            mask[lo:hi] = True
        return mask
