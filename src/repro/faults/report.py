"""Degraded-mode measurement: bound violations inside fault windows.

Under fault injection the theorems' preconditions are deliberately
broken, so the nominal bounds *should* fail — the interesting question
is by how much and only where.  This module counts, per session, the
slots whose empirical delay exceeds the nominal bound's
``epsilon``-quantile, split into slots inside and outside the scheduled
fault windows.  A resilient configuration shows violations concentrated
in (and shortly after) the fault windows and a clean trace elsewhere;
violations outside any window indicate the nominal operating point was
already too aggressive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.faults.injection import guard_finite
from repro.faults.schedule import FaultSchedule

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.sim
    from repro.sim.network_sim import NetworkSimResult

__all__ = [
    "SessionViolationReport",
    "DegradedModeReport",
    "violation_counts",
    "network_violation_report",
]


@dataclass(frozen=True)
class SessionViolationReport:
    """Violation statistics for one session.

    ``threshold`` is the delay the nominal bound says is exceeded with
    probability at most ``epsilon``; ``unresolved`` counts slots whose
    delay never cleared within the simulated horizon (excluded from the
    violation counts).
    """

    session: str
    threshold: float
    epsilon: float
    slots_in_fault: int
    slots_outside: int
    violations_in_fault: int
    violations_outside: int
    unresolved: int

    @property
    def rate_in_fault(self) -> float:
        """Violation frequency inside fault windows (0 when empty)."""
        if self.slots_in_fault == 0:
            return 0.0
        return self.violations_in_fault / self.slots_in_fault

    @property
    def rate_outside(self) -> float:
        """Violation frequency outside fault windows (0 when empty)."""
        if self.slots_outside == 0:
            return 0.0
        return self.violations_outside / self.slots_outside


@dataclass(frozen=True)
class DegradedModeReport:
    """Per-session violation reports for one fault-injected run."""

    sessions: Mapping[str, SessionViolationReport]

    def total_violations_in_fault(self) -> int:
        """Sum of in-window violations over all sessions."""
        return sum(r.violations_in_fault for r in self.sessions.values())

    def summary(self) -> str:
        """Human-readable per-session table."""
        lines = [
            "session      d*      in-fault         outside",
        ]
        for name in sorted(self.sessions):
            r = self.sessions[name]
            lines.append(
                f"{name:<10} {r.threshold:6.2f}  "
                f"{r.violations_in_fault:5d}/{r.slots_in_fault:<6d}  "
                f"{r.violations_outside:5d}/{r.slots_outside:<6d}"
            )
        return "\n".join(lines)


def violation_counts(
    delays: np.ndarray, threshold: float, fault_mask: np.ndarray
) -> tuple[int, int, int]:
    """``(violations_in_fault, violations_outside, unresolved)``.

    ``delays`` may contain ``nan`` for horizon-truncated slots; those
    are counted as unresolved, not as violations.
    """
    arr = np.asarray(delays, dtype=float)
    mask = np.asarray(fault_mask, dtype=bool)
    if arr.shape != mask.shape:
        raise ValidationError(
            f"delays {arr.shape} and fault mask {mask.shape} must have "
            "the same shape"
        )
    resolved = ~np.isnan(arr)
    violating = resolved & (arr >= threshold)
    return (
        int(np.sum(violating & mask)),
        int(np.sum(violating & ~mask)),
        int(np.sum(~resolved)),
    )


def network_violation_report(
    result: NetworkSimResult,
    bounds: Mapping[str, object],
    schedule: FaultSchedule,
    *,
    epsilon: float = 1e-3,
    warmup: int = 0,
) -> DegradedModeReport:
    """Count per-session bound violations in a fault-injected network run.

    ``bounds`` maps session names to end-to-end delay tail bounds (any
    object with a ``quantile(epsilon)`` method, e.g.
    :class:`repro.core.bounds.ExponentialTailBound`); the violation
    threshold for a session is its bound's ``epsilon``-quantile.  The
    first ``warmup`` slots are dropped before counting.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValidationError(f"epsilon must lie in (0, 1), got {epsilon}")
    if warmup < 0:
        raise ValidationError(f"warmup must be >= 0, got {warmup}")
    num_slots = result.num_slots
    if warmup >= num_slots:
        raise ValidationError(
            f"warmup {warmup} leaves no slots out of {num_slots}"
        )
    missing = set(result.external_arrivals) - set(bounds)
    if missing:
        raise ValidationError(
            f"bounds missing for sessions: {sorted(missing)}"
        )
    mask = schedule.fault_mask(num_slots)[warmup:]
    reports: dict[str, SessionViolationReport] = {}
    for name in result.external_arrivals:
        threshold = guard_finite(
            f"delay threshold for {name}", bounds[name].quantile(epsilon)
        )
        delays = result.end_to_end_delays(name)[warmup:]
        in_fault, outside, unresolved = violation_counts(
            delays, threshold, mask
        )
        resolved_mask = ~np.isnan(delays)
        reports[name] = SessionViolationReport(
            session=name,
            threshold=threshold,
            epsilon=epsilon,
            slots_in_fault=int(np.sum(mask & resolved_mask)),
            slots_outside=int(np.sum(~mask & resolved_mask)),
            violations_in_fault=in_fault,
            violations_outside=outside,
            unresolved=unresolved,
        )
    return DegradedModeReport(sessions=reports)
