"""Fault injectors: wiring a :class:`FaultSchedule` into computations.

Two injection surfaces live here; the simulators take schedules
directly (``FluidNetworkSimulator(network, faults=...)``,
``PacketNetworkSimulator(network, faults=...)``,
``FluidGPSServer.run(..., capacities=schedule.node_capacities(...))``).

* :func:`faulted_gps_run` — run a single fluid GPS server through a
  schedule (rate faults on the node plus burst faults on its sessions).
* :class:`NumericFaultInjector` — wrap a scalar function (typically a
  tail-bound evaluation) so scheduled calls return ``nan`` or an
  overflowed value; :func:`guard_finite` is the matching defense that
  turns a corrupted value into a typed :class:`NumericalError` instead
  of letting it propagate silently through an aggregation.
* :class:`CrashInjector` — fire the :class:`~repro.faults.schedule.CrashFault`
  kills of a schedule into the durable online service's ingest cycle.
  :class:`SimulatedCrash` deliberately subclasses ``BaseException`` so
  no resilience layer (the service's error records, a supervisor's
  ``except ReproError``) can accidentally absorb a kill the way it
  could not absorb a real ``kill -9``.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import NumericalError, ValidationError
from repro.faults.schedule import FaultSchedule
from repro.sim.fluid import FluidGPSServer, GPSSimResult

__all__ = [
    "faulted_gps_run",
    "NumericFaultInjector",
    "guard_finite",
    "SimulatedCrash",
    "CrashInjector",
]

#: Value injected by ``mode="overflow"`` — past any meaningful
#: probability/backlog scale, and multiplication pushes it to ``inf``.
_OVERFLOW_VALUE = 1e308


def faulted_gps_run(
    server: FluidGPSServer,
    arrivals: np.ndarray,
    schedule: FaultSchedule,
    *,
    node: str = "server",
    session_names: Sequence[str] | None = None,
) -> GPSSimResult:
    """Run a fluid GPS server through a fault schedule.

    ``node`` is the name rate faults must target to apply here;
    ``session_names`` (defaulting to ``session<i+1>``) maps burst faults
    onto arrival rows.  The simulation runs *through* degraded windows —
    an outage simply accrues backlog — and the result records the
    per-slot capacities actually offered.
    """
    arr = np.asarray(arrivals, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != server.num_sessions:
        raise ValidationError(
            f"arrivals must have shape ({server.num_sessions}, T), got "
            f"{arr.shape}"
        )
    if session_names is None:
        session_names = [f"session{i + 1}" for i in range(arr.shape[0])]
    elif len(session_names) != arr.shape[0]:
        raise ValidationError(
            f"need {arr.shape[0]} session names, got {len(session_names)}"
        )
    num_slots = arr.shape[1]
    adjusted = np.vstack(
        [
            schedule.adjusted_arrivals(name, arr[k])
            for k, name in enumerate(session_names)
        ]
    )
    capacities = schedule.node_capacities(node, server.rate, num_slots)
    return server.run(adjusted, capacities=capacities)


class NumericFaultInjector:
    """Wrap a scalar function so scheduled calls return corrupted values.

    The injector counts calls per ``target`` channel; when the schedule
    marks a call index faulty, the wrapped function returns ``nan`` or
    an overflowing magnitude instead of the true value.  This simulates
    the numerical blow-ups long Monte-Carlo runs hit mid-flight, letting
    tests prove that downstream consumers (bound aggregation, the
    supervised runner) degrade gracefully rather than silently
    aggregating garbage.
    """

    def __init__(self, schedule: FaultSchedule, target: str) -> None:
        self._schedule = schedule
        self._target = target
        self._calls = 0

    @property
    def calls(self) -> int:
        """Number of calls routed through the injector so far."""
        return self._calls

    def wrap(
        self, func: Callable[..., float]
    ) -> Callable[..., float]:
        """Return ``func`` with scheduled corruption applied."""

        def wrapped(*args, **kwargs) -> float:
            mode = self._schedule.numeric_mode(self._target, self._calls)
            self._calls += 1
            value = func(*args, **kwargs)
            if mode == "nan":
                return math.nan
            if mode == "overflow":
                return math.copysign(_OVERFLOW_VALUE, value if value else 1.0)
            return value

        return wrapped


class SimulatedCrash(BaseException):
    """A scheduled process kill fired inside the durable ingest cycle.

    Subclasses ``BaseException`` (like ``KeyboardInterrupt``): a crash
    must tear the service down through every ``except Exception`` /
    ``except ReproError`` resilience layer, exactly as a real ``SIGKILL``
    would.  Only the chaos harness, which *is* the simulated operating
    system, catches it — and then restarts the service from disk.
    """


class CrashInjector:
    """Fire scheduled :class:`~repro.faults.schedule.CrashFault` kills.

    The durable online service calls :meth:`fire` at each crash point
    of its ingest cycle; when the schedule lists a
    :class:`~repro.faults.schedule.CrashFault` for that ``(point, seq)``
    the injector raises :class:`SimulatedCrash` — once per fault, so a
    restarted service that re-ingests the same sequence number does not
    die again on the fault that already killed it (the injector object
    survives restarts in the harness, standing in for the fault's
    one-shot nature in the real world).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self._schedule = schedule
        self._fired: set[tuple[str, int]] = set()

    @property
    def fired(self) -> tuple[tuple[str, int], ...]:
        """``(point, seq)`` pairs that already killed the service."""
        return tuple(sorted(self._fired))

    def fire(self, point: str, seq: int) -> None:
        """Raise :class:`SimulatedCrash` if a kill is due at this point."""
        key = (point, seq)
        if key in self._fired:
            return
        if self._schedule.crashes_at(point, seq):
            self._fired.add(key)
            raise SimulatedCrash(
                f"scheduled crash at ingest seq {seq} ({point})"
            )


def guard_finite(name: str, value: float) -> float:
    """Return ``value``; raise :class:`NumericalError` if it is nan/inf.

    The defense matching :class:`NumericFaultInjector`: place it where a
    bound evaluation or aggregate enters a result table, so a corrupted
    value surfaces as a typed, retryable error instead of a silent
    ``nan`` in a report.
    """
    if not math.isfinite(value):
        raise NumericalError(f"{name} evaluated to a non-finite value: {value}")
    return float(value)
