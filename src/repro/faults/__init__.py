"""Fault injection and degraded-mode measurement.

Declarative fault models (:class:`RateFault`, :class:`LinkFault`,
:class:`BurstFault`, :class:`NumericFault`) compose into a
:class:`FaultSchedule` that the simulators accept, so runs survive
server degradation, link failures, session churn and numerical
corruption — and :func:`network_violation_report` measures how the
nominal paper bounds hold up inside the fault windows.
"""

from repro.faults.injection import (
    NumericFaultInjector,
    faulted_gps_run,
    guard_finite,
)
from repro.faults.report import (
    DegradedModeReport,
    SessionViolationReport,
    network_violation_report,
    violation_counts,
)
from repro.faults.schedule import (
    BurstFault,
    Fault,
    FaultSchedule,
    LinkFault,
    NumericFault,
    RateFault,
)

__all__ = [
    "BurstFault",
    "Fault",
    "FaultSchedule",
    "LinkFault",
    "NumericFault",
    "RateFault",
    "NumericFaultInjector",
    "faulted_gps_run",
    "guard_finite",
    "DegradedModeReport",
    "SessionViolationReport",
    "network_violation_report",
    "violation_counts",
]
