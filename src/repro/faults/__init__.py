"""Fault injection and degraded-mode measurement.

Declarative fault models (:class:`RateFault`, :class:`LinkFault`,
:class:`BurstFault`, :class:`NumericFault`, :class:`CrashFault`)
compose into a :class:`FaultSchedule` that the simulators accept, so
runs survive server degradation, link failures, session churn,
numerical corruption and scheduled process kills — and
:func:`network_violation_report` measures how the nominal paper bounds
hold up inside the fault windows, while the chaos recovery harness
(:class:`CrashInjector` + :mod:`repro.online.durability`) proves the
durable online service reconstructs killed runs exactly.  The disk is
part of the fault surface too: :class:`DiskFault` events drive a
:class:`FaultyFS` that injects ``EIO``, ``ENOSPC``, short writes,
lying fsyncs and bit flips into the WAL/snapshot file operations.
"""

from repro.faults.injection import (
    CrashInjector,
    NumericFaultInjector,
    SimulatedCrash,
    faulted_gps_run,
    guard_finite,
)
from repro.faults.report import (
    DegradedModeReport,
    SessionViolationReport,
    network_violation_report,
    violation_counts,
)
from repro.faults.io import FaultyFile, FaultyFS
from repro.faults.schedule import (
    CRASH_POINTS,
    DISK_FAULT_KINDS,
    DISK_FAULT_OPS,
    BurstFault,
    CrashFault,
    DiskFault,
    Fault,
    FaultSchedule,
    LinkFault,
    NumericFault,
    RateFault,
)

__all__ = [
    "BurstFault",
    "CrashFault",
    "CRASH_POINTS",
    "CrashInjector",
    "SimulatedCrash",
    "DiskFault",
    "DISK_FAULT_KINDS",
    "DISK_FAULT_OPS",
    "FaultyFS",
    "FaultyFile",
    "Fault",
    "FaultSchedule",
    "LinkFault",
    "NumericFault",
    "RateFault",
    "NumericFaultInjector",
    "faulted_gps_run",
    "guard_finite",
    "DegradedModeReport",
    "SessionViolationReport",
    "network_violation_report",
    "violation_counts",
]
