"""Deterministic disk-fault injection for the durability layer.

:class:`FaultyFS` is a schedule-driven stand-in for the real
filesystem: the write-ahead log and the snapshot store accept it as
their ``io`` object and route every file ``open``/``unlink``/
``replace`` through it, and the handles it returns
(:class:`FaultyFile`) intercept ``write``/``fsync``/``close``.  All
bytes still land in real files on the real filesystem — recovery,
scrubbing and bit-identity checks run against genuine on-disk state —
but the operations misbehave exactly as a
:class:`repro.faults.schedule.DiskFault` schedule dictates:

* ``eio`` — the matching write or fsync raises ``OSError(EIO)``.
  After a failed fsync the handle is *poisoned*: a retried fsync on
  the same handle falsely succeeds without making bytes durable (the
  fsyncgate semantics the repair path must not fall for).
* ``enospc`` — the matching write raises ``OSError(ENOSPC)``.
* ``short-write`` — the matching write persists only a prefix of the
  buffer, then raises ``OSError(EIO)``: a torn frame.
* ``lying-fsync`` — fsync reports success but the durability
  watermark does not advance; the bytes vanish at :meth:`lose_power`.
* ``bit-flip`` — when the matching file is closed, one bit at a
  seeded offset is flipped in place: cold-segment corruption for the
  scrubber to find.

Beyond the schedule, :class:`FaultyFS` models *disk pressure* with an
optional byte budget: writes debit it, raising ``ENOSPC`` when it runs
dry, and ``unlink``/``truncate`` credit bytes back — so pruning
snapshot-covered WAL segments genuinely relieves the pressure, exactly
like on a full disk.

Durability is tracked per file: only an honest fsync advances a file's
``durable_len``, and :meth:`lose_power` truncates every tracked file
back to its durable prefix — simulating a power cut so the recovery
path can be asserted against what *actually* survived.

Every injected fault is appended to :attr:`FaultyFS.events` so tests
and smoke runs can assert the schedule fired as planned.
"""

from __future__ import annotations

import errno
import os
import random
import threading
from fnmatch import fnmatch
from pathlib import Path
from typing import IO, Any, Iterable

from repro.errors import ValidationError
from repro.faults.schedule import DiskFault, FaultSchedule

__all__ = ["FaultyFS", "FaultyFile"]


class FaultyFile:
    """A real file handle whose write/fsync/close pass through a FaultyFS.

    Supports the operations the durability layer uses (``write``,
    ``flush``, ``fileno``, ``tell``, ``truncate``, ``close``, context
    manager) plus an explicit :meth:`fsync` that the WAL writers call
    in place of ``os.fsync(fileno())`` when present — that is the hook
    through which fsync faults and durability tracking are injected.
    """

    def __init__(self, fs: "FaultyFS", path: Path, handle: IO[bytes]) -> None:
        self._fs = fs
        self._path = Path(path)
        self._file = handle
        #: A failed fsync poisons the handle: later fsyncs on it lie.
        self._poisoned = False

    @property
    def path(self) -> Path:
        """The real on-disk path behind this handle."""
        return self._path

    @property
    def name(self) -> str:
        return str(self._path)

    @property
    def closed(self) -> bool:
        return self._file.closed

    # ------------------------------------------------------------------
    def write(self, data: bytes) -> int:
        return self._fs._on_write(self, self._file, data)

    def flush(self) -> None:
        self._file.flush()

    def fileno(self) -> int:
        return self._file.fileno()

    def tell(self) -> int:
        return self._file.tell()

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._file.seek(offset, whence)

    def read(self, size: int = -1) -> bytes:
        return self._file.read(size)

    def truncate(self, size: int | None = None) -> int:
        if size is None:
            size = self._file.tell()
        self._file.flush()
        old_size = os.fstat(self._file.fileno()).st_size
        result = self._file.truncate(size)
        self._fs._on_truncate(self._path, int(size), old_size=old_size)
        return result

    def fsync(self) -> None:
        """Policy-visible fsync: faults and durability tracking apply."""
        self._file.flush()
        self._fs._on_fsync(self)

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.close()
        self._fs._on_close(self)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class FaultyFS:
    """Schedule-driven faulty filesystem for WAL/snapshot file operations.

    Parameters
    ----------
    faults:
        The :class:`~repro.faults.schedule.DiskFault` events to
        inject — a :class:`~repro.faults.schedule.FaultSchedule` (its
        non-disk faults are ignored) or a bare iterable of disk
        faults.  Each fault counts its own matching operations, so
        schedules are deterministic regardless of interleaving.
    seed:
        Seeds the bit-flip offset choice (and nothing else); the same
        schedule and seed always corrupt the same byte.
    byte_budget:
        Optional disk-capacity model: total bytes writable through
        this filesystem.  Writes debit it (``ENOSPC`` once dry,
        after persisting whatever still fits — like a real full
        disk); ``unlink`` and ``truncate`` credit bytes back.
    """

    def __init__(
        self,
        faults: FaultSchedule | Iterable[DiskFault] = (),
        *,
        seed: int = 0,
        byte_budget: int | None = None,
    ) -> None:
        if isinstance(faults, FaultSchedule):
            fault_list = faults.disk_faults
        else:
            fault_list = tuple(faults)
        for fault in fault_list:
            if not isinstance(fault, DiskFault):
                raise ValidationError(
                    f"FaultyFS takes DiskFault events, got "
                    f"{type(fault).__name__}"
                )
        if byte_budget is not None and byte_budget < 0:
            raise ValidationError(
                f"byte_budget must be >= 0, got {byte_budget}"
            )
        self._faults = fault_list
        self._op_counts = [0] * len(fault_list)
        self._rng = random.Random(seed)
        self._budget = None if byte_budget is None else int(byte_budget)
        self._lock = threading.Lock()
        #: Per-path durable byte length (advanced only by honest fsyncs).
        self._durable: dict[str, int] = {}
        #: Log of injected faults: ``{"kind", "op", "path", ...}`` dicts.
        self.events: list[dict[str, Any]] = []

    @property
    def byte_budget(self) -> int | None:
        """Bytes still writable (``None`` = unlimited)."""
        with self._lock:
            return self._budget

    def durable_len(self, path: str | Path) -> int:
        """Bytes of ``path`` that would survive a power cut."""
        with self._lock:
            return self._durable.get(str(Path(path)), 0)

    # ------------------------------------------------------------------
    # the io-object protocol consumed by WriteAheadLog / SnapshotStore
    # ------------------------------------------------------------------
    def open(self, path: str | Path, mode: str = "ab") -> FaultyFile:
        """Open a real file, wrapped for fault interception."""
        path = Path(path)
        handle = open(path, mode)
        with self._lock:
            key = str(path)
            if "w" in mode:
                self._durable[key] = 0
            else:
                # Appending/updating an existing file: bytes already on
                # disk are treated as durable (they predate this FS).
                self._durable.setdefault(
                    key, path.stat().st_size if path.exists() else 0
                )
        return FaultyFile(self, path, handle)

    def unlink(self, path: str | Path) -> None:
        """Delete a file, crediting its bytes back to the budget."""
        path = Path(path)
        size = path.stat().st_size
        os.unlink(path)
        with self._lock:
            self._durable.pop(str(path), None)
            if self._budget is not None:
                self._budget += size

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomic rename; durable tracking follows the file."""
        src, dst = Path(src), Path(dst)
        overwritten = dst.stat().st_size if dst.exists() else 0
        os.replace(src, dst)
        with self._lock:
            self._durable[str(dst)] = self._durable.pop(str(src), 0)
            if self._budget is not None:
                self._budget += overwritten

    # ------------------------------------------------------------------
    # chaos controls
    # ------------------------------------------------------------------
    def lose_power(self) -> dict[str, int]:
        """Truncate every tracked file to its durable prefix.

        Simulates a power cut: bytes that were written and even
        OS-flushed but never covered by an honest fsync vanish.
        Returns ``{path: durable_len}`` for every file that lost
        bytes.  Call only after the writing service is torn down.
        """
        lost: dict[str, int] = {}
        with self._lock:
            durable = dict(self._durable)
        for key, durable_len in durable.items():
            path = Path(key)
            if not path.exists():
                continue
            size = path.stat().st_size
            if size <= durable_len:
                continue
            with open(path, "r+b") as handle:
                handle.truncate(durable_len)
            lost[key] = durable_len
        return lost

    def flip_bit(
        self, path: str | Path, *, offset: int | None = None
    ) -> int:
        """Flip one bit of ``path`` in place; returns the byte offset.

        With ``offset=None`` the offset is drawn from the seeded RNG —
        deterministic per (schedule, seed, call order).
        """
        path = Path(path)
        size = path.stat().st_size
        if size == 0:
            raise ValidationError(
                f"cannot flip a bit in empty file {path}"
            )
        if offset is None:
            offset = self._rng.randrange(size)
        if not 0 <= offset < size:
            raise ValidationError(
                f"bit-flip offset {offset} outside file of {size} bytes"
            )
        bit = self._rng.randrange(8)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << bit)]))
        self.events.append(
            {
                "kind": "bit-flip",
                "op": "flip",
                "path": path.name,
                "offset": int(offset),
                "bit": int(bit),
            }
        )
        return int(offset)

    # ------------------------------------------------------------------
    # interception internals
    # ------------------------------------------------------------------
    def _fire(self, op: str, name: str) -> DiskFault | None:
        """Advance every matching fault's counter; return the first firing."""
        fired: DiskFault | None = None
        with self._lock:
            for index, fault in enumerate(self._faults):
                if fault.op != op or not fnmatch(name, fault.path):
                    continue
                op_index = self._op_counts[index]
                self._op_counts[index] += 1
                if fired is None and fault.fires_at(op_index):
                    fired = fault
        return fired

    def _record(self, fault: DiskFault, path: Path, **extra: Any) -> None:
        event = {"kind": fault.kind, "op": fault.op, "path": path.name}
        event.update(extra)
        self.events.append(event)

    def _on_write(
        self, ffile: FaultyFile, handle: IO[bytes], data: bytes
    ) -> int:
        fault = self._fire("write", ffile.path.name)
        if fault is not None and fault.kind == "eio":
            self._record(fault, ffile.path)
            raise OSError(errno.EIO, f"injected EIO writing {ffile.path}")
        if fault is not None and fault.kind == "enospc":
            self._record(fault, ffile.path)
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC writing {ffile.path}"
            )
        if fault is not None and fault.kind == "short-write":
            kept = max(1, len(data) // 2) if data else 0
            handle.write(data[:kept])
            handle.flush()
            self._debit(kept)
            self._record(
                fault, ffile.path, written=kept, dropped=len(data) - kept
            )
            raise OSError(
                errno.EIO,
                f"injected short write on {ffile.path}: {kept} of "
                f"{len(data)} bytes persisted",
            )
        with self._lock:
            budget = self._budget
        if budget is not None and len(data) > budget:
            # A real full disk persists what fits, then errors.
            handle.write(data[:budget])
            handle.flush()
            self._debit(budget)
            self.events.append(
                {
                    "kind": "enospc",
                    "op": "write",
                    "path": ffile.path.name,
                    "budget_exhausted": True,
                    "written": budget,
                    "dropped": len(data) - budget,
                }
            )
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC writing {ffile.path}: byte budget "
                "exhausted",
            )
        written = handle.write(data)
        self._debit(written)
        return written

    def _debit(self, nbytes: int) -> None:
        with self._lock:
            if self._budget is not None:
                self._budget = max(0, self._budget - nbytes)

    def _on_fsync(self, ffile: FaultyFile) -> None:
        fault = self._fire("fsync", ffile.path.name)
        if fault is not None and fault.kind == "eio":
            # fsyncgate: the dirty pages are dropped; a retry on the
            # same handle will falsely succeed.
            ffile._poisoned = True
            self._record(fault, ffile.path)
            raise OSError(
                errno.EIO, f"injected EIO syncing {ffile.path}"
            )
        if fault is not None and fault.kind == "lying-fsync":
            self._record(fault, ffile.path)
            return  # success reported, durability NOT advanced
        if ffile._poisoned:
            # Post-failure fsync on the same descriptor: the kernel
            # already dropped the dirty pages, so "success" is a lie.
            self.events.append(
                {
                    "kind": "poisoned-fsync",
                    "op": "fsync",
                    "path": ffile.path.name,
                }
            )
            return
        os.fsync(ffile.fileno())
        with self._lock:
            self._durable[str(ffile.path)] = os.fstat(
                ffile.fileno()
            ).st_size

    def _on_truncate(
        self, path: Path, size: int, *, old_size: int | None = None
    ) -> None:
        with self._lock:
            key = str(path)
            previous = self._durable.get(key)
            if previous is not None and previous > size:
                self._durable[key] = size
            if (
                self._budget is not None
                and old_size is not None
                and old_size > size
            ):
                # Freed bytes go back to the pool.
                self._budget += old_size - size

    def _on_close(self, ffile: FaultyFile) -> None:
        fault = self._fire("close", ffile.path.name)
        if fault is not None and fault.kind == "bit-flip":
            if ffile.path.exists() and ffile.path.stat().st_size > 0:
                self.flip_bit(ffile.path)
